"""Static determinism & crypto-boundary auditor (plus runtime sanitizer).

The repo's two headline guarantees are behavioral, not structural:

* **byte-identical parallel/serial output** — every experiment derives its
  randomness from seeded :class:`repro.net.rng.RngFactory` streams and
  reads time from the simulation clock, so ``--jobs N`` reproduces the
  serial report exactly (``docs/PARALLEL.md``);
* **a from-scratch crypto substrate** — HMAC/PRF/cipher constructions are
  built inside :mod:`repro.crypto` from first principles (the paper
  specifies the protocols directly in terms of those primitives), so
  stdlib ``hashlib``/``hmac`` must not leak into protocol code.

Nothing in Python enforces either property; one stray ``random.random()``
or ``time.time()`` in an agent silently breaks reproducibility. This
package codifies the invariants as machine-checked rules:

* :mod:`repro.audit.engine` — AST rule engine: per-file module contexts,
  qualified-name resolution through import tables, findings with
  severity, and ``# repro: allow(<rule-id>)`` suppression comments;
* :mod:`repro.audit.graph` — the whole-program layer: serializable
  per-module call-graph facts, the assembled :class:`ProjectIndex`, and
  BFS sink-chain search, which is what makes the determinism rules
  *interprocedural* (:mod:`repro.audit.rules_interproc`);
* :mod:`repro.audit.rules_determinism`, :mod:`~repro.audit.rules_crypto`,
  :mod:`~repro.audit.rules_simtime`, :mod:`~repro.audit.rules_iteration`,
  :mod:`~repro.audit.rules_rngflow`, :mod:`~repro.audit.rules_shared`,
  :mod:`~repro.audit.rules_interproc`
  — the rule families (see ``docs/AUDIT.md`` for the catalogue);
* :mod:`repro.audit.baseline` — fingerprinted baseline files that
  grandfather deliberate exceptions while new findings still fail CI;
* :mod:`repro.audit.cache` — content-hash incremental cache: unchanged
  files skip parsing entirely (``audit --cache``);
* :mod:`repro.audit.sarif` — SARIF 2.1.0 export for GitHub code
  scanning (``audit --sarif``);
* :mod:`repro.audit.cli` — ``repro-aai audit`` / ``python -m repro.audit``;
* :mod:`repro.audit.runtime` — a test-time sanitizer that patches
  wall-clock and global-RNG entry points to raise inside simulator scope.
"""

from repro.audit.baseline import load_baseline, write_baseline
from repro.audit.cache import AuditCache
from repro.audit.catalog import all_rules, find_rule, known_rule_ids
from repro.audit.engine import (
    Finding,
    ProjectRule,
    Rule,
    audit_paths,
    audit_source,
)
from repro.audit.graph import ProjectIndex
from repro.audit.runtime import SanitizerViolation, sanitized
from repro.audit.sarif import to_sarif, write_sarif

__all__ = [
    "AuditCache",
    "Finding",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "SanitizerViolation",
    "all_rules",
    "audit_paths",
    "audit_source",
    "find_rule",
    "known_rule_ids",
    "load_baseline",
    "sanitized",
    "to_sarif",
    "write_baseline",
    "write_sarif",
]
