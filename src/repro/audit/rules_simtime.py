"""Sim-time hygiene rule (ST*): simulator code reads simulated time only.

The engine's event loop owns time (:class:`repro.net.clock.SimClock`);
nodes see it through skewed :class:`~repro.net.clock.NodeClock` views —
the paper's loose-synchronization assumption (§5). Any host-clock read in
node/link/protocol/adversary code ties packet behavior to the machine the
simulation happens to run on: timestamp freshness checks, probe pacing,
and ack deadlines would all diverge between hosts and between parallel
workers, so the rule bans the entire ``time``/``datetime`` surface (even
monotonic timers) from simulator scope.
"""

from __future__ import annotations

from typing import Iterator

from repro.audit.engine import Finding, ModuleContext, Rule, iter_qualified_uses
from repro.audit.rules_determinism import SIM_SCOPE


class SimTimeRule(Rule):
    """ST001 — host-clock use inside simulator scope."""

    id = "ST001"
    family = "sim-time"
    severity = "error"
    summary = "host `time`/`datetime` use inside simulator scope"
    rationale = (
        "Simulated components must read `SimClock`/`NodeClock` "
        "(repro.net.clock): host clocks — wall *or* monotonic — tie "
        "timestamp freshness (§5 loose synchronization), probe pacing, "
        "and ack deadlines to the machine running the simulation, "
        "breaking run-to-run and serial/parallel reproducibility in "
        f"{', '.join(SIM_SCOPE)}."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_module(*SIM_SCOPE):
            return
        for node, qualified in iter_qualified_uses(ctx):
            if qualified.startswith("time."):
                yield self.finding(
                    ctx,
                    node,
                    f"`{qualified}` read inside simulator scope; use the "
                    "simulation clock (`repro.net.clock`)",
                )
            elif qualified.startswith("datetime."):
                yield self.finding(
                    ctx,
                    node,
                    f"`{qualified}` inside simulator scope; simulated "
                    "time is a float owned by `SimClock`",
                )


RULES = (SimTimeRule(),)
