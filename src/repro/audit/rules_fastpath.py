"""Fast-path rules (FP*): per-packet Python loops in batch-eligible code.

The vectorized fast path (``repro.net.fastpath``) and the closed-form
Monte-Carlo layer (``repro.mc``) exist precisely so that per-packet work
is drawn in batches (numpy blocks, multinomials) instead of one Python
iteration per packet. A ``for ... in range(<packet count>)`` loop in
those modules usually marks work that regressed to the per-packet idiom
the fast path was built to replace — each iteration costs a Python frame
and, worse, tends to grow per-iteration attribute lookups and RNG calls
that the batched equivalents amortize.

Loops that are genuinely per-round by design (e.g. the fast path's own
round-replay driver, whose rounds are *already* the batched unit) carry
a ``# repro: allow(FP001)`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.audit.engine import Finding, ModuleContext, Rule

#: Modules expected to batch per-packet work rather than loop over it.
FASTPATH_SCOPE = ("repro.net.fastpath", "repro.mc", "repro.experiments")

#: Identifier fragments that mark a bound as a packet/round count.
_PACKET_SCALE_FRAGMENTS = (
    "packet",
    "round",
    "checkpoint",
    "horizon",
    "sequence",
)


def _bound_name(node: ast.AST) -> Optional[str]:
    """Terminal identifier of a ``range`` bound, if it has one."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        # `range(len(packets))` — look through a single `len(...)`.
        if node.func.id == "len" and len(node.args) == 1:
            return _bound_name(node.args[0])
    return None


def _is_packet_scale(name: Optional[str]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return any(fragment in lowered for fragment in _PACKET_SCALE_FRAGMENTS)


class PerPacketLoopRule(Rule):
    """FP001 — per-packet ``range`` loop in fast-path-eligible code."""

    id = "FP001"
    family = "fastpath"
    severity = "warning"
    summary = "per-packet Python loop in batch-eligible module"
    rationale = (
        "Modules on the vectorized fast path batch per-packet draws "
        "(numpy blocks, grouped multinomials); a `for ... in "
        "range(<packets>)` loop there pays one Python frame per packet "
        "and usually re-introduces the per-packet RNG/attribute costs "
        "the fast path removes. Batch the work, or mark a deliberately "
        "per-round driver loop with `# repro: allow(FP001)`."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_module(*FASTPATH_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            call = node.iter
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "range"
                and call.func.id not in ctx.imports
            ):
                continue
            for bound in call.args:
                name = _bound_name(bound)
                if _is_packet_scale(name):
                    yield self.finding(
                        ctx,
                        node,
                        f"`range({name})` loops Python once per packet; "
                        "draw the per-packet quantities in a batch "
                        "(or allow a deliberate per-round driver loop)",
                    )
                    break


RULES: List[Rule] = [PerPacketLoopRule()]
