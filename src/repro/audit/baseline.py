"""Baseline files: grandfather deliberate findings, gate everything new.

A baseline is a committed JSON file listing the fingerprints of findings
the team has decided to live with. The CI gate compares the current audit
against it: grandfathered findings are reported but do not fail;
anything *not* in the baseline does. Fingerprints hash the rule id, file
path, and offending line's text (see :class:`repro.audit.engine.Finding`),
so the baseline survives line-number drift but invalidates itself when
the excused line actually changes — an edited exception must be
re-justified.

The shipped baseline is (near-)empty by policy: deliberate exceptions
carry inline ``# repro: allow(<rule-id>)`` comments next to the code they
excuse, which keeps the justification in the diff that introduces it.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Set

from repro.audit.engine import Finding
from repro.exceptions import ConfigurationError

BASELINE_FORMAT = "repro-audit-baseline"
BASELINE_VERSION = 1

#: Default committed baseline location (repo root).
DEFAULT_BASELINE = "audit-baseline.json"


def load_baseline(path: str) -> Set[str]:
    """Fingerprints recorded in ``path``; empty set when it is absent."""
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != BASELINE_FORMAT:
        raise ConfigurationError(
            f"{path} is not an audit baseline "
            f"(missing format={BASELINE_FORMAT!r})"
        )
    return {entry["fingerprint"] for entry in payload.get("entries", [])}


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Persist ``findings`` as the new baseline; returns the entry count.

    Entries keep human-readable context (rule, path, line, message)
    alongside the fingerprint so a reviewer can audit the baseline
    itself, but only the fingerprint participates in matching.
    """
    entries: List[dict] = [
        {
            "fingerprint": finding.fingerprint,
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "severity": finding.severity,
            "message": finding.message,
        }
        for finding in sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )
    ]
    payload = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "entries": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)
