"""RNG-stream provenance rules (RNG*): where stream labels come from.

Every random value in the system flows from a labeled
:class:`repro.net.rng.RngFactory` stream; the *label* is therefore part
of the seed schedule. Two failure modes silently corrupt it:

* a label interpolating ambient state (a timestamp, `os.getpid()`,
  `id(obj)`, an unseeded draw) makes the derived stream differ between
  runs and between workers, defeating the whole point of labeling;
* two call sites reusing one label within a run draw from the *same*
  stream while believing themselves independent — correlated "independent"
  trials are precisely what invalidates the paper's Hoeffding-bound
  guarantees (§7) without failing a single equality test.

The contract these rules encode: every stream/spawn key is built from
literals, loop indices, parameters, and already-derived values — nothing
else — and is unique per module. The fastpath engine deliberately
*reconstructs* streams under the event engine's labels, which is why
duplicate detection is scoped per module, not project-wide.

Call-site detection is heuristic on purpose: a ``.stream(...)`` /
``.spawn(...)`` method call counts when its receiver expression names an
RNG (``rng``/``factory``/``RngFactory``), so unrelated APIs with the
same method names (``FaultSchedule.stream``) stay out of scope;
``.stream_seed(...)``/``.nonce_source(...)`` are distinctive enough to
match unconditionally.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.audit.engine import Finding, ModuleContext, Rule
from repro.audit.rules_determinism import (
    ENTROPY_SOURCES,
    GLOBAL_RANDOM_FUNCTIONS,
    MONOTONIC_CLOCK,
    WALL_CLOCK,
)

#: Method names that consume a stream label as their first argument.
_LABEL_METHODS = frozenset({"stream", "spawn", "stream_seed", "nonce_source"})

#: Methods distinctive enough to match without a receiver hint.
_ALWAYS_MATCH = frozenset({"stream_seed", "nonce_source"})

_RECEIVER_HINT = re.compile(r"rng|factory", re.IGNORECASE)

#: Stream-namespace key per method: ``stream`` and ``stream_seed`` share
#: one keyspace (``stream`` is defined in terms of ``stream_seed``);
#: ``spawn`` and ``nonce_source`` prefix their material differently.
_NAMESPACE = {
    "stream": "stream",
    "stream_seed": "stream",
    "spawn": "spawn",
    "nonce_source": "nonce",
}

#: Builtins considered pure/deterministic inside a label expression.
_PURE_BUILTINS = frozenset(
    {"str", "int", "float", "bool", "len", "abs", "min", "max", "format",
     "ord", "chr", "repr", "round", "sorted", "tuple", "list", "zip",
     "enumerate", "range", "sum"}
)

#: Builtins whose value depends on interpreter state, not inputs.
_IMPURE_BUILTINS = frozenset({"id", "hash", "object", "vars", "globals", "locals"})


def _label_sites(
    ctx: ModuleContext,
) -> Iterator[Tuple[ast.Call, str, ast.AST]]:
    """Yield ``(call, method, label_expr)`` for RNG label call sites."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _LABEL_METHODS:
            continue
        if func.attr not in _ALWAYS_MATCH:
            if not _RECEIVER_HINT.search(ast.unparse(func.value)):
                continue
        yield node, func.attr, node.args[0]


def _nondeterministic_call(ctx: ModuleContext, call: ast.Call) -> Optional[str]:
    """Name of the nondeterministic source a call draws from, if any."""
    qualified = ctx.resolve(call.func)
    if qualified is not None:
        if (
            qualified in WALL_CLOCK
            or qualified in MONOTONIC_CLOCK
            or qualified in ENTROPY_SOURCES
            or qualified in GLOBAL_RANDOM_FUNCTIONS
            or qualified.startswith("secrets.")
            or qualified in {"os.getpid", "os.getppid", "threading.get_ident"}
        ):
            return qualified
        return None
    func = call.func
    if isinstance(func, ast.Name) and func.id in _IMPURE_BUILTINS:
        return func.id
    return None


def _constant_label(expr: ast.AST) -> Optional[str]:
    """The label's exact string when it is fully constant, else ``None``."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.JoinedStr):
        parts: List[str] = []
        for value in expr.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                return None
        return "".join(parts)
    return None


def _derivable(ctx: ModuleContext, expr: ast.AST) -> bool:
    """True when a label expression is built only from allowed material.

    Allowed: literals, names (parameters, loop indices, locals),
    attribute/subscript reads, arithmetic/concatenation over allowed
    parts, f-strings of allowed parts, and calls to pure builtins or
    string methods (``format``/``join``/``zfill``...). A call to anything
    else makes provenance statically unknowable.
    """
    for node in ast.walk(expr):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _PURE_BUILTINS:
                continue
            return False
        if isinstance(func, ast.Attribute):
            # String-method calls (`"x-{}".format(i)`, `sep.join(parts)`)
            # keep provenance; arbitrary method calls do not.
            if ctx.resolve(func) is None and func.attr in {
                "format", "join", "zfill", "lower", "upper", "replace",
                "strip", "lstrip", "rstrip",
            }:
                continue
            return False
        return False
    return True


class LabelEntropyRule(Rule):
    """RNG001 — a stream label interpolates nondeterministic state."""

    id = "RNG001"
    family = "rng-flow"
    severity = "error"
    summary = "RNG stream label built from nondeterministic state"
    rationale = (
        "Stream labels are part of the seed schedule: interpolating a "
        "timestamp, pid, `id(...)`, or an unseeded draw into a "
        "`stream()`/`spawn()` key makes the derived stream differ per "
        "run and per worker. Build labels from literals, loop indices, "
        "and already-derived seeds only."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_repro_module:
            return
        for call, method, label in _label_sites(ctx):
            for sub in ast.walk(label):
                if isinstance(sub, ast.Call):
                    source = _nondeterministic_call(ctx, sub)
                    if source is not None:
                        yield self.finding(
                            ctx,
                            call,
                            f"`{method}()` label interpolates "
                            f"nondeterministic `{source}`; derive labels "
                            "from literals, indices, or derived seeds",
                        )
                        break


class DuplicateLabelRule(Rule):
    """RNG002 — one stream label used at two call sites in a module."""

    id = "RNG002"
    family = "rng-flow"
    severity = "error"
    summary = "duplicate RNG stream label within one module"
    rationale = (
        "Two call sites deriving the same label draw from the *same* "
        "stream while looking independent — correlated draws silently "
        "invalidate the independence the Hoeffding bounds assume. Labels "
        "are compared per module and per namespace "
        "(`stream`/`spawn`/`nonce`), so the fastpath engine's deliberate "
        "stream reconstruction across modules stays legal."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_repro_module:
            return
        first_use: Dict[Tuple[str, str], int] = {}
        for call, method, label in _label_sites(ctx):
            constant = _constant_label(label)
            if constant is None:
                continue
            key = (_NAMESPACE[method], constant)
            if key in first_use:
                yield self.finding(
                    ctx,
                    call,
                    f"label {constant!r} already used for a "
                    f"`{key[0]}` stream at line {first_use[key]}; "
                    "same label = same stream = correlated draws",
                )
            else:
                first_use[key] = call.lineno


class OpaqueLabelRule(Rule):
    """RNG003 — a stream label whose provenance is statically unknowable."""

    id = "RNG003"
    family = "rng-flow"
    severity = "warning"
    summary = "RNG stream label with statically unknowable provenance"
    rationale = (
        "A label produced by an arbitrary call (`factory.stream("
        "make_label())`) cannot be audited for determinism or "
        "uniqueness. Thread the constituent parts (indices, names, "
        "derived seeds) into the label expression directly so RNG001/"
        "RNG002 can see them; genuinely safe constructions carry an "
        "inline `# repro: allow(RNG003)`."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_repro_module:
            return
        for call, method, label in _label_sites(ctx):
            if _nondeterministic_in(ctx, label):
                continue  # RNG001's finding; do not double-report.
            if not _derivable(ctx, label):
                yield self.finding(
                    ctx,
                    call,
                    f"`{method}()` label provenance is not statically "
                    "derivable; build labels from literals, indices, and "
                    "derived seeds",
                )


def _nondeterministic_in(ctx: ModuleContext, expr: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Call)
        and _nondeterministic_call(ctx, sub) is not None
        for sub in ast.walk(expr)
    )


RULES = (LabelEntropyRule(), DuplicateLabelRule(), OpaqueLabelRule())
