"""Audit command-line front end.

Reachable two ways (same flags, same exit codes)::

    repro-aai audit [paths ...] [options]
    python -m repro.audit [paths ...] [options]

Exit codes: ``0`` — no new error findings (baselined findings and
warnings are reported but do not fail); ``1`` — at least one new error
finding (suppressed by ``--warn-only``); ``2`` — usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.audit.baseline import DEFAULT_BASELINE, load_baseline, write_baseline
from repro.audit.cache import AuditCache
from repro.audit.catalog import render_rule_listing, select_rules
from repro.audit.engine import Finding, apply_baseline, audit_paths
from repro.audit.sarif import write_sarif


def configure_audit_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the audit options to ``parser`` (shared with ``repro-aai``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to audit (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="findings as human-readable lines or one JSON document",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help="baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE}; absent file = empty baseline)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report findings but always exit 0 (fixture/test trees)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="IDS",
        help="run only these rule ids (repeatable, comma-separable); "
             "unknown ids are a usage error (exit 2)",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="IDS",
        help="skip these rule ids (repeatable, comma-separable); "
             "unknown ids are a usage error (exit 2)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="analyze files over N worker processes "
             "(repro.parallel; byte-identical to serial)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help="incremental analysis cache: unchanged files (by content "
             "hash) skip parsing and per-file rules",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="also write findings as SARIF 2.1.0 (GitHub code scanning)",
    )


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    return [
        part.strip()
        for value in values
        for part in value.split(",")
        if part.strip()
    ]


def _render_text(findings: Sequence[Finding], new_errors: int) -> str:
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = sum(1 for f in findings if f.severity == "warning")
    baselined = sum(1 for f in findings if f.baselined)
    lines.append(
        f"audit: {len(findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s), "
        f"{baselined} baselined, {new_errors} new error(s))"
    )
    return "\n".join(lines)


def _render_json(
    findings: Sequence[Finding], paths: Sequence[str], new_errors: int
) -> str:
    payload = {
        "format": "repro-audit-findings",
        "version": 1,
        "paths": list(paths),
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "severity": f.severity,
                "message": f.message,
                "fingerprint": f.fingerprint,
                "baselined": f.baselined,
            }
            for f in findings
        ],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(1 for f in findings if f.severity == "warning"),
            "baselined": sum(1 for f in findings if f.baselined),
            "new_errors": new_errors,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def run_audit(args: argparse.Namespace) -> int:
    """Execute the audit described by parsed ``args``; returns exit code."""
    if args.list_rules:
        print(render_rule_listing())
        return 0
    select = _split_ids(getattr(args, "select", None))
    ignore = _split_ids(getattr(args, "ignore", None))
    try:
        rules = select_rules(select, ignore)
    except KeyError as exc:
        print(f"audit: {exc.args[0]}", file=sys.stderr)
        return 2
    cache = None
    if args.cache:
        cache = AuditCache.load(args.cache, rules)
    findings = audit_paths(
        args.paths,
        rules=rules if (select or ignore) else None,
        jobs=max(1, args.jobs),
        cache=cache,
    )
    if cache is not None:
        cache.save(args.cache)
    if args.write_baseline:
        count = write_baseline(args.baseline, findings)
        print(f"baseline with {count} entr{'y' if count == 1 else 'ies'} "
              f"written to {args.baseline}")
        return 0
    findings = apply_baseline(findings, load_baseline(args.baseline))
    if args.sarif:
        write_sarif(args.sarif, findings)
    new_errors = sum(
        1 for f in findings if f.severity == "error" and not f.baselined
    )
    if args.format == "json":
        print(_render_json(findings, args.paths, new_errors))
    elif findings:
        print(_render_text(findings, new_errors))
    else:
        print("audit: clean")
    if new_errors and not args.warn_only:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-aai audit",
        description=(
            "Static determinism & crypto-boundary auditor "
            "(rule catalogue: docs/AUDIT.md)"
        ),
    )
    configure_audit_parser(parser)
    args = parser.parse_args(argv)
    return run_audit(args)


if __name__ == "__main__":
    sys.exit(main())
