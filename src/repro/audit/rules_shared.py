"""Concurrent shared-state rules (RACE*): mesh/parallel determinism contract.

The mesh layer (:mod:`repro.topology.mesh`) runs N protocol instances in
one simulator, and the parallel engine (:mod:`repro.parallel`) fans work
out over processes. Both subsystems promise byte-identical output across
``--jobs``/``--shards`` — a promise the ``netexp`` CI job *samples* with
one equality check, while these rules encode it structurally: any state
shared wider than a single route/worker must either be immutable or have
its writes funneled through a deterministic (sorted/canonical) order.

A module-level ``dict`` appended to from per-route code is the classic
violation: which route writes first depends on scheduling, so iteration
order — and any output derived from it — varies between runs even when
the *values* are identical. Class attributes holding mutable containers
are the same hazard wearing instance syntax: every instance (every
concurrent route) shares one object.

Escape hatch: state that is genuinely shared on purpose (an interned
cache, a registry keyed and emitted in sorted order) carries an inline
``# repro: allow(RACE00x)`` with its justification, which keeps the
canonical-ordering argument next to the container it excuses — see the
determinism contracts in ``docs/TOPOLOGY.md`` and ``docs/PARALLEL.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.audit.engine import Finding, ModuleContext, Rule

#: Concurrency scope: modules whose code runs per-route (mesh) or
#: per-worker (process pool, sharded Monte-Carlo batches).
CONCURRENT_SCOPE = (
    "repro.topology",
    "repro.parallel",
    "repro.mc",
    "repro.net.fastpath",
)

#: Constructors producing a fresh mutable container.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list", "dict", "set", "bytearray",
        "collections.defaultdict", "collections.Counter",
        "collections.deque", "collections.OrderedDict",
    }
)

#: Method calls that mutate a container in place.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
        "extendleft",
    }
)


def _is_mutable_container(ctx: ModuleContext, value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CONSTRUCTORS:
            return True
        qualified = ctx.resolve(func)
        if qualified in _MUTABLE_CONSTRUCTORS:
            return True
    return False


def _module_level_containers(ctx: ModuleContext) -> Dict[str, int]:
    """Module-scope names bound to mutable containers, with def lines."""
    containers: Dict[str, int] = {}
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        else:
            continue
        if not _is_mutable_container(ctx, value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                containers[target.id] = stmt.lineno
    return containers


def _local_bindings(func: ast.AST) -> Set[str]:
    """Names (re)bound inside ``func``: params, assignments, loop targets.

    A function that rebinds a name shadows the module-level container of
    the same name — mutations then touch local state, not shared state.
    ``global`` declarations do the opposite: they make the module name
    assignable, so they are deliberately *not* treated as shadowing.
    A subscript/attribute store (``D[k] = v``) mutates the object the
    name refers to without rebinding the name, so it never shadows.
    """
    bound: Set[str] = set()
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs,
                args.vararg, args.kwarg]:
        if arg is not None:
            bound.add(arg.arg)
    globals_declared: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                bound.update(_bound_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bound.update(_bound_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bound.update(_bound_names(item.optional_vars))
    return bound - globals_declared


def _bound_names(target: ast.AST) -> Iterator[str]:
    """Names a store-target actually (re)binds.

    Descends tuple/list/star destructuring; stops at subscripts and
    attributes, whose base name keeps referring to the same object.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _mutations_of(func: ast.AST, names: Set[str]) -> Iterator[ast.AST]:
    """Yield nodes inside ``func`` that mutate one of ``names`` in place."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in _MUTATING_METHODS
                and isinstance(callee.value, ast.Name)
                and callee.value.id in names
            ):
                yield node
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    yield node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    yield node


class SharedModuleStateRule(Rule):
    """RACE001 — module-level container mutated from function scope."""

    id = "RACE001"
    family = "shared-state"
    severity = "error"
    summary = "module-level mutable container written from function scope"
    rationale = (
        "A module-level dict/list/set written from per-route or "
        "per-worker code paths accumulates entries in scheduling order, "
        "so anything iterating it emits in a nondeterministic order — "
        "breaking the byte-identical `--jobs`/`--shards` contract the "
        "netexp CI job samples. Pass state down explicitly, or emit in "
        "sorted order and carry an inline justification."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_module(*CONCURRENT_SCOPE):
            return
        containers = _module_level_containers(ctx)
        if not containers:
            return
        names = set(containers)
        for stmt in ast.walk(ctx.tree):
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            shadowed = _local_bindings(stmt)
            visible = names - shadowed
            if not visible:
                continue
            for mutation in _mutations_of(stmt, visible):
                yield self.finding(
                    ctx,
                    mutation,
                    "writes a module-level mutable container from "
                    f"function scope (defined at line "
                    f"{min(containers[n] for n in visible)}); shared "
                    "across every concurrent route/worker in the process",
                )


class SharedClassStateRule(Rule):
    """RACE002 — class-attribute mutable container (shared by instances)."""

    id = "RACE002"
    family = "shared-state"
    severity = "error"
    summary = "class-level mutable container shared across instances"
    rationale = (
        "A mutable container in a class body is one object shared by "
        "every instance — with one instance per concurrent route/worker, "
        "per-instance state silently becomes cross-route state. Initialize "
        "containers in `__init__` (or `dataclasses.field(default_factory)`, "
        "which this rule does not flag)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_module(*CONCURRENT_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    value = stmt.value
                else:
                    continue
                if _is_mutable_container(ctx, value):
                    yield self.finding(
                        ctx,
                        stmt,
                        f"class `{node.name}` binds a mutable container "
                        "at class scope; every concurrent instance shares "
                        "it — initialize per-instance in `__init__`",
                    )


RULES = (SharedModuleStateRule(), SharedClassStateRule())
