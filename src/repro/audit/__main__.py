"""``python -m repro.audit`` — same interface as ``repro-aai audit``."""

import sys

from repro.audit.cli import main

sys.exit(main())
