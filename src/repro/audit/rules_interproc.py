"""Interprocedural DET/ST rules: transitive sink reach from sim scope.

The per-file ``DET``/``ST`` rules ban *direct* use of wall clocks,
ambient entropy, and global RNG state. What they cannot see is a
sim-scope function laundering the same nondeterminism through a helper
chain — ``repro.mc`` calling a utility that calls another utility that
calls ``time.time()`` looks clean file-by-file, yet injects the host's
wall clock straight into a simulated experiment, which is exactly the
nondeterminism the identification guarantees (PAPER.md §7: the Hoeffding
bounds assume bit-reproducible trials) cannot tolerate.

These rules walk the project call graph (:mod:`repro.audit.graph`)
from every function in simulator scope and flag any chain of length ≥ 2
ending at a banned sink. Chains of length 1 (the function itself calls
the sink) are excluded by construction — those are the per-file rules'
findings, and double-reporting would teach people to suppress twice.

Sanctioned boundaries keep the pass precise rather than merely loud:

* a *monotonic* timer inside telemetry scope is not a sink — host-time
  instrumentation (``repro.parallel`` retry deadlines, ``repro.obs``
  profilers) is measured overhead, not simulation state, mirroring the
  per-file DET003 semantics;
* a sink use whose line carries a ``# repro: allow(DET...)``/``ST``
  suppression in its *own* file is sanctioned for callers too (e.g. the
  injectable ``os.urandom`` default in ``repro.crypto.cipher``);
* wall clocks and entropy are never sanctioned by location — reaching
  them from sim scope is flagged no matter which module hosts the call.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.audit.engine import Finding, ProjectRule
from repro.audit.graph import (
    CallSite,
    FunctionNode,
    ProjectIndex,
    find_sink_chains,
)
from repro.audit.rules_determinism import (
    ENTROPY_SOURCES,
    GLOBAL_RANDOM_FUNCTIONS,
    MONOTONIC_CLOCK,
    NUMPY_RANDOM_SAFE,
    SIM_SCOPE,
    TELEMETRY_SCOPE,
    WALL_CLOCK,
)

#: Per-file rule ids whose inline suppression also sanctions the sink for
#: transitive callers — an excused line is excused, not a back door.
_SANCTIONING_IDS = ("DET001", "DET003", "DET004", "ST001")


def _in_scope(module: str, prefixes) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _sanctioned(call: CallSite, holder: FunctionNode, index: ProjectIndex) -> bool:
    facts = index.facts_for(holder.module)
    return facts is not None and facts.allows(call.lineno, _SANCTIONING_IDS)


def _chain_text(chain: List[str], sink: str) -> str:
    return " -> ".join([*chain, f"{sink}()"])


class _InterprocRule(ProjectRule):
    """Shared walk: one subclass per sink family."""

    def sink_name(
        self, call: CallSite, holder: FunctionNode, index: ProjectIndex
    ) -> Optional[str]:
        raise NotImplementedError

    def message(self, chain: List[str], call: CallSite, holder: FunctionNode) -> str:
        raise NotImplementedError

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for start in index.iter_functions():
            if not _in_scope(start.module, SIM_SCOPE):
                continue

            def is_sink(call: CallSite, holder: FunctionNode) -> Optional[str]:
                if _sanctioned(call, holder, index):
                    return None
                return self.sink_name(call, holder, index)

            for chain, sink_call, holder, first_hop in find_sink_chains(
                index, start, is_sink
            ):
                yield Finding(
                    rule=self.id,
                    path=index.facts_for(start.module).path,
                    line=first_hop.lineno,
                    col=first_hop.col,
                    message=self.message(chain, sink_call, holder),
                    severity=self.severity,
                    line_text=first_hop.line_text,
                )


class TransitiveClockRule(_InterprocRule):
    """ST002 — sim scope reaches a host clock through a call chain."""

    id = "ST002"
    family = "interproc"
    severity = "error"
    summary = "sim-scope code transitively reaches a host clock"
    rationale = (
        "A helper chain ending at `time.time()` (anywhere) or a "
        "monotonic timer (outside telemetry scope) feeds the host clock "
        "into simulated behavior exactly as a direct read would — the "
        "per-file ST001/DET003 rules only see one file at a time, so "
        "the call graph is walked project-wide. Read `SimClock`/"
        "`NodeClock` instead, or confine host timing to telemetry scope."
    )

    def sink_name(
        self, call: CallSite, holder: FunctionNode, index: ProjectIndex
    ) -> Optional[str]:
        target = call.target
        if target in WALL_CLOCK:
            return target
        if target in MONOTONIC_CLOCK and not _in_scope(
            holder.module, TELEMETRY_SCOPE
        ):
            return target
        return None

    def message(self, chain: List[str], call: CallSite, holder: FunctionNode) -> str:
        return (
            f"sim-scope call chain reaches host clock `{call.target}` "
            f"({holder.module}:{call.lineno}): {_chain_text(chain, call.target)}"
        )


class TransitiveEntropyRule(_InterprocRule):
    """DET005 — sim scope reaches global RNG / ambient entropy transitively."""

    id = "DET005"
    family = "interproc"
    severity = "error"
    summary = "sim-scope code transitively reaches global RNG or entropy"
    rationale = (
        "Global `random.*`/`numpy.random.*` state and ambient entropy "
        "(`os.urandom`, `uuid.uuid4`, `secrets`) break seed-determinism "
        "no matter how many helpers deep they hide; a sim-scope function "
        "whose call chain ends there draws values no `RngFactory` stream "
        "controls. Thread an injected stream down the chain instead."
    )

    def sink_name(
        self, call: CallSite, holder: FunctionNode, index: ProjectIndex
    ) -> Optional[str]:
        target = call.target
        if target in GLOBAL_RANDOM_FUNCTIONS or target in ENTROPY_SOURCES:
            return target
        if target.startswith("secrets."):
            return target
        if target.startswith("numpy.random."):
            tail = target.rsplit(".", 1)[1]
            if tail not in NUMPY_RANDOM_SAFE:
                return target
        return None

    def message(self, chain: List[str], call: CallSite, holder: FunctionNode) -> str:
        return (
            f"sim-scope call chain reaches nondeterministic "
            f"`{call.target}` ({holder.module}:{call.lineno}): "
            f"{_chain_text(chain, call.target)}"
        )


RULES = (TransitiveEntropyRule(), TransitiveClockRule())
