"""Iteration-order rules (ITER*): unordered collections feeding results.

CPython randomizes ``str`` hashing per process (PYTHONHASHSEED), so the
iteration order of a ``set`` of strings differs between the parent and a
pool worker. A loop over a set that appends to results, emits report
rows, or consumes RNG draws therefore produces different output — or the
same output with a differently-advanced RNG stream — depending on which
process ran it. ``dict`` iteration is insertion-ordered and thus safe
*per se*, but in the experiment fan-out/merge paths the insertion order
itself often comes from completion order, so dict-view loops there get a
warning nudge toward an explicit ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.audit.engine import Finding, ModuleContext, Rule

#: Order-sensitive consumers of a single iterable argument.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate"})

#: Experiment fan-out/merge paths where dict insertion order is itself
#: often nondeterministic (completion order, merged worker snapshots).
EXPERIMENT_SCOPE = ("repro.experiments", "repro.parallel", "repro.mc")


def _is_unordered(node: ast.AST, ctx: ModuleContext) -> bool:
    """True for expressions whose iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        # `set(...)`/`frozenset(...)` — only when the name still means
        # the builtin (not rebound by an import).
        return (
            node.func.id in {"set", "frozenset"}
            and node.func.id not in ctx.imports
        )
    return False


def _iteration_sites(tree: ast.Module) -> Iterator[ast.AST]:
    """Expressions whose iteration order reaches program output."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SENSITIVE_CALLS
            and len(node.args) == 1
        ):
            yield node.args[0]


class UnorderedSetIterationRule(Rule):
    """ITER001 — iterating a set where order can reach results."""

    id = "ITER001"
    family = "iteration-order"
    severity = "error"
    summary = "iteration over a `set`/`frozenset` (hash-order dependent)"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED for strings, so a "
        "loop over a set can emit rows or consume RNG draws in a "
        "different order in a pool worker than in the parent — breaking "
        "the byte-identical `--jobs N` guarantee. Wrap the set in "
        "`sorted(...)` or keep an ordered container."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for site in _iteration_sites(ctx.tree):
            if _is_unordered(site, ctx):
                yield self.finding(
                    ctx,
                    site,
                    "iteration over an unordered set; use `sorted(...)` "
                    "(or an ordered container) so output and RNG "
                    "consumption order are reproducible",
                )


class DictViewIterationRule(Rule):
    """ITER002 — dict-view loops in experiment fan-out/merge paths."""

    id = "ITER002"
    family = "iteration-order"
    severity = "warning"
    summary = "dict-view iteration in experiment fan-out/merge code"
    rationale = (
        "Dict iteration follows insertion order, but in the parallel "
        "fan-out/merge paths insertion order frequently *is* completion "
        "order (futures, checkpoint records, merged worker snapshots). "
        "An explicit `sorted(...)` documents — and enforces — the order "
        "results are reassembled in."
    )

    _VIEWS = frozenset({"values", "items", "keys"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_module(*EXPERIMENT_SCOPE):
            return
        for site in _iteration_sites(ctx.tree):
            method = self._view_call(site)
            if method is not None:
                yield self.finding(
                    ctx,
                    site,
                    f"iterating `.{method}()` in an experiment path; "
                    "wrap in `sorted(...)` if the dict was filled in "
                    "completion order",
                )

    def _view_call(self, node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Call)
            and not node.args
            and not node.keywords
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._VIEWS
        ):
            return node.func.attr
        return None


RULES: List[Rule] = [
    UnorderedSetIterationRule(),
    DictViewIterationRule(),
]
