"""Runtime sanitizer: make nondeterminism loud inside simulator scope.

The static rules catch what the AST shows; this facet catches what it
cannot (dynamic dispatch, third-party code, `getattr` tricks). Inside a
:func:`sanitized` block the wall-clock, ambient-entropy, and global-RNG
entry points are patched to raise :class:`SanitizerViolation`, so a test
that runs a simulation under the sanitizer proves the whole dynamic call
graph — not just the audited files — stayed on seeded streams and the
simulation clock::

    with sanitized():
        run_detection_experiment(...)   # raises if anything strays

Injected ``random.Random`` instances and ``time.monotonic`` timers are
untouched: the sanitizer blocks exactly the *global* entry points the
determinism rules ban (DET001/DET003/DET004), nothing else.
"""

from __future__ import annotations

import importlib
import sys
from contextlib import contextmanager
from typing import Iterable, Iterator, List, Optional, Tuple


class SanitizerViolation(RuntimeError):
    """A forbidden nondeterministic entry point was called."""


#: ``(module, attribute)`` pairs patched by :func:`sanitized`. Mirrors
#: the static ban lists in :mod:`repro.audit.rules_determinism`.
WALL_CLOCK_TARGETS: Tuple[Tuple[str, str], ...] = (
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "ctime"),
    ("time", "localtime"),
    ("time", "strftime"),
)

ENTROPY_TARGETS: Tuple[Tuple[str, str], ...] = (
    ("os", "urandom"),
)

GLOBAL_RANDOM_TARGETS: Tuple[Tuple[str, str], ...] = tuple(
    ("random", name)
    for name in (
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    )
)

NUMPY_RANDOM_TARGETS: Tuple[Tuple[str, str], ...] = tuple(
    ("numpy.random", name)
    for name in (
        "choice", "normal", "permutation", "rand", "randint", "randn",
        "random", "random_sample", "seed", "shuffle", "standard_normal",
        "uniform",
    )
)

ALL_TARGETS: Tuple[Tuple[str, str], ...] = (
    WALL_CLOCK_TARGETS
    + ENTROPY_TARGETS
    + GLOBAL_RANDOM_TARGETS
    + NUMPY_RANDOM_TARGETS
)


def _make_blocker(dotted: str):
    def _blocked(*_args, **_kwargs):
        raise SanitizerViolation(
            f"{dotted}() called inside a sanitized simulation scope; "
            "inject a seeded stream (repro.net.rng.RngFactory) or read "
            "the simulation clock (repro.net.clock)"
        )

    _blocked.__name__ = f"blocked_{dotted.replace('.', '_')}"
    _blocked.__qualname__ = _blocked.__name__
    return _blocked


def _loaded_module(module_name: str) -> Optional[object]:
    """The module to patch, or ``None`` when its package is not in use.

    Submodules can hide behind lazy loaders (``numpy.random`` is absent
    from ``sys.modules`` under NumPy 2 until first attribute access), so
    when the *root* package is already imported the submodule is resolved
    explicitly; packages never imported by the process stay unimported.
    """
    module = sys.modules.get(module_name)
    if module is not None:
        return module
    root = module_name.split(".")[0]
    if root not in sys.modules:
        return None
    try:
        return importlib.import_module(module_name)
    except ImportError:
        return None


@contextmanager
def sanitized(allow: Iterable[str] = ()) -> Iterator[None]:
    """Patch nondeterministic entry points to raise for the block's scope.

    ``allow`` lists dotted names to leave untouched (e.g.
    ``{"os.urandom"}`` for a test that exercises the cipher's default
    entropy path). Modules that are not imported (e.g. ``numpy`` absent)
    are skipped silently; patches restore in reverse order on exit, so
    nesting is safe.
    """
    allowed = set(allow)
    patched: List[Tuple[object, str, object]] = []
    try:
        for module_name, attr in ALL_TARGETS:
            dotted = f"{module_name}.{attr}"
            if dotted in allowed:
                continue
            module = _loaded_module(module_name)
            if module is None or not hasattr(module, attr):
                continue
            patched.append((module, attr, getattr(module, attr)))
            setattr(module, attr, _make_blocker(dotted))
        yield
    finally:
        for module, attr, original in reversed(patched):
            setattr(module, attr, original)
