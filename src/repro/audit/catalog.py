"""The rule catalogue: every family assembled, plus engine meta-rules.

``docs/AUDIT.md`` documents each id; ``repro-aai audit --list-rules``
prints this table. Since the whole-program pass the catalogue carries
two kinds of rules — per-file :class:`~repro.audit.engine.Rule` and
whole-program :class:`~repro.audit.engine.ProjectRule` — which the
engine separates itself (:func:`repro.audit.engine.split_rules`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.audit import (
    rules_crypto,
    rules_determinism,
    rules_fastpath,
    rules_faults,
    rules_interproc,
    rules_iteration,
    rules_obs,
    rules_rngflow,
    rules_shared,
    rules_simtime,
)
from repro.audit.engine import PARSE_ERROR, UNKNOWN_SUPPRESSION, Rule

#: Meta findings emitted by the engine itself rather than a Rule —
#: (id, severity, summary) for ``--list-rules`` and docs.
META_RULES: Tuple[Tuple[str, str, str], ...] = (
    (UNKNOWN_SUPPRESSION, "error",
     "a `# repro: allow(...)` comment names an unknown rule id"),
    (PARSE_ERROR, "error", "file does not parse / cannot be read"),
)

#: The rule modules, in the order their findings are documented.
_RULE_MODULES = (
    rules_determinism,
    rules_crypto,
    rules_faults,
    rules_simtime,
    rules_iteration,
    rules_fastpath,
    rules_obs,
    rules_rngflow,
    rules_shared,
    rules_interproc,
)


def all_rules() -> List[Rule]:
    """Every audit rule (per-file and project), in stable id order."""
    rules: List[Rule] = []
    for module in _RULE_MODULES:
        rules.extend(module.RULES)
    return sorted(rules, key=lambda rule: rule.id)


def known_rule_ids() -> Set[str]:
    """Every id that may appear in findings or suppressions."""
    ids = {rule.id for rule in all_rules()}
    ids.update(meta_id for meta_id, _, _ in META_RULES)
    return ids


def find_rule(rule_id: str) -> Optional[Rule]:
    for rule in all_rules():
        if rule.id == rule_id:
            return rule
    return None


def select_rules(
    select: Optional[List[str]] = None,
    ignore: Optional[List[str]] = None,
) -> List[Rule]:
    """The catalogue narrowed by ``--select``/``--ignore`` id lists.

    Unknown ids raise ``KeyError`` listing the offenders — the CLI turns
    that into exit code 2 so a typo cannot silently audit nothing.
    """
    known = known_rule_ids()
    unknown = sorted(
        {rule_id for rule_id in [*(select or []), *(ignore or [])]} - known
    )
    if unknown:
        raise KeyError(
            f"unknown rule id(s): {', '.join(unknown)} "
            "(see `repro-aai audit --list-rules`)"
        )
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def family_docs() -> Dict[str, str]:
    """Family name → first paragraph of its rule module's docstring."""
    docs: Dict[str, str] = {}
    for module in _RULE_MODULES:
        families = {rule.family for rule in module.RULES}
        doc = (module.__doc__ or "").strip()
        first_paragraph = doc.split("\n\n", 1)[0].replace("\n", " ").strip()
        for family in families:
            docs[family] = first_paragraph
    return docs


def render_rule_listing() -> str:
    """Human-readable catalogue for ``--list-rules``.

    Rules are grouped by family (each introduced by its module's
    docstring summary) and id-sorted within a family; the engine's meta
    rules close the listing.
    """
    docs = family_docs()
    by_family: Dict[str, List[Rule]] = {}
    for rule in all_rules():
        by_family.setdefault(rule.family, []).append(rule)
    lines: List[str] = []
    for family in sorted(by_family):
        lines.append(f"== {family} ==")
        if docs.get(family):
            lines.append(f"   {docs[family]}")
        for rule in sorted(by_family[family], key=lambda rule: rule.id):
            lines.append(f"{rule.id}  [{rule.severity:7s}]  ({rule.family}) "
                         f"{rule.summary}")
            lines.append(f"        {rule.rationale}")
        lines.append("")
    lines.append("== engine ==")
    for meta_id, severity, summary in META_RULES:
        lines.append(f"{meta_id}  [{severity:7s}]  (engine) {summary}")
    return "\n".join(lines)
