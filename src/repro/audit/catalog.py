"""The rule catalogue: every family assembled, plus engine meta-rules.

``docs/AUDIT.md`` documents each id; ``repro-aai audit --list-rules``
prints this table.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.audit import (
    rules_crypto,
    rules_determinism,
    rules_fastpath,
    rules_faults,
    rules_iteration,
    rules_obs,
    rules_simtime,
)
from repro.audit.engine import PARSE_ERROR, UNKNOWN_SUPPRESSION, Rule

#: Meta findings emitted by the engine itself rather than a Rule —
#: (id, severity, summary) for ``--list-rules`` and docs.
META_RULES: Tuple[Tuple[str, str, str], ...] = (
    (UNKNOWN_SUPPRESSION, "error",
     "a `# repro: allow(...)` comment names an unknown rule id"),
    (PARSE_ERROR, "error", "file does not parse / cannot be read"),
)


def all_rules() -> List[Rule]:
    """Every audit rule, in stable id order."""
    rules = [
        *rules_determinism.RULES,
        *rules_crypto.RULES,
        *rules_faults.RULES,
        *rules_simtime.RULES,
        *rules_iteration.RULES,
        *rules_fastpath.RULES,
        *rules_obs.RULES,
    ]
    return sorted(rules, key=lambda rule: rule.id)


def known_rule_ids() -> Set[str]:
    """Every id that may appear in findings or suppressions."""
    ids = {rule.id for rule in all_rules()}
    ids.update(meta_id for meta_id, _, _ in META_RULES)
    return ids


def find_rule(rule_id: str) -> Optional[Rule]:
    for rule in all_rules():
        if rule.id == rule_id:
            return rule
    return None


def render_rule_listing() -> str:
    """Human-readable catalogue for ``--list-rules``."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  [{rule.severity:7s}]  ({rule.family}) "
                     f"{rule.summary}")
        lines.append(f"        {rule.rationale}")
    for meta_id, severity, summary in META_RULES:
        lines.append(f"{meta_id}  [{severity:7s}]  (engine) {summary}")
    return "\n".join(lines)
