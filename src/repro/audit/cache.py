"""Incremental analysis cache: skip files whose content has not changed.

The per-file stage is a pure function of (file content, rule set,
analyzer version) — :class:`repro.audit.engine.FileAnalysis` says so and
its serializability proves it. This cache exploits that purity: each
entry stores a file's content hash next to its serialized analysis, so a
warm run re-reads and re-hashes every file (cheap) but re-parses and
re-checks none of the unchanged ones (the expensive part). The
whole-program stage is *never* cached — project rules recompute each run
over the assembled facts, because a one-line edit in module A can create
a cross-module finding anchored in untouched module B.

Invalidation is by construction, not by mtime: the cache key is the
content digest plus a signature over the sorted rule ids, the analyzer
version, and the Python version. Change any of those and every entry
misses; ``--select``/``--ignore`` runs therefore never poison the
full-catalogue cache. Saving keeps only entries touched this run, so the
file tracks the audited tree instead of growing monotonically.
"""

from __future__ import annotations

import hashlib  # repro: allow(CB001) -- content addressing, not crypto
import json
import os
import sys
from typing import Dict, Optional, Sequence

from repro.audit.engine import FileAnalysis, Rule

#: Bumped whenever analysis output changes for identical input — new
#: rules, changed fact extraction, changed finding fields.
ANALYZER_VERSION = 2

_CACHE_FORMAT = "repro-audit-cache"


def rules_signature(rules: Sequence[Rule]) -> str:
    """Digest over everything besides file content that shapes results."""
    material = json.dumps(
        {
            "rules": sorted(rule.id for rule in rules),
            "analyzer": ANALYZER_VERSION,
            "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        },
        sort_keys=True,
    )
    # repro: allow(CB001) -- cache-key hashing, not crypto
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def content_digest(data: bytes) -> str:
    # repro: allow(CB001) -- cache-key hashing, not crypto
    return hashlib.sha256(data).hexdigest()


class AuditCache:
    """Content-addressed store of per-file analyses.

    The engine drives it through exactly two calls per file:
    :meth:`lookup` (hit → the deserialized analysis, parse skipped) and
    :meth:`store` (miss → remember the fresh analysis). :meth:`save`
    persists only entries touched this run.
    """

    def __init__(self, signature: str) -> None:
        self.signature = signature
        self._entries: Dict[str, dict] = {}
        #: Display paths read or written this run — what :meth:`save` keeps.
        self._touched: Dict[str, bool] = {}
        #: Content digests computed during lookup, reused by store.
        self._digests: Dict[str, str] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: str, rules: Sequence[Rule]) -> "AuditCache":
        """Cache from ``path``; a missing/stale/corrupt file is empty.

        A signature mismatch discards every entry rather than erroring:
        the cache is an accelerator, never a source of truth.
        """
        cache = cls(rules_signature(rules))
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _CACHE_FORMAT
            or payload.get("signature") != cache.signature
        ):
            return cache
        entries = payload.get("entries")
        if isinstance(entries, dict):
            cache._entries = entries
        return cache

    def save(self, path: str) -> int:
        """Write touched entries to ``path``; returns how many were kept."""
        kept = {
            display: entry
            for display, entry in sorted(self._entries.items())
            if self._touched.get(display)
        }
        payload = {
            "format": _CACHE_FORMAT,
            "version": 1,
            "signature": self.signature,
            "entries": kept,
        }
        tmp = f"{path}.tmp"
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return len(kept)

    def lookup(self, filename: str, display: str) -> Optional[FileAnalysis]:
        """The cached analysis for ``filename``, if its content matches."""
        try:
            with open(filename, "rb") as handle:
                digest = content_digest(handle.read())
        except OSError:
            return None
        self._digests[display] = digest
        entry = self._entries.get(display)
        if entry is None or entry.get("sha256") != digest:
            self.misses += 1
            return None
        try:
            analysis = FileAnalysis.from_dict(entry["analysis"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        self._touched[display] = True
        return analysis

    def store(self, filename: str, analysis: FileAnalysis) -> None:
        """Remember a freshly computed analysis for ``filename``."""
        display = analysis.path
        digest = self._digests.get(display)
        if digest is None:
            try:
                with open(filename, "rb") as handle:
                    digest = content_digest(handle.read())
            except OSError:
                return
        self._entries[display] = {
            "sha256": digest,
            "analysis": analysis.to_dict(),
        }
        self._touched[display] = True
