"""Crypto-boundary rules (CB*): substrate containment and key-role hygiene.

The reproduction builds HMAC-SHA256, the PRF, and the CTR cipher from
scratch inside :mod:`repro.crypto` because the paper (§3.3, §6) specifies
its protocols directly in terms of those primitives. Two boundaries keep
that substrate honest:

* stdlib ``hashlib``/``hmac`` may appear only inside ``repro.crypto``
  (where the from-scratch constructions bottom out in SHA-256) — protocol
  or simulator code importing them would bypass the audited substrate.
  ``repro.net.rng`` carries an inline allow for its seed-derivation use.
* §3.3 derives *separate* subkeys for MAC computation and encryption
  (``repro.crypto.keys.derive_key`` roles); feeding a MAC subkey into the
  cipher (or vice versa) collapses that domain separation.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.audit.engine import Finding, ModuleContext, Rule

#: Modules allowed to import the stdlib hash/MAC primitives.
CRYPTO_SCOPE = ("repro.crypto",)

_STDLIB_CRYPTO = frozenset({"hashlib", "hmac"})

#: Encryption sinks (constructors/functions that expect an *encryption*
#: subkey) and the identifier substrings that mark a MAC-role key.
_ENC_SINKS = frozenset({"StreamCipher"})
_MAC_KEY_MARKERS = ("mac_key", "mac_keys")

#: MAC sinks (expect a *MAC* subkey) and encryption-role key markers.
_MAC_SINKS = frozenset({"mac", "verify_mac", "hmac_sha256"})
_ENC_KEY_MARKERS = ("enc_key", "enc_keys", "encryption_key")


class StdlibCryptoImportRule(Rule):
    """CB001 — stdlib ``hashlib``/``hmac`` outside ``repro.crypto``."""

    id = "CB001"
    family = "crypto-boundary"
    severity = "error"
    summary = "stdlib `hashlib`/`hmac` import outside `repro.crypto`"
    rationale = (
        "The paper's protocols are specified in terms of the from-scratch "
        "substrate in `repro.crypto` (HMAC per RFC 2104, PRF, CTR cipher); "
        "importing stdlib `hashlib`/`hmac` elsewhere bypasses the audited "
        "constructions. `repro.net.rng`'s SHA-256 stream derivation is the "
        "deliberate, inline-allowed exception."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_module(*CRYPTO_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [(node.module or "").split(".")[0]]
            else:
                continue
            for name in names:
                if name in _STDLIB_CRYPTO:
                    yield self.finding(
                        ctx,
                        node,
                        f"stdlib `{name}` imported outside `repro.crypto`; "
                        "use the substrate in `repro.crypto` "
                        "(hashing/mac/prf) instead",
                    )


def _terminal_name(func: ast.AST) -> Optional[str]:
    """Last component of a call target (``keys.mac_key`` -> ``mac_key``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _contains_key_role(node: ast.AST, markers: "tuple[str, ...]", role: str) -> bool:
    """True when the expression references a key of the given role.

    Matches identifier/attribute names carrying a role marker
    (``mac_key``, ``enc_keys``, ...) and ``derive_key(master, "<role>")``
    calls with a literal role string.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and any(
            marker in sub.attr for marker in markers
        ):
            return True
        if isinstance(sub, ast.Name) and any(
            marker in sub.id for marker in markers
        ):
            return True
        if (
            isinstance(sub, ast.Call)
            and _terminal_name(sub.func) == "derive_key"
            and len(sub.args) >= 2
            and isinstance(sub.args[1], ast.Constant)
            and sub.args[1].value == role
        ):
            return True
    return False


class KeyRoleCrossUseRule(Rule):
    """CB002 — MAC subkey fed to the cipher, or encryption subkey to a MAC."""

    id = "CB002"
    family = "crypto-boundary"
    severity = "error"
    summary = "MAC/encryption subkey used in the opposite role"
    rationale = (
        "§3.3 derives role-separated subkeys from each pairwise master "
        "key (`repro.crypto.keys`): `mac_key` for authentication, "
        "`encryption_key` for PAAI-2 onion layers. Cross-use collapses "
        "the PRF domain separation those roles provide."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name in _ENC_SINKS:
                key_args = list(node.args[:1]) + [
                    kw.value for kw in node.keywords if kw.arg == "key"
                ]
                for arg in key_args:
                    if _contains_key_role(arg, _MAC_KEY_MARKERS, "mac"):
                        yield self.finding(
                            ctx,
                            node,
                            f"`{name}(...)` receives a MAC-role key; use "
                            "`KeyManager.encryption_key` / "
                            "`derive_key(master, \"enc\")`",
                        )
                        break
            elif name in _MAC_SINKS:
                key_args = list(node.args[:1]) + [
                    kw.value for kw in node.keywords if kw.arg == "key"
                ]
                for arg in key_args:
                    if _contains_key_role(arg, _ENC_KEY_MARKERS, "enc"):
                        yield self.finding(
                            ctx,
                            node,
                            f"`{name}(...)` receives an encryption-role "
                            "key; use `KeyManager.mac_key` / "
                            "`derive_key(master, \"mac\")`",
                        )
                        break


RULES = (
    StdlibCryptoImportRule(),
    KeyRoleCrossUseRule(),
)
