"""Determinism rules (DET*): global RNG state, wall clock, ambient entropy.

The invariant these protect: every random draw and every timestamp inside
an experiment must derive from the experiment seed (via
:class:`repro.net.rng.RngFactory` streams) or from the simulation clock
(:mod:`repro.net.clock`). That is precisely what makes ``--jobs N``
byte-identical to a serial run (``docs/PARALLEL.md``) — worker processes
share neither the interpreter's global ``random`` state nor its wall
clock, so any code touching those diverges between serial and parallel
execution, and between repeated runs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.audit.engine import Finding, ModuleContext, Rule, iter_qualified_uses

#: Simulator scope: code that runs *inside* a simulated experiment.
#: These modules may touch neither the wall clock nor global RNG state;
#: they receive injected streams and read the simulation clock.
#: ``repro.topology`` joined with the mesh layer (PR 8): SharedLink /
#: RoutePath code executes inside the shared simulator's event loop.
SIM_SCOPE = (
    "repro.net",
    "repro.protocols",
    "repro.adversary",
    "repro.faults",
    "repro.mc",
    "repro.topology",
    "repro.workloads",
)

#: Telemetry scope: code that measures the *host* (runtimes, per-call
#: latencies). Monotonic timers are allowed here — and only here.
TELEMETRY_SCOPE = (
    "repro.obs",
    "repro.experiments",
    "repro.parallel",
    "repro.crypto",
    "repro.audit",
    "repro.cli",
)

#: ``random``-module functions that mutate/read the interpreter's hidden
#: global Mersenne Twister. Constructing ``random.Random(seed)`` is fine.
GLOBAL_RANDOM_FUNCTIONS = frozenset(
    f"random.{name}"
    for name in (
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    )
)

#: ``numpy.random`` attributes that are *not* the legacy global state:
#: explicit generator/bit-generator constructors with injected seeds.
NUMPY_RANDOM_SAFE = frozenset(
    {"default_rng", "Generator", "SeedSequence", "RandomState",
     "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)

#: Wall-clock reads: non-monotonic, steppable by NTP, never seed-derived.
WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns", "time.ctime", "time.localtime",
        "time.gmtime", "time.strftime", "time.asctime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Monotonic timers: safe for measuring elapsed host time in telemetry.
MONOTONIC_CLOCK = frozenset(
    {
        "time.monotonic", "time.monotonic_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.process_time", "time.process_time_ns",
        "time.thread_time", "time.thread_time_ns",
    }
)

#: Ambient-entropy sources: fresh randomness on every call, unseedable.
ENTROPY_SOURCES = frozenset(
    {"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
     "random.SystemRandom"}
)


def _is_global_random(qualified: str) -> bool:
    if qualified in GLOBAL_RANDOM_FUNCTIONS:
        return True
    if qualified.startswith("numpy.random."):
        return qualified.rsplit(".", 1)[1] not in NUMPY_RANDOM_SAFE
    return False


class GlobalRandomRule(Rule):
    """DET001 — calls into the interpreter's global RNG state."""

    id = "DET001"
    family = "determinism"
    severity = "error"
    summary = "call to a global-state RNG (`random.*` / `numpy.random.*`)"
    rationale = (
        "Global RNG state is shared, unseeded-by-default, and "
        "process-local: parallel workers draw different values than a "
        "serial run, breaking the byte-identical `--jobs N` guarantee. "
        "Draw from an injected `repro.net.rng.RngFactory` stream instead."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve(node.func)
            if qualified and _is_global_random(qualified):
                yield self.finding(
                    ctx,
                    node,
                    f"`{qualified}()` uses global RNG state; draw from a "
                    "seeded `RngFactory` stream instead",
                )


class ModuleRngStateRule(Rule):
    """DET002 — module-level RNG instances (hidden shared state)."""

    id = "DET002"
    family = "determinism"
    severity = "error"
    summary = "RNG instance created at module scope"
    rationale = (
        "A `random.Random()` / `numpy.random.default_rng()` bound at "
        "import time is shared by every experiment in the process and "
        "consumed in whatever order callers happen to run — stream "
        "independence (docs/PARALLEL.md) requires per-component streams "
        "derived from the experiment seed."
    )

    _CONSTRUCTORS = frozenset(
        {"random.Random", "numpy.random.default_rng",
         "numpy.random.RandomState"}
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = stmt.value
            else:
                continue
            if not isinstance(value, ast.Call):
                continue
            qualified = ctx.resolve(value.func)
            if qualified in self._CONSTRUCTORS:
                yield self.finding(
                    ctx,
                    stmt,
                    f"module-level `{qualified}(...)` creates shared RNG "
                    "state; derive a stream per component from the "
                    "experiment's `RngFactory`",
                )


class WallClockRule(Rule):
    """DET003 — wall-clock reads in library code; monotonic outside telemetry."""

    id = "DET003"
    family = "determinism"
    severity = "error"
    summary = "wall-clock read (or monotonic timer outside telemetry code)"
    rationale = (
        "Wall clocks step under NTP and differ across workers; nothing in "
        "the library may read one. Elapsed-time measurement belongs in "
        "telemetry code (repro.obs / repro.experiments / repro.parallel / "
        "repro.crypto instrumentation) and must use `time.monotonic` or "
        "`time.perf_counter`."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_repro_module:
            return
        if ctx.in_module(*SIM_SCOPE):
            # Simulator scope bans the `time` module entirely — that is
            # ST001's finding, not ours; avoid double-reporting.
            return
        in_telemetry = ctx.in_module(*TELEMETRY_SCOPE)
        for node, qualified in iter_qualified_uses(ctx):
            if qualified in WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"`{qualified}` reads the wall clock; use "
                    "`time.monotonic()` for elapsed time (telemetry) or "
                    "the simulation clock (simulator state)",
                )
            elif qualified in MONOTONIC_CLOCK and not in_telemetry:
                yield self.finding(
                    ctx,
                    node,
                    f"`{qualified}` outside telemetry scope "
                    f"({', '.join(TELEMETRY_SCOPE)}); host timing belongs "
                    "in instrumentation, not in result-producing code",
                )


class EntropyRule(Rule):
    """DET004 — ambient OS entropy in library code."""

    id = "DET004"
    family = "determinism"
    severity = "error"
    summary = "ambient entropy source (`os.urandom`, `secrets`, `uuid.uuid4`)"
    rationale = (
        "OS entropy is unseedable, so any value derived from it differs "
        "on every run. The one deliberate exception is "
        "`repro.crypto.cipher.StreamCipher`'s `os.urandom` *default* — "
        "simulations always inject `RngFactory.nonce_source` — which "
        "carries an inline `# repro: allow(DET004)`."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, qualified in iter_qualified_uses(ctx):
            if qualified in ENTROPY_SOURCES or qualified.startswith("secrets."):
                yield self.finding(
                    ctx,
                    node,
                    f"`{qualified}` draws ambient OS entropy; inject a "
                    "deterministic source (e.g. `RngFactory.nonce_source`)",
                )


RULES = (
    GlobalRandomRule(),
    ModuleRngStateRule(),
    WallClockRule(),
    EntropyRule(),
)
