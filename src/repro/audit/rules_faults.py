"""Fault-handling hygiene rules (FI*): no silently swallowed exceptions.

The robustness layer (docs/ROBUSTNESS.md) turns malformed traffic into
*counted* degraded-mode events — :meth:`repro.net.node.Node.record_fault`,
drop-with-metric at the deliver boundary — never into silence. A handler
that catches everything and does nothing defeats both halves of that
contract: real bugs (engine errors, configuration mistakes) disappear
along with the adversarial inputs the handler meant to tolerate, and the
``faults_seen`` accounting the chaos gate audits is never incremented.
Handlers must either narrow what they catch or visibly account for the
event (metric, counter, log, re-raise).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.audit.engine import Finding, ModuleContext, Rule

#: Exception names whose blanket capture the rule flags.
_BLANKET = ("Exception", "BaseException")


def _is_blanket(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except Exception:``, and tuples thereof."""
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        isinstance(node, ast.Name) and node.id in _BLANKET for node in types
    )


def _swallows(body: list) -> bool:
    """True when the handler body does nothing observable."""
    for statement in body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis
        ):
            continue
        return False
    return True


class SilentSwallowRule(Rule):
    """FI001 — blanket exception handler with a do-nothing body."""

    id = "FI001"
    family = "faults"
    severity = "error"
    summary = "bare/blanket `except` silently swallows all exceptions"
    rationale = (
        "`except:`/`except Exception:` with a pass/.../continue body hides "
        "engine bugs alongside the adversarial inputs it meant to "
        "tolerate and bypasses the degraded-mode fault accounting "
        "(`Node.record_fault`, docs/ROBUSTNESS.md). Catch the narrow "
        "exception, or count/log the event before discarding it."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_repro_module:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_blanket(node) and _swallows(node.body):
                caught = "bare `except`" if node.type is None else (
                    "blanket `except Exception`"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"{caught} with a do-nothing body swallows every "
                    "failure silently; narrow the exception type or "
                    "account for the event (metric / record_fault / "
                    "re-raise)",
                )


RULES = (SilentSwallowRule(),)
