"""Observability rules (OBS*): ad-hoc emission in instrumented scopes.

Every identification decision the simulator makes is recorded through
two structured channels — the metrics registry (``repro.obs.registry``)
and the evidence ledger (``repro.obs.ledger``). Both are process-scoped,
off by default, deterministic to snapshot, and byte-identical across the
event and fastpath engines. A ``print(...)`` or an ad-hoc ``open(path,
"w")`` inside the instrumented packages bypasses all of that: the output
interleaves nondeterministically under parallel workers, never reaches
``--metrics-out``/``--ledger-out``, and silently breaks the
engine-equivalence gate that diff's the structured streams.

Telemetry sinks themselves (``repro.obs``), the CLI, and the experiment
report writers legitimately write files and stdout — they are outside
the instrumented scope, so the rule simply does not apply there.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.audit.engine import Finding, ModuleContext, Rule

#: Packages whose emissions must route through registry/ledger APIs.
INSTRUMENTED_SCOPE = (
    "repro.net",
    "repro.core",
    "repro.mc",
    "repro.protocols",
    "repro.adversary",
    "repro.faults",
    "repro.workloads",
)

#: ``open`` mode strings that make the call a write.
_WRITE_MODE_CHARS = frozenset("wax+")


def _open_mode(call: ast.Call) -> Optional[str]:
    """The literal mode string of an ``open(...)`` call, if present."""
    mode: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


class AdHocEmissionRule(Rule):
    """OBS001 — print / ad-hoc file write in an instrumented scope."""

    id = "OBS001"
    family = "observability"
    severity = "error"
    summary = "ad-hoc print/file write bypasses the registry and ledger"
    rationale = (
        "Instrumented packages emit evidence through the metrics "
        "registry and the evidence ledger so output stays deterministic, "
        "off-by-default, and byte-identical across engines; a `print` or "
        "`open(..., 'w')` there leaks state past `--metrics-out`/"
        "`--ledger-out` and the equivalence gate. Route the emission "
        "through `repro.obs`, or move the I/O out of the instrumented "
        "scope."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_module(*INSTRUMENTED_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # Builtin print/open calls — a local import shadowing the
            # name (e.g. `from x import print`) resolves in the import
            # table and is judged by what it actually refers to.
            if isinstance(func, ast.Name) and func.id not in ctx.imports:
                if func.id == "print":
                    yield self.finding(
                        ctx,
                        node,
                        "`print(...)` in an instrumented scope bypasses "
                        "the metrics registry and evidence ledger; emit "
                        "through `repro.obs` instead",
                    )
                elif func.id == "open":
                    mode = _open_mode(node)
                    if mode is not None and _WRITE_MODE_CHARS & set(mode):
                        yield self.finding(
                            ctx,
                            node,
                            f"`open(..., {mode!r})` writes a file from an "
                            "instrumented scope; structured output "
                            "belongs in the registry snapshot or the "
                            "ledger JSONL",
                        )
            # sys.stdout.write / sys.stderr.write — same leak, different
            # spelling.
            elif isinstance(func, ast.Attribute) and func.attr == "write":
                qualified = ctx.resolve(func)
                if qualified in ("sys.stdout.write", "sys.stderr.write"):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{qualified}(...)` in an instrumented scope "
                        "bypasses the structured telemetry channels",
                    )


RULES: List[Rule] = [AdHocEmissionRule()]
