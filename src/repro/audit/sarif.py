"""SARIF 2.1.0 export: audit findings for GitHub code scanning.

One run, one driver (``repro-audit``), every catalogue rule — including
the engine meta rules AUD001/AUD002 — declared up front in
``tool.driver.rules`` so results resolve by ``ruleIndex`` and code
scanning can render each rule's rationale without a second lookup.
Results carry the same sha256 fingerprint the baseline machinery uses
(``partialFingerprints``), which lets code scanning track a finding
across commits exactly the way ``audit-baseline.json`` does locally, and
``baselineState`` mirrors the grandfathering verdict: ``unchanged`` for
baselined findings, ``new`` for everything that would fail the gate.

Artifact URIs are emitted relative to ``%SRCROOT%`` — the engine's
display paths are already checkout-relative POSIX paths, so the upload
action anchors them at the repository root with no path rewriting.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro import __version__
from repro.audit.catalog import META_RULES, all_rules
from repro.audit.engine import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

def _driver_rules() -> List[dict]:
    """Every rule the driver may cite, catalogue rules then meta rules."""
    entries: List[dict] = []
    for rule in all_rules():
        entries.append(
            {
                "id": rule.id,
                "name": type(rule).__name__,
                "shortDescription": {"text": rule.summary},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": rule.severity},
                "properties": {"family": rule.family},
            }
        )
    for meta_id, severity, summary in META_RULES:
        entries.append(
            {
                "id": meta_id,
                "name": meta_id,
                "shortDescription": {"text": summary},
                "fullDescription": {"text": summary},
                "defaultConfiguration": {"level": severity},
                "properties": {"family": "engine"},
            }
        )
    return entries


def _result(finding: Finding, rule_index: Dict[str, int]) -> dict:
    region: dict = {
        "startLine": finding.line,
        "startColumn": max(finding.col, 1),
    }
    if finding.line_text:
        region["snippet"] = {"text": finding.line_text}
    result = {
        "ruleId": finding.rule,
        "level": finding.severity,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": region,
                }
            }
        ],
        "partialFingerprints": {"reproAuditFingerprint/v1": finding.fingerprint},
        "baselineState": "unchanged" if finding.baselined else "new",
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    return result


def to_sarif(findings: Sequence[Finding]) -> dict:
    """The findings as one SARIF 2.1.0 log document (a plain dict)."""
    rules = _driver_rules()
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-audit",
                        "semanticVersion": __version__,
                        "rules": rules,
                        "properties": {"documentation": "docs/AUDIT.md"},
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": [_result(f, rule_index) for f in findings],
            }
        ],
    }


def write_sarif(path: str, findings: Sequence[Finding]) -> None:
    """Serialize :func:`to_sarif` to ``path`` (two-space indent, LF)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_sarif(findings), handle, indent=2, sort_keys=True)
        handle.write("\n")
