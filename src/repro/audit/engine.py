"""AST rule engine: module contexts, findings, suppressions.

The engine parses each audited file once, builds a :class:`ModuleContext`
(source lines, import table, dotted module name, suppression comments) and
hands it to every registered :class:`Rule`. Rules walk the AST and emit
:class:`Finding` objects; the engine filters findings suppressed by
``# repro: allow(<rule-id>)`` comments on the finding's line and reports
unknown rule ids inside suppressions as findings themselves (``AUD001``),
so a typo cannot silently disable a rule.

Since the whole-program pass, per-file analysis is two-stage: each file
yields a :class:`FileAnalysis` (its per-file findings plus the
serializable call-graph facts of :mod:`repro.audit.graph`), and the
:class:`ProjectRule` subclasses then check properties of the *assembled*
project — call chains that cross files, which no single
:class:`ModuleContext` can see. ``FileAnalysis`` objects are plain data,
which is what lets the incremental cache (:mod:`repro.audit.cache`)
skip parsing entirely for unchanged files and ``--jobs N`` fan file
analysis out over :func:`repro.parallel.run_tasks`.

Scoping: most rules only make sense for specific packages (wall-clock is
banned in simulator code but ``time.monotonic`` is fine in telemetry).
The context derives the dotted module name from the file path (anything
under ``src/repro`` maps to ``repro.*``); fixture files outside the
package can impersonate a scope with a ``# repro: module=<dotted>``
pragma in their first lines, which is how the test suite exercises
scoped rules without living inside ``src/``.
"""

from __future__ import annotations

import ast
import hashlib  # repro: allow(CB001) -- finding fingerprints, not crypto
import io
import os
import re
import tokenize
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Severity levels, in gate order: only ``error`` findings fail the gate.
SEVERITIES = ("error", "warning")

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(\s*([^)]*?)\s*\)")
_MODULE_PRAGMA_RE = re.compile(r"#\s*repro:\s*module\s*=\s*([\w.]+)")

#: Meta rule ids emitted by the engine itself (not by a Rule subclass).
UNKNOWN_SUPPRESSION = "AUD001"
PARSE_ERROR = "AUD002"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    line_text: str = ""
    #: Set after baseline comparison: an old, grandfathered finding.
    baselined: bool = False

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Hashes the rule, the file, and the *text* of the offending line
        (not its number), so findings survive unrelated edits that shift
        line numbers but die when the offending line itself changes.
        """
        material = f"{self.rule}:{self.path}:{self.line_text.strip()}"
        digest = hashlib.sha256(material.encode()).hexdigest()
        return digest[:16]

    def render(self) -> str:
        tail = " [baselined]" if self.baselined else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}{tail}"
        )


class Rule:
    """Base class for audit rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` states which repo invariant the rule protects — it is
    surfaced by ``repro-aai audit --list-rules`` and ``docs/AUDIT.md``.
    """

    id: str = ""
    family: str = ""
    severity: str = "error"
    summary: str = ""
    rationale: str = ""

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
            line_text=ctx.line(line),
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    A project rule sees the assembled :class:`repro.audit.graph.ProjectIndex`
    rather than one file, so it can follow call chains across module
    boundaries (the interprocedural ``DET``/``ST`` semantics of
    :mod:`repro.audit.rules_interproc`). Findings it emits still anchor to
    a concrete file/line and respect that line's ``# repro: allow(...)``
    suppressions — the engine filters them through the per-file
    suppression tables carried in the facts.
    """

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        # Project rules have no per-file component.
        return iter(())

    def check_project(self, index) -> Iterator[Finding]:
        raise NotImplementedError


class ModuleContext:
    """Everything a rule needs to know about one audited file."""

    def __init__(self, path: str, source: str, module: Optional[str] = None) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: ``{lineno: comment text}`` — actual COMMENT tokens, so prose
        #: *about* suppressions inside docstrings never activates one.
        self.comments = _comment_table(source)
        pragma = self._pragma_module()
        self.module = pragma or module or module_name_for(path)
        self.imports = _import_table(self.tree, self.module)

    def _pragma_module(self) -> Optional[str]:
        for lineno in sorted(self.comments):
            if lineno > 10:
                break
            match = _MODULE_PRAGMA_RE.search(self.comments[lineno])
            if match:
                return match.group(1)
        return None

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def in_module(self, *prefixes: str) -> bool:
        """True when this file's module falls under any dotted prefix."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )

    @property
    def is_repro_module(self) -> bool:
        return self.in_module("repro")

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted qualified name of a Name/Attribute expression, if known.

        ``import numpy as np`` + ``np.random.seed`` resolves to
        ``numpy.random.seed``; names that are not rooted in an import
        (locals, parameters) resolve to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


def iter_qualified_uses(ctx: "ModuleContext") -> Iterator["tuple[ast.AST, str]"]:
    """Yield ``(node, dotted_name)`` for maximal Name/Attribute chains.

    ``np.random.seed`` yields once as ``numpy.random.seed`` — the inner
    ``np.random`` and ``np`` nodes are skipped, so rules matching by
    prefix report each use exactly once.
    """
    inner = {
        id(node.value)
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.Attribute)
    }
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        if id(node) in inner:
            continue
        qualified = ctx.resolve(node)
        if qualified is not None:
            yield node, qualified


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``.

    Files under a ``src/repro`` tree map to the real package name; other
    files (tests, benchmarks, fixtures) get a path-derived pseudo-name so
    scoped rules simply don't apply to them unless a ``# repro: module=``
    pragma opts in.
    """
    normalized = os.path.normpath(os.path.abspath(path))
    pieces = normalized.split(os.sep)
    if "repro" in pieces:
        index = pieces.index("repro")
        if index > 0 and pieces[index - 1] == "src":
            pieces = pieces[index:]
    else:
        # Path-derived pseudo-name: last few components, dotted.
        pieces = pieces[-3:]
    dotted = ".".join(pieces)
    if dotted.endswith(".py"):
        dotted = dotted[: -len(".py")]
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def _comment_table(source: str) -> Dict[int, str]:
    """Map line numbers to their ``#`` comment text (tokenize-accurate)."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except tokenize.TokenError:
        pass
    return comments


def _import_table(tree: ast.Module, module: str) -> Dict[str, str]:
    """Map local names to the dotted import they are rooted in."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the root name ``a``.
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                package = module.rsplit(".", node.level)[0] if module else ""
                base = f"{package}.{base}".strip(".") if base else package
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


# -- suppressions -----------------------------------------------------------


@dataclass
class Suppressions:
    """Per-line ``# repro: allow(...)`` comments for one file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def allows(self, line: int, rule_id: str) -> bool:
        return rule_id in self.by_line.get(line, set())


def parse_suppressions(
    ctx: ModuleContext, known_ids: Set[str]
) -> "tuple[Suppressions, List[Finding]]":
    """Extract suppression comments; report unknown rule ids (AUD001).

    A suppression silences exactly the named rule(s) on exactly its own
    line — there is no file- or block-level form, so every exception
    stays visible next to the code it excuses.
    """
    suppressions = Suppressions()
    findings: List[Finding] = []
    for lineno in sorted(ctx.comments):
        text = ctx.comments[lineno]
        match = _ALLOW_RE.search(text)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        for rule_id in sorted(ids):
            if rule_id not in known_ids:
                findings.append(
                    Finding(
                        rule=UNKNOWN_SUPPRESSION,
                        path=ctx.path,
                        line=lineno,
                        col=match.start() + 1,
                        message=(
                            f"suppression names unknown rule id {rule_id!r} "
                            "(see `repro-aai audit --list-rules`)"
                        ),
                        severity="error",
                        line_text=ctx.line(lineno),
                    )
                )
        suppressions.by_line[lineno] = ids & known_ids
    return suppressions, findings


# -- file collection and the audit entry points -----------------------------

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name not in _SKIP_DIRS and not name.endswith(".egg-info")
            )
            files.extend(
                os.path.join(dirpath, name)
                for name in sorted(filenames)
                if name.endswith(".py")
            )
    return sorted(dict.fromkeys(files))


def _display_path(path: str, root: Optional[str]) -> str:
    """Posix-style path relative to ``root`` (baseline fingerprints need
    paths that are stable across checkouts and operating systems)."""
    if root:
        try:
            path = os.path.relpath(path, root)
        except ValueError:
            pass
    return path.replace(os.sep, "/")


def split_rules(
    rules: Sequence[Rule],
) -> "tuple[List[Rule], List[ProjectRule]]":
    """Separate per-file rules from whole-program rules."""
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return file_rules, project_rules


@dataclass
class FileAnalysis:
    """One file's per-file findings plus its whole-program facts.

    Everything here is derived purely from the file's content and the
    rule set, which is what makes it cacheable by content hash
    (:mod:`repro.audit.cache`) and transportable across worker processes
    (``audit --jobs N``).
    """

    path: str
    module: str
    findings: List[Finding]
    facts: object  #: :class:`repro.audit.graph.ModuleFacts`

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "severity": f.severity,
                    "line_text": f.line_text,
                }
                for f in self.findings
            ],
            "facts": self.facts.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FileAnalysis":
        from repro.audit.graph import ModuleFacts

        return cls(
            path=payload["path"],
            module=payload["module"],
            findings=[Finding(**entry) for entry in payload["findings"]],
            facts=ModuleFacts.from_dict(payload["facts"]),
        )


def analyze_source(
    source: str,
    path: str = "<memory>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    display_path: Optional[str] = None,
) -> FileAnalysis:
    """Run the per-file stage over one source blob.

    Findings and facts carry ``display_path`` (checkout-relative, stable
    across machines) when given; ``path`` is only used for parsing
    diagnostics. Only per-file rules run here — project rules need the
    assembled index (:func:`run_project_rules`).
    """
    from repro.audit.graph import ModuleFacts, extract_facts

    if rules is None:
        from repro.audit.catalog import all_rules

        rules = all_rules()
    file_rules, _ = split_rules(rules)
    display = display_path or path
    known = known_ids_for(rules)
    try:
        ctx = ModuleContext(path, source, module=module)
    except SyntaxError as exc:
        finding = Finding(
            rule=PARSE_ERROR,
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
        )
        facts = ModuleFacts(path=display, module=module or module_name_for(path))
        return FileAnalysis(
            path=display, module=facts.module, findings=[finding], facts=facts
        )
    suppressions, findings = parse_suppressions(ctx, known)
    for rule in file_rules:
        for finding in rule.check(ctx):
            if not suppressions.allows(finding.line, finding.rule):
                findings.append(finding)
    findings = [replace(finding, path=display) for finding in findings]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    facts = extract_facts(ctx, allowed=suppressions.by_line)
    facts.path = display
    return FileAnalysis(
        path=display, module=ctx.module, findings=findings, facts=facts
    )


def known_ids_for(rules: Sequence[Rule]) -> Set[str]:
    """Rule ids suppressions may legitimately name under ``rules``.

    Uses the full catalogue whenever the caller did not narrow the rule
    set explicitly via ids — an ``--select DET001`` run must not report
    AUD001 for a perfectly valid ``# repro: allow(RNG002)`` elsewhere.
    """
    try:
        from repro.audit.catalog import known_rule_ids

        return known_rule_ids() | {rule.id for rule in rules}
    except ImportError:  # pragma: no cover - catalogue always importable
        return {rule.id for rule in rules} | {UNKNOWN_SUPPRESSION, PARSE_ERROR}


def run_project_rules(
    analyses: Sequence[FileAnalysis],
    project_rules: Sequence[ProjectRule],
) -> List[Finding]:
    """Whole-program stage: assemble the index, run every project rule.

    Findings are filtered through the per-file suppression tables the
    analyses carry, so ``# repro: allow(...)`` works identically for
    per-file and project findings.
    """
    if not project_rules:
        return []
    from repro.audit.graph import ProjectIndex

    index = ProjectIndex([analysis.facts for analysis in analyses])
    by_path = {analysis.facts.path: analysis.facts for analysis in analyses}
    findings: List[Finding] = []
    for rule in project_rules:
        for finding in rule.check_project(index):
            facts = by_path.get(finding.path)
            if facts is not None and facts.allows(finding.line, [finding.rule]):
                continue
            findings.append(finding)
    return findings


def audit_source(
    source: str,
    path: str = "<memory>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Audit one in-memory source blob (the test-suite entry point).

    Project rules run over the blob as a one-module project, so
    single-file fixtures exercise them too (their cross-file power only
    shows under :func:`audit_paths`).
    """
    if rules is None:
        from repro.audit.catalog import all_rules

        rules = all_rules()
    analysis = analyze_source(source, path=path, module=module, rules=rules)
    _, project_rules = split_rules(rules)
    findings = list(analysis.findings)
    findings.extend(run_project_rules([analysis], project_rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _analyze_file_task(
    payload: "tuple[str, str, Optional[str], Optional[tuple]]",
) -> dict:
    """Worker task for ``audit --jobs N``: analyze one file, return data.

    Module-level and payload-pure (the :mod:`repro.parallel` contract):
    the result depends only on the file path, its content, and the rule
    ids, so parallel analysis is byte-identical to serial. Rules travel
    as ids (reconstructed from the worker's catalogue), not objects.
    """
    filename, display, module, rule_ids = payload
    rules: Optional[List[Rule]] = None
    if rule_ids is not None:
        from repro.audit.catalog import all_rules

        wanted = set(rule_ids)
        rules = [rule for rule in all_rules() if rule.id in wanted]
    analysis = _analyze_file(filename, display, module, rules=rules)
    return analysis.to_dict()


def _analyze_file(
    filename: str,
    display: str,
    module: Optional[str],
    rules: Optional[Sequence[Rule]],
) -> FileAnalysis:
    from repro.audit.graph import ModuleFacts

    try:
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        finding = Finding(
            rule=PARSE_ERROR,
            path=display,
            line=1,
            col=1,
            message=f"file cannot be read: {exc}",
        )
        facts = ModuleFacts(path=display, module=module or display)
        return FileAnalysis(
            path=display, module=facts.module, findings=[finding], facts=facts
        )
    return analyze_source(
        source, path=filename, module=module, rules=rules, display_path=display
    )


def audit_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[str] = None,
    jobs: int = 1,
    cache: Optional[object] = None,
) -> List[Finding]:
    """Audit every ``.py`` file under ``paths``; findings in stable order.

    ``jobs > 1`` fans the per-file stage out over a process pool
    (:func:`repro.parallel.run_tasks`); the project stage always runs in
    the parent over the assembled facts. ``cache`` is an
    :class:`repro.audit.cache.AuditCache`: files whose content hash (and
    rule signature) match a cached entry skip parsing and per-file rules
    entirely — the warm path behind ``BENCH_audit.json``.
    """
    if root is None:
        root = os.getcwd()
    narrowed = rules is not None
    if rules is None:
        from repro.audit.catalog import all_rules

        rules = all_rules()
    rule_ids = tuple(sorted(rule.id for rule in rules)) if narrowed else None
    _, project_rules = split_rules(rules)
    targets: List["tuple[str, str, Optional[str]]"] = []
    analyses: List[Optional[FileAnalysis]] = []
    pending: List[int] = []
    for filename in collect_files(paths):
        display = _display_path(filename, root)
        cached = cache.lookup(filename, display) if cache is not None else None
        if cached is not None:
            analyses.append(cached)
            continue
        targets.append((filename, display, module_name_for(filename)))
        analyses.append(None)
        pending.append(len(analyses) - 1)
    if len(targets) > 1 and jobs > 1:
        from repro.parallel import run_tasks

        payloads = [(*target, rule_ids) for target in targets]
        fresh = [
            FileAnalysis.from_dict(result)
            for result in run_tasks(_analyze_file_task, payloads, jobs=jobs)
        ]
    else:
        fresh = [
            _analyze_file(filename, display, module, rules)
            for filename, display, module in targets
        ]
    for target, slot, analysis in zip(targets, pending, fresh):
        analyses[slot] = analysis
        if cache is not None:
            cache.store(target[0], analysis)
    done: List[FileAnalysis] = [a for a in analyses if a is not None]
    findings: List[Finding] = []
    for analysis in done:
        findings.extend(analysis.findings)
    findings.extend(run_project_rules(done, project_rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def apply_baseline(
    findings: Iterable[Finding], fingerprints: Set[str]
) -> List[Finding]:
    """Mark findings whose fingerprint appears in the baseline."""
    return [
        replace(finding, baselined=finding.fingerprint in fingerprints)
        for finding in findings
    ]
