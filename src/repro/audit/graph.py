"""Whole-program import/call graph over the audited file set.

PR 4's engine is strictly per-file: a rule sees one
:class:`~repro.audit.engine.ModuleContext` and nothing else, so a
sim-scope function that reaches ``time.time()`` through a helper in
another module is invisible — each file looks innocent on its own. This
module builds the cross-file view the interprocedural rules
(:mod:`repro.audit.rules_interproc`) walk:

* :func:`extract_facts` distils one parsed module into serializable
  :class:`ModuleFacts` — its functions/methods, every call site each one
  makes (qualified through the import table where possible), its export
  table (imports *plus* own defs, which is what makes re-exports through
  ``__init__`` resolvable), and its class bases (for method resolution
  on ``self``). Facts are plain data: the incremental cache
  (:mod:`repro.audit.cache`) stores them per content hash so warm runs
  never re-parse.
* :class:`ProjectIndex` assembles the facts of every audited file and
  resolves call sites across module boundaries: ``from repro.topology
  import Route`` chases the ``__init__`` re-export to
  ``repro.topology.graph.Route``, ``self.helper()`` resolves through the
  enclosing class and its project-resolvable bases, and instantiating a
  project class resolves to its ``__init__``. Resolution is a static
  under-approximation by design — calls through arbitrary objects or
  callbacks are dropped, never guessed — so every edge in the graph is a
  call that really can happen.

Cycles (mutually recursive functions, circular imports) are handled by
the breadth-first reachability walk in :func:`find_sink_chains`, which
visits every function at most once per query.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

import ast

#: Synthetic function name for a module's import-time body: calls made at
#: module scope (``RULES = build_rules()``) belong to this node.
MODULE_BODY = "<module>"

#: Call-site kinds; see :class:`CallSite`.
CALL_DOTTED = "dotted"  # resolved through the import table: `util.helper`
CALL_LOCAL = "local"  # bare name, possibly a same-module def: `helper()`
CALL_SELF = "self"  # method on self: `self.helper()`


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    kind: str
    target: str
    lineno: int
    col: int
    line_text: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "lineno": self.lineno,
            "col": self.col,
            "line_text": self.line_text,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CallSite":
        return cls(
            kind=payload["kind"],
            target=payload["target"],
            lineno=payload["lineno"],
            col=payload["col"],
            line_text=payload["line_text"],
        )


@dataclass
class FunctionNode:
    """One function, method, or module body in the call graph."""

    qual: str  #: ``module.func``, ``module.Class.method``, ``module.<module>``
    module: str
    name: str
    cls: Optional[str]
    lineno: int
    line_text: str
    calls: List[CallSite] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "qual": self.qual,
            "module": self.module,
            "name": self.name,
            "cls": self.cls,
            "lineno": self.lineno,
            "line_text": self.line_text,
            "calls": [call.to_dict() for call in self.calls],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionNode":
        return cls(
            qual=payload["qual"],
            module=payload["module"],
            name=payload["name"],
            cls=payload["cls"],
            lineno=payload["lineno"],
            line_text=payload["line_text"],
            calls=[CallSite.from_dict(c) for c in payload["calls"]],
        )


@dataclass
class ModuleFacts:
    """Everything the project passes need to know about one file.

    ``allowed`` carries the file's ``# repro: allow(...)`` lines so
    project rules can honor suppressions (and sanctioned sinks) without
    re-reading the source.
    """

    path: str
    module: str
    functions: List[FunctionNode] = field(default_factory=list)
    exports: Dict[str, str] = field(default_factory=dict)
    class_bases: Dict[str, List[str]] = field(default_factory=dict)
    allowed: Dict[int, List[str]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "functions": [fn.to_dict() for fn in self.functions],
            "exports": dict(self.exports),
            "class_bases": {k: list(v) for k, v in self.class_bases.items()},
            "allowed": {str(k): sorted(v) for k, v in self.allowed.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModuleFacts":
        return cls(
            path=payload["path"],
            module=payload["module"],
            functions=[FunctionNode.from_dict(f) for f in payload["functions"]],
            exports=dict(payload["exports"]),
            class_bases={k: list(v) for k, v in payload["class_bases"].items()},
            allowed={int(k): list(v) for k, v in payload["allowed"].items()},
        )

    def allows(self, lineno: int, rule_ids: Sequence[str]) -> bool:
        """True when any of ``rule_ids`` is suppressed on ``lineno``."""
        allowed = self.allowed.get(lineno, ())
        return any(rule_id in allowed for rule_id in rule_ids)


# -- fact extraction --------------------------------------------------------


def extract_facts(ctx, allowed: Optional[Dict[int, Set[str]]] = None) -> ModuleFacts:
    """Distil a parsed :class:`~repro.audit.engine.ModuleContext` into facts."""
    facts = ModuleFacts(
        path=ctx.path,
        module=ctx.module,
        exports=dict(ctx.imports),
        allowed={line: sorted(ids) for line, ids in (allowed or {}).items() if ids},
    )
    body_node = FunctionNode(
        qual=f"{ctx.module}.{MODULE_BODY}",
        module=ctx.module,
        name=MODULE_BODY,
        cls=None,
        lineno=1,
        line_text=ctx.line(1),
    )
    #: Statements owned by named functions — everything else is module body.
    claimed: Set[int] = set()
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.exports[stmt.name] = f"{ctx.module}.{stmt.name}"
            facts.functions.append(_function_node(ctx, stmt, cls=None))
            claimed.add(id(stmt))
        elif isinstance(stmt, ast.ClassDef):
            facts.exports[stmt.name] = f"{ctx.module}.{stmt.name}"
            facts.class_bases[stmt.name] = [
                base_name
                for base in stmt.bases
                if (base_name := ctx.resolve(base) or _bare_name(base))
            ]
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    facts.functions.append(_function_node(ctx, item, cls=stmt.name))
            claimed.add(id(stmt))
    for stmt in ctx.tree.body:
        if id(stmt) not in claimed:
            body_node.calls.extend(_extract_calls(ctx, stmt))
    if body_node.calls:
        facts.functions.append(body_node)
    return facts


def _bare_name(node: ast.AST) -> Optional[str]:
    return node.id if isinstance(node, ast.Name) else None


def _function_node(ctx, node, cls: Optional[str]) -> FunctionNode:
    qual = (
        f"{ctx.module}.{cls}.{node.name}" if cls else f"{ctx.module}.{node.name}"
    )
    fn = FunctionNode(
        qual=qual,
        module=ctx.module,
        name=node.name,
        cls=cls,
        lineno=node.lineno,
        line_text=ctx.line(node.lineno),
    )
    for stmt in node.body:
        fn.calls.extend(_extract_calls(ctx, stmt))
    # Default-argument expressions evaluate at def time in the enclosing
    # scope, but a sink *called* there still executes — attribute them too.
    for default in [*node.args.defaults, *node.args.kw_defaults]:
        if default is not None:
            fn.calls.extend(_extract_calls(ctx, default))
    return fn


def _extract_calls(ctx, node: ast.AST) -> Iterator[CallSite]:
    """Yield every classifiable call under ``node`` (nested defs roll up)."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        site = _classify_call(ctx, sub)
        if site is not None:
            yield site


def _classify_call(ctx, call: ast.Call) -> Optional[CallSite]:
    func = call.func
    if isinstance(func, ast.Name):
        imported = ctx.imports.get(func.id)
        kind, target = (
            (CALL_DOTTED, imported) if imported else (CALL_LOCAL, func.id)
        )
    elif isinstance(func, ast.Attribute):
        parts: List[str] = []
        inner = func
        while isinstance(inner, ast.Attribute):
            parts.append(inner.attr)
            inner = inner.value
        if isinstance(inner, ast.Name) and inner.id == "self" and len(parts) == 1:
            kind, target = CALL_SELF, parts[0]
        else:
            resolved = ctx.resolve(func)
            if resolved is None:
                # A call through an arbitrary object (`obj.method()`):
                # statically unresolvable, dropped by design.
                return None
            kind, target = CALL_DOTTED, resolved
    else:
        return None
    return CallSite(
        kind=kind,
        target=target,
        lineno=call.lineno,
        col=call.col_offset + 1,
        line_text=ctx.line(call.lineno),
    )


# -- the assembled project --------------------------------------------------

#: Export chains longer than this are cut (defensive: cyclic re-exports).
_MAX_EXPORT_HOPS = 16


class ProjectIndex:
    """Cross-module resolution over the facts of every audited file."""

    def __init__(self, facts: Sequence[ModuleFacts]) -> None:
        self.modules: Dict[str, ModuleFacts] = {}
        self.functions: Dict[str, FunctionNode] = {}
        for module_facts in facts:
            self.modules[module_facts.module] = module_facts
            for fn in module_facts.functions:
                self.functions[fn.qual] = fn
        #: Module names sorted longest-first so prefix matching is maximal.
        self._module_names = sorted(self.modules, key=len, reverse=True)

    def iter_functions(self) -> Iterator[FunctionNode]:
        for qual in sorted(self.functions):
            yield self.functions[qual]

    def facts_for(self, module: str) -> Optional[ModuleFacts]:
        return self.modules.get(module)

    def _split_module(self, dotted: str) -> "Optional[Tuple[str, List[str]]]":
        """Split ``dotted`` into (analyzed module, remaining attr parts)."""
        for name in self._module_names:
            if dotted == name:
                return name, []
            if dotted.startswith(name + "."):
                return name, dotted[len(name) + 1 :].split(".")
        return None

    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """Resolve a dotted name to a project function qual, if it is one.

        Chases re-exports: ``repro.topology.Route.walk`` follows the
        package ``__init__``'s ``from .graph import Route`` to
        ``repro.topology.graph.Route.walk``. Class references resolve to
        the class's ``__init__`` (instantiation executes it). Returns
        ``None`` for externals and anything unresolvable.
        """
        seen: Set[str] = set()
        for _ in range(_MAX_EXPORT_HOPS):
            if dotted in seen:
                return None
            seen.add(dotted)
            split = self._split_module(dotted)
            if split is None:
                return None
            module, parts = split
            if not parts:
                return None
            direct = self._lookup_in_module(module, parts)
            if direct is not None:
                return direct
            target = self.modules[module].exports.get(parts[0])
            here = f"{module}.{parts[0]}"
            if target is None or target == here:
                return None
            dotted = ".".join([target, *parts[1:]])
        return None

    def _lookup_in_module(
        self, module: str, parts: List[str]
    ) -> Optional[str]:
        """``parts`` as a function/method/class defined in ``module``."""
        qual = f"{module}.{'.'.join(parts)}"
        if qual in self.functions:
            return qual
        facts = self.modules[module]
        if len(parts) == 1 and parts[0] in facts.class_bases:
            init = f"{module}.{parts[0]}.__init__"
            return init if init in self.functions else None
        return None

    def resolve_method(self, module: str, cls: str, name: str) -> Optional[str]:
        """Resolve ``self.<name>()`` through ``cls`` and its bases."""
        seen: Set[Tuple[str, str]] = set()
        queue: "deque[Tuple[str, str]]" = deque([(module, cls)])
        while queue:
            mod, klass = queue.popleft()
            if (mod, klass) in seen:
                continue
            seen.add((mod, klass))
            qual = f"{mod}.{klass}.{name}"
            if qual in self.functions:
                return qual
            facts = self.modules.get(mod)
            if facts is None:
                continue
            for base in facts.class_bases.get(klass, ()):
                located = self._locate_class(mod, base)
                if located is not None:
                    queue.append(located)
        return None

    def _locate_class(self, module: str, base: str) -> Optional[Tuple[str, str]]:
        """Find the (module, class) a base-class reference points at."""
        if "." not in base:
            facts = self.modules[module]
            if base in facts.class_bases:
                return module, base
            base = facts.exports.get(base, base)
            if "." not in base:
                return None
        split = self._split_module(base)
        if split is None:
            return None
        # Chase one re-export hop at a time until the class is local.
        for _ in range(_MAX_EXPORT_HOPS):
            mod, parts = split
            if len(parts) != 1:
                return None
            name = parts[0]
            if name in self.modules[mod].class_bases:
                return mod, name
            target = self.modules[mod].exports.get(name)
            if target is None or target == f"{mod}.{name}":
                return None
            split = self._split_module(target)
            if split is None:
                return None
        return None

    def resolve_call(
        self, caller: FunctionNode, call: CallSite
    ) -> Optional[str]:
        """Project function qual a call site lands on, if resolvable."""
        if call.kind == CALL_SELF:
            if caller.cls is None:
                return None
            return self.resolve_method(caller.module, caller.cls, call.target)
        if call.kind == CALL_LOCAL:
            return self.resolve_dotted(f"{caller.module}.{call.target}")
        return self.resolve_dotted(call.target)


# -- reachability -----------------------------------------------------------

#: Chains longer than this are cut; deep enough for any real helper stack.
_MAX_CHAIN_DEPTH = 24


def find_sink_chains(
    index: ProjectIndex,
    start: FunctionNode,
    is_sink: Callable[[CallSite, FunctionNode], Optional[str]],
) -> List[Tuple[List[str], CallSite, FunctionNode, CallSite]]:
    """Shortest call chains from ``start`` to each reachable sink.

    ``is_sink(call, holder)`` inspects an *unresolved* dotted call inside
    ``holder`` and returns the sink's canonical name (or ``None``).
    Direct sinks inside ``start`` itself are excluded — those are the
    per-file rules' findings; this walk exists for what they cannot see.

    Returns ``(chain_of_quals, sink_call, sink_holder, first_hop)``
    tuples, one per distinct sink name, in first-reached (BFS — i.e.
    shortest-chain) order. Cycles terminate because each function is
    visited at most once.
    """
    results: List[Tuple[List[str], CallSite, FunctionNode, CallSite]] = []
    seen_sinks: Set[str] = set()
    visited: Set[str] = {start.qual}
    queue: "deque[Tuple[FunctionNode, List[str], CallSite]]" = deque()
    for call in start.calls:
        callee = index.resolve_call(start, call)
        if callee is not None and callee not in visited:
            visited.add(callee)
            queue.append((index.functions[callee], [start.qual, callee], call))
    while queue:
        node, chain, first_hop = queue.popleft()
        if len(chain) > _MAX_CHAIN_DEPTH:
            continue
        for call in node.calls:
            callee = index.resolve_call(node, call)
            if callee is not None:
                if callee not in visited:
                    visited.add(callee)
                    queue.append(
                        (index.functions[callee], [*chain, callee], first_hop)
                    )
                continue
            if call.kind != CALL_DOTTED:
                continue
            sink = is_sink(call, node)
            if sink is not None and sink not in seen_sinks:
                seen_sinks.add(sink)
                results.append((list(chain), call, node, first_hop))
    return results
