"""Unified observability layer.

Three pieces, built to the same rule — zero-cost when off, one JSON file
when on:

* :mod:`repro.obs.registry` — the process-wide **metrics registry**:
  counters, gauges, and fixed-bucket histograms with labeled series,
  wired into the engine, links/nodes, the crypto substrate, and every
  protocol agent. Disabled by default (a shared no-op registry); activate
  with :func:`using_registry` before building a simulator.
* :mod:`repro.obs.tracing` — **round-level tracing spans** built on the
  public path/link hook API: every link and node event of a data packet's
  probe→ack→report lifecycle, grouped by packet identifier, exported as
  JSONL.
* :mod:`repro.obs.summary` / :mod:`repro.obs.capture` — loaders and
  renderers behind the CLI's ``--metrics-out`` / ``--trace-out`` flags
  and the ``repro obs summary`` subcommand.

See ``docs/OBSERVABILITY.md`` for the metric catalog and span schema.
"""

from repro.obs.registry import (
    NULL_REGISTRY,
    SIM_LATENCY_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    metrics_enabled,
    set_registry,
    using_registry,
)
from repro.obs.tracing import (
    RoundSpan,
    RoundTraceCollector,
    get_collector,
    read_jsonl,
    set_collector,
    using_collector,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "TIME_BUCKETS",
    "SIM_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "using_registry",
    "metrics_enabled",
    "RoundSpan",
    "RoundTraceCollector",
    "get_collector",
    "set_collector",
    "using_collector",
    "read_jsonl",
]
