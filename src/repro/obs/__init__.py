"""Unified observability layer.

Several pieces, built to the same rule — zero-cost when off, one JSON
file when on:

* :mod:`repro.obs.registry` — the process-wide **metrics registry**:
  counters, gauges, and fixed-bucket histograms with labeled series,
  wired into the engine, links/nodes, the crypto substrate, and every
  protocol agent. Disabled by default (a shared no-op registry); activate
  with :func:`using_registry` before building a simulator.
* :mod:`repro.obs.tracing` — **round-level tracing spans** built on the
  public path/link hook API: every link and node event of a data packet's
  probe→ack→report lifecycle, grouped by packet identifier, exported as
  JSONL.
* :mod:`repro.obs.ledger` — the **evidence ledger**: an append-only
  record of every identification decision point (accusations,
  convictions, exonerations, bound evaluations, fault interference),
  byte-identical across execution engines at the same seed, and the
  substrate of ``repro-aai explain``.
* :mod:`repro.obs.profile` — the **phase profiler**: deterministic-safe
  monotonic phase timers (setup / wire-replay / scoring / conviction)
  exported through the registry snapshot. Off by default.
* :mod:`repro.obs.trend` — the **bench-trend observatory** behind
  ``repro-aai bench trend``: per-benchmark deltas of the BENCH_*.json
  telemetry against a committed ``bench-baseline.json``.
* :mod:`repro.obs.summary` / :mod:`repro.obs.capture` — loaders and
  renderers behind the CLI's ``--metrics-out`` / ``--trace-out`` flags
  and the ``repro obs summary`` subcommand.

See ``docs/OBSERVABILITY.md`` for the metric catalog and span schema.
"""

from repro.obs.ledger import (
    NULL_LEDGER,
    EvidenceLedger,
    NullLedger,
    get_ledger,
    read_ledger_jsonl,
    render_explanation,
    set_ledger,
    using_ledger,
)
from repro.obs.profile import (
    NULL_PROFILER,
    PIPELINE_PHASES,
    NullProfiler,
    PhaseProfiler,
    get_profiler,
    phase,
    set_profiler,
    using_profiler,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    SIM_LATENCY_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    metrics_enabled,
    set_registry,
    using_registry,
)
from repro.obs.tracing import (
    RoundSpan,
    RoundTraceCollector,
    get_collector,
    read_jsonl,
    set_collector,
    using_collector,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "TIME_BUCKETS",
    "SIM_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "using_registry",
    "metrics_enabled",
    "RoundSpan",
    "RoundTraceCollector",
    "get_collector",
    "set_collector",
    "using_collector",
    "read_jsonl",
    "EvidenceLedger",
    "NullLedger",
    "NULL_LEDGER",
    "get_ledger",
    "set_ledger",
    "using_ledger",
    "read_ledger_jsonl",
    "render_explanation",
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "PIPELINE_PHASES",
    "get_profiler",
    "set_profiler",
    "using_profiler",
    "phase",
]
