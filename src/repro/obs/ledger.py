"""Verdict provenance: the append-only evidence ledger.

The deliverable of every protocol in the paper is a *verdict* — which
link dropped the packets. The metrics registry says how much work a run
did and the trace collector says what each packet experienced, but
neither records *why the source convicted link 4*: which estimate crossed
which threshold at which checkpoint, whether the Hoeffding interval had
cleared, whether an earlier accusation was later withdrawn. The evidence
ledger closes that gap: a structured, append-only record emitted at every
identification decision point, exportable as JSONL and reconstructable
into a human-readable causal chain (``repro-aai explain``).

Design rules, mirroring :mod:`repro.obs.registry`:

1. **Off by default, near-zero when off.** The active ledger defaults to
   a shared :class:`NullLedger` whose :meth:`~EvidenceLedger.record` is a
   no-op; emission sites gate on ``ledger.enabled`` (one attribute load)
   before building any entry payload.
2. **Deterministic content.** Entries carry no wall-clock timestamps and
   no engine identity — only seed-derived quantities (estimates,
   thresholds, simulated times, round counts) plus a per-ledger emission
   sequence number. Two engines replaying the same seed must emit
   byte-identical JSONL; the fastpath/event equivalence gate asserts
   exactly that.
3. **Append-only.** Entries are never mutated or removed; ``seq`` is the
   total order of emission.

Entry kinds emitted by the shipped instrumentation:

``run_start``
    One wire detection run begins (protocol, absolute run index, derived
    run seed, ground-truth adversary placement).
``checkpoint``
    Estimates vs thresholds evaluated at a packet-count checkpoint.
``accusation`` / ``exoneration``
    A link newly crossed above its threshold / dropped back below one it
    had crossed earlier.
``verdict``
    The run's final conviction set, scored against ground truth.
``identify``
    A point-estimate identify pass (:func:`repro.core.identification.identify_links`).
``bound``
    A Hoeffding §7 interval evaluation
    (:func:`repro.core.confidence.confident_identify`).
``controller``
    The closed-loop controller acted on a confident conviction.
``fault``
    A fault injector interfered with traffic (simulated time, fault kind).
``experiment``
    A Monte-Carlo experiment's aggregate outcome (:mod:`repro.mc.detection`).
``fusion``
    A per-link posterior from shared-link evidence fusion
    (:mod:`repro.topology.fusion`): pooled margin, contributing routes,
    rounds, and the CONVICTED/EXONERATED/UNDECIDED verdict.

See ``docs/OBSERVABILITY.md`` for the full schema.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.exceptions import ConfigurationError


def _canonical(value):
    """JSON-safe, deterministic projection of an entry field value.

    Sets become sorted lists, tuples become lists, numpy scalars become
    their Python equivalents — so two emission sites producing the same
    logical value always serialize to the same bytes.
    """
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(val) for key, val in value.items()}
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()  # numpy scalar -> Python int/float/bool
    if isinstance(value, bytes):
        return value.hex()
    return value


class EvidenceLedger:
    """An append-only sequence of identification-evidence entries."""

    #: Fast-path flag: emission sites check this before building payloads.
    enabled = True

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self._capacity = capacity
        self._entries: List[Dict] = []
        self._seq = 0
        #: Entries dropped once ``capacity`` was reached (never evicted —
        #: the ledger is append-only, so overflow drops the *newest*).
        self.dropped = 0

    def record(self, kind: str, **fields) -> None:
        """Append one entry; ``fields`` must be JSON-serializable-ish."""
        if self._capacity is not None and len(self._entries) >= self._capacity:
            self.dropped += 1
            self._seq += 1
            return
        entry = {"seq": self._seq, "kind": kind}
        for key, value in fields.items():
            entry[key] = _canonical(value)
        self._entries.append(entry)
        self._seq += 1

    # -- querying ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self, kind: Optional[str] = None) -> List[Dict]:
        """All entries (optionally filtered by kind), in emission order."""
        if kind is None:
            return list(self._entries)
        return [entry for entry in self._entries if entry["kind"] == kind]

    # -- export ------------------------------------------------------------

    def to_jsonl_lines(self) -> Iterator[str]:
        for entry in self._entries:
            yield json.dumps(entry, sort_keys=True)

    def write_jsonl(self, path: str) -> int:
        """Write one entry per line; returns the number written."""
        written = 0
        with open(path, "w") as handle:
            for line in self.to_jsonl_lines():
                handle.write(line)
                handle.write("\n")
                written += 1
        return written


class NullLedger(EvidenceLedger):
    """The default, disabled ledger: recording is a no-op."""

    enabled = False

    def record(self, kind: str, **fields) -> None:
        pass


#: The process-wide disabled ledger (shared).
NULL_LEDGER = NullLedger()


class _ActiveState:
    __slots__ = ("ledger",)

    def __init__(self) -> None:
        self.ledger: EvidenceLedger = NULL_LEDGER


_STATE = _ActiveState()


def get_ledger() -> EvidenceLedger:
    """The currently active ledger (the null ledger by default)."""
    return _STATE.ledger


def set_ledger(ledger: Optional[EvidenceLedger]) -> EvidenceLedger:
    """Install ``ledger`` process-wide; ``None`` restores the null one."""
    _STATE.ledger = ledger if ledger is not None else NULL_LEDGER
    return _STATE.ledger


@contextmanager
def using_ledger(ledger: Optional[EvidenceLedger]) -> Iterator[EvidenceLedger]:
    """Context manager: install ``ledger``, restore the previous on exit."""
    previous = _STATE.ledger
    try:
        yield set_ledger(ledger)
    finally:
        _STATE.ledger = previous


def read_ledger_jsonl(path: str) -> List[Dict]:
    """Load a ledger file written by :meth:`EvidenceLedger.write_jsonl`.

    A malformed line (truncated write, concatenated files, stray bytes)
    raises :class:`ConfigurationError` naming the offending line number
    instead of leaking a raw ``json.JSONDecodeError`` traceback to the
    tooling on top.
    """
    entries = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"ledger {path} line {number} is not valid JSON "
                    f"(truncated write?): {exc.msg}"
                ) from None
    return entries


# -- verdict reconstruction (`repro-aai explain`) --------------------------


def ledger_runs(entries: List[Dict]) -> List[int]:
    """Absolute run indices present in a ledger, in first-seen order."""
    seen: List[int] = []
    for entry in entries:
        run = entry.get("run")
        if run is not None and run not in seen:
            seen.append(run)
    return seen


def _fmt(value: float) -> str:
    return f"{value:.4f}"


def _explain_one_run(entries: List[Dict], run: int) -> str:
    """Reconstruct one run's verdict as a human-readable causal chain."""
    lines: List[str] = []
    own = [entry for entry in entries if entry.get("run") == run]
    if not own:
        return f"run {run}: no ledger entries"
    start = next((e for e in own if e["kind"] == "run_start"), None)
    verdict = next((e for e in own if e["kind"] == "verdict"), None)
    if start is not None:
        malicious = start.get("malicious_links", [])
        lines.append(
            f"Run {run} — {start.get('protocol', '?')} "
            f"(seed {start.get('seed', '?')}, path length "
            f"{start.get('path_length', '?')}, horizon "
            f"{start.get('horizon', '?')})"
        )
        lines.append(
            "  ground truth: "
            + (
                "malicious link(s) " + ", ".join(f"l{i}" for i in malicious)
                if malicious
                else "all links honest"
            )
        )
    lines.append("  evidence chain:")
    convicted_so_far: List[int] = []
    for entry in own:
        seq = entry["seq"]
        kind = entry["kind"]
        if kind == "checkpoint":
            convicted = entry.get("convicted", [])
            if convicted == convicted_so_far:
                continue  # quiet checkpoints render only on change
            convicted_so_far = convicted
        elif kind == "accusation":
            lines.append(
                f"    [seq {seq}] checkpoint {entry['checkpoint']}: "
                f"l{entry['link']} estimate {_fmt(entry['estimate'])} "
                f"crossed threshold {_fmt(entry['threshold'])} "
                f"(margin +{_fmt(entry['margin'])}) -> ACCUSED"
            )
        elif kind == "exoneration":
            lines.append(
                f"    [seq {seq}] checkpoint {entry['checkpoint']}: "
                f"l{entry['link']} estimate {_fmt(entry['estimate'])} "
                f"fell back below threshold {_fmt(entry['threshold'])} "
                "-> accusation withdrawn"
            )
        elif kind == "bound":
            lines.append(
                f"    [seq {seq}] Hoeffding bound at {entry['rounds']} "
                f"rounds: half-width {_fmt(entry['half_width'])} "
                f"(sigma {entry['sigma']:g}) — convicted "
                f"{entry.get('convicted', [])}, cleared "
                f"{entry.get('cleared', [])}, undecided "
                f"{entry.get('undecided', [])}"
            )
        elif kind == "controller":
            lines.append(
                f"    [seq {seq}] controller acted at t="
                f"{entry['time']:g}s ({entry['packets_sent']} packets, "
                f"{entry['rounds']} rounds): convicted "
                + ", ".join(f"l{i}" for i in entry.get("convicted", []))
            )
        elif kind == "fault":
            lines.append(
                f"    [seq {seq}] fault interference at t="
                f"{entry.get('time', 0):g}s: {entry.get('fault', '?')}"
            )
    fusions = [
        entry
        for entry in entries
        if entry["kind"] == "fusion" and run in entry.get("routes", [])
    ]
    if fusions:
        lines.append("  network fusion (this run's path contributed):")
        for entry in fusions:
            lines.append(
                f"    [seq {entry['seq']}] checkpoint "
                f"{entry.get('checkpoint', '?')}: link "
                f"L{entry['link']} pooled margin "
                f"{entry['pooled_margin']:+.4f} over "
                f"{len(entry.get('routes', []))} route(s), "
                f"{entry.get('rounds', '?')} rounds -> "
                f"{str(entry.get('verdict', '?')).upper()} "
                f"(posterior bad {_fmt(entry.get('posterior_bad', 0.0))})"
            )
    if verdict is not None:
        convicted = verdict.get("convicted", [])
        fp = verdict.get("false_positives", [])
        fn = verdict.get("false_negatives", [])
        summary = (
            "convicted " + ", ".join(f"l{i}" for i in convicted)
            if convicted
            else "convicted nobody"
        )
        qualifier = (
            "exact verdict"
            if verdict.get("exact")
            else "; ".join(
                part
                for part in (
                    "false positives: " + ", ".join(f"l{i}" for i in fp)
                    if fp
                    else "",
                    "false negatives: " + ", ".join(f"l{i}" for i in fn)
                    if fn
                    else "",
                )
                if part
            )
        )
        lines.append(
            f"  verdict at checkpoint {verdict.get('checkpoint', '?')}: "
            f"{summary} ({qualifier})"
        )
    return "\n".join(lines)


def render_explanation(entries: List[Dict], run: Optional[int] = None) -> str:
    """Human-readable reconstruction of ledger evidence.

    With ``run`` given, renders that run's full causal chain; otherwise
    renders an index of runs with their one-line verdicts (plus any
    experiment-level entries).
    """
    if not entries:
        return "(empty ledger)"
    if run is not None:
        return _explain_one_run(entries, run)
    runs = ledger_runs(entries)
    lines: List[str] = []
    for index in runs:
        verdict = next(
            (
                e
                for e in entries
                if e["kind"] == "verdict" and e.get("run") == index
            ),
            None,
        )
        if verdict is None:
            lines.append(f"run {index}: (no verdict recorded)")
            continue
        convicted = verdict.get("convicted", [])
        label = (
            "convicted " + ", ".join(f"l{i}" for i in convicted)
            if convicted
            else "convicted nobody"
        )
        exact = " [exact]" if verdict.get("exact") else ""
        lines.append(f"run {index}: {label}{exact}")
    fusions = [e for e in entries if e["kind"] == "fusion"]
    for entry in fusions:
        routes_str = ", ".join(str(r) for r in entry.get("routes", []))
        lines.append(
            f"fusion: L{entry['link']} "
            f"{str(entry.get('verdict', '?')).upper()} "
            f"(posterior bad {_fmt(entry.get('posterior_bad', 0.0))}, "
            f"routes {routes_str or '-'})"
        )
    experiments = [e for e in entries if e["kind"] == "experiment"]
    for entry in experiments:
        lines.append(
            f"experiment: {entry.get('protocol', '?')} x"
            f"{entry.get('runs', '?')} runs (backend "
            f"{entry.get('backend', '?')}) — final FP "
            f"{entry.get('final_false_positive', '?')}, final FN "
            f"{entry.get('final_false_negative', '?')}"
        )
    if not lines:
        return "(no runs in ledger)"
    lines.append("")
    lines.append("use --run N for a run's full evidence chain")
    return "\n".join(lines)


__all__ = [
    "EvidenceLedger",
    "NullLedger",
    "NULL_LEDGER",
    "get_ledger",
    "set_ledger",
    "using_ledger",
    "read_ledger_jsonl",
    "ledger_runs",
    "render_explanation",
]
