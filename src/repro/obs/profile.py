"""Deterministic-safe phase profiler for the detection pipeline.

The fastpath work (PR 6) made *wall-clock* a first-class output of the
repo — ``BENCH_fastpath.json`` records whole-run timings — but nothing
says *where* a run spends its time: path setup, wire replay, score
accumulation, or the conviction sweep. The phase profiler closes that gap
with coarse phase timers that follow the registry's rules:

1. **Off by default, near-zero when off.** The active profiler defaults
   to a shared :class:`NullProfiler` whose :meth:`~PhaseProfiler.phase`
   returns one shared no-op context manager — entering a phase on the
   disabled path is two method calls and no allocation.
2. **Sim-scope safe.** Simulation modules (``repro.net``, ``repro.mc``)
   must never read clocks directly (audit rules ST001/DET003); they call
   :func:`phase`, and the monotonic ``time.perf_counter`` read happens
   here, inside the telemetry scope where the audit allows it.
3. **Deterministic export.** Durations land in a wall-clock histogram on
   :data:`~repro.obs.registry.TIME_BUCKETS`, so
   :func:`~repro.obs.registry.deterministic_view` reduces them to their
   (seed-deterministic) observation counts — profiled runs still compare
   byte-identical across engines and worker layouts.
4. **Coarse by construction.** Phases wrap checkpoint- and run-level
   sections, never per-packet or per-round work, so the enabled overhead
   stays far below the noise floor of the things being measured.

Exported series (through the registry snapshot):

``profile.phase_seconds{phase=...}``
    Wall-clock histogram of each phase's duration.
``profile.phase_calls{phase=...}``
    How many times each phase ran (deterministic at fixed seed).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.registry import (
    MetricsRegistry,
    get_registry,
)

#: The canonical pipeline phases instrumented by the shipped code.
PIPELINE_PHASES = ("setup", "wire-replay", "scoring", "conviction")


class _NullPhase:
    """Shared no-op context manager for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_PHASE = _NullPhase()


class _TimedPhase:
    """Times one phase entry and publishes it to the bound registry."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_TimedPhase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self._profiler._observe(self._name, elapsed)
        return None


class PhaseProfiler:
    """Publishes phase timings into a metrics registry.

    Binds the registry active at construction time (the same rule as
    instrumented simulator objects), so a profiler built inside a
    ``using_registry`` block exports through that registry even if the
    phase runs later.
    """

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else get_registry()

    def phase(self, name: str):
        """Context manager timing one entry of phase ``name``."""
        return _TimedPhase(self, name)

    def _observe(self, name: str, elapsed: float) -> None:
        self._registry.histogram(
            "profile.phase_seconds", phase=name
        ).observe(elapsed)
        self._registry.counter("profile.phase_calls", phase=name).inc()


class NullProfiler(PhaseProfiler):
    """The default, disabled profiler: phases are shared no-ops."""

    enabled = False

    def __init__(self) -> None:
        pass

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def _observe(self, name: str, elapsed: float) -> None:
        pass


#: The process-wide disabled profiler (shared).
NULL_PROFILER = NullProfiler()


class _ActiveState:
    __slots__ = ("profiler",)

    def __init__(self) -> None:
        self.profiler: PhaseProfiler = NULL_PROFILER


_STATE = _ActiveState()


def get_profiler() -> PhaseProfiler:
    """The currently active profiler (the null profiler by default)."""
    return _STATE.profiler


def set_profiler(profiler: Optional[PhaseProfiler]) -> PhaseProfiler:
    """Install ``profiler`` process-wide; ``None`` restores the null one."""
    _STATE.profiler = profiler if profiler is not None else NULL_PROFILER
    return _STATE.profiler


@contextmanager
def using_profiler(profiler: Optional[PhaseProfiler]) -> Iterator[PhaseProfiler]:
    """Context manager: install ``profiler``, restore the previous on exit."""
    previous = _STATE.profiler
    try:
        yield set_profiler(profiler)
    finally:
        _STATE.profiler = previous


def phase(name: str):
    """Time one entry of phase ``name`` on the active profiler.

    The sim-scope entry point: modules banned from reading clocks call
    this; with the null profiler active it returns a shared no-op.
    """
    return _STATE.profiler.phase(name)


__all__ = [
    "PIPELINE_PHASES",
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "get_profiler",
    "set_profiler",
    "using_profiler",
    "phase",
]
