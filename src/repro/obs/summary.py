"""Human-readable summaries of exported observability artifacts.

Backs the ``repro obs summary`` CLI subcommand: load a metrics JSON
(written by ``--metrics-out`` / :meth:`MetricsRegistry.write_json`) and/or
a span JSONL (written by ``--trace-out``), and render compact text tables
— the quick "what happened in that run" view without spelunking raw JSON.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from typing import List, Optional, Sequence

from repro.experiments.report import render_table


def load_metrics(path: str) -> dict:
    """Load a metrics snapshot written by ``--metrics-out``."""
    with open(path) as handle:
        snapshot = json.load(handle)
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            raise ValueError(
                f"{path} is not a metrics snapshot (missing {section!r})"
            )
    return snapshot


def _labels_text(labels: dict) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def summarize_metrics(snapshot: dict, top: int = 0) -> str:
    """Render counters, gauges, and histogram digests as text tables.

    ``top`` truncates the counter table to the N largest series (0 keeps
    everything).
    """
    blocks: List[str] = []

    # Crashed runs still write a (partial) snapshot; lead with that fact
    # so nobody reads partial counters as a completed run's numbers.
    if snapshot.get("status") == "failed":
        blocks.append(
            "!! PARTIAL SNAPSHOT: the run failed before completing — "
            "counters below are a lower bound"
        )

    counters = sorted(
        snapshot["counters"],
        key=lambda entry: (-entry["value"], entry["name"]),
    )
    if top > 0:
        counters = counters[:top]
    if counters:
        blocks.append(
            render_table(
                headers=["counter", "labels", "value"],
                rows=[
                    [entry["name"], _labels_text(entry["labels"]), entry["value"]]
                    for entry in counters
                ],
                title="Counters",
            )
        )

    if snapshot["gauges"]:
        blocks.append(
            render_table(
                headers=["gauge", "labels", "value"],
                rows=[
                    [entry["name"], _labels_text(entry["labels"]), entry["value"]]
                    for entry in snapshot["gauges"]
                ],
                title="\nGauges",
            )
        )

    if snapshot["histograms"]:
        rows = []
        for entry in snapshot["histograms"]:
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            rows.append(
                [
                    entry["name"],
                    _labels_text(entry["labels"]),
                    count,
                    f"{mean:.3g}",
                    f"{entry['min']:.3g}" if entry["min"] is not None else "N/A",
                    f"{entry['max']:.3g}" if entry["max"] is not None else "N/A",
                ]
            )
        blocks.append(
            render_table(
                headers=["histogram", "labels", "count", "mean", "min", "max"],
                rows=rows,
                title="\nHistograms",
            )
        )

    # Wire-backend routing: which engine actually produced each run, and
    # why any fastpath runs fell back to the event engine. Rendered as
    # its own section so fallback runs are never mistaken for fastpath
    # coverage.
    wire_backend = snapshot.get("wire_backend")
    if wire_backend is not None:
        rows = []
        backend = wire_backend.get("backend", "?")
        for engine, count in sorted(
            wire_backend.get("engines", {}).items()
        ):
            label = engine
            if backend == "fastpath" and engine == "event":
                label = "event (fallback)"
            rows.append([label, count])
        table = render_table(
            headers=["engine", "runs"],
            rows=rows or [["(none recorded)", 0]],
            title=f"\nWire backend (requested: {backend})",
        )
        reasons = wire_backend.get("fallback_reasons") or []
        if reasons:
            table += "\n" + "\n".join(
                f"  fallback reason: {reason}" for reason in reasons
            )
        blocks.append(table)

    # Monte-Carlo snapshots isolate their companion wire run's metrics in
    # a dedicated section (they would otherwise contaminate the
    # experiment's own counters); summarize it under its own banner.
    companion = snapshot.get("companion_wire_run")
    if companion is not None:
        banner = "Companion wire run (captured for tracing only)"
        blocks.append(
            ("\n" if blocks else "") + banner + "\n" + "=" * len(banner)
        )
        blocks.append(summarize_metrics(companion, top=top))

    if not blocks:
        return "(empty metrics snapshot)"
    return "\n".join(blocks)


def summarize_trace(spans: Sequence[dict]) -> str:
    """Render a span-file digest: outcomes, probe rate, span sizes."""
    if not spans:
        return "(no spans)"
    outcomes = TallyCounter(span["outcome"] for span in spans)
    probed = sum(1 for span in spans if span.get("probed"))
    events = [len(span["events"]) for span in spans]
    durations = [span["end"] - span["start"] for span in spans]
    overview = render_table(
        headers=["quantity", "value"],
        rows=[
            ["rounds (spans)", len(spans)],
            ["probed rounds", probed],
            ["events total", sum(events)],
            ["events/span (mean)", f"{sum(events) / len(spans):.2f}"],
            ["span duration (mean s)", f"{sum(durations) / len(spans):.4f}"],
        ],
        title="Trace overview",
    )
    outcome_table = render_table(
        headers=["outcome", "rounds"],
        rows=[[name, count] for name, count in outcomes.most_common()],
        title="\nRound outcomes",
    )
    blocks = [overview, outcome_table]
    # Multi-path traces (mesh/topology runs): group spans by the owning
    # path so concurrent protocol instances stay distinguishable. A
    # single-path trace keeps its historical output untouched.
    paths = sorted({span.get("path", 0) for span in spans})
    if len(paths) > 1:
        rows = []
        for path_id in paths:
            own = [s for s in spans if s.get("path", 0) == path_id]
            completed = sum(
                1
                for s in own
                if s["outcome"] in ("reported", "acked", "delivered")
            )
            rows.append(
                [
                    path_id,
                    len(own),
                    completed,
                    f"{completed / len(own):.2%}" if own else "-",
                ]
            )
        blocks.append(
            render_table(
                headers=["path", "rounds", "completed", "completion rate"],
                rows=rows,
                title="\nPer-path breakdown",
            )
        )
    # Mixed-provenance trace files: spans replayed by the fastpath carry
    # an "engine" tag; classic event-engine spans don't. Only render the
    # breakdown when at least one span is tagged, so plain traces keep
    # their historical output.
    if any("engine" in span for span in spans):
        engines = TallyCounter(
            span.get("engine", "event") for span in spans
        )
        blocks.append(
            render_table(
                headers=["engine", "spans"],
                rows=[
                    [name, count] for name, count in sorted(engines.items())
                ],
                title="\nSpan provenance",
            )
        )
    return "\n".join(blocks)


def summarize_files(
    metrics_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    top: int = 0,
) -> str:
    """Summarize whichever artifacts were given (at least one required)."""
    from repro.obs.tracing import read_jsonl

    if metrics_path is None and trace_path is None:
        raise ValueError("need a metrics file, a trace file, or both")
    blocks = []
    if metrics_path is not None:
        blocks.append(summarize_metrics(load_metrics(metrics_path), top=top))
    if trace_path is not None:
        if blocks:
            blocks.append("")
        blocks.append(summarize_trace(read_jsonl(trace_path)))
    return "\n".join(blocks)


__all__ = [
    "load_metrics",
    "summarize_metrics",
    "summarize_trace",
    "summarize_files",
]
