"""Bench-trend observatory: turn BENCH_*.json artifacts into a trajectory.

The benchmark suite leaves machine-readable telemetry files at the repo
root (``BENCH_observability.json``, ``BENCH_parallel.json``,
``BENCH_fastpath.json``, ``BENCH_topology.json``), but until now they
were point-in-time artifacts — a slowdown was invisible unless someone
diffed JSON by hand.
This module compares the current files against a committed baseline
(``bench-baseline.json``) and reports per-benchmark deltas; the CI
``bench-trend`` job runs it warn-only (``--check``), with ``--strict``
available once the baseline has soaked.

Comparison semantics:

* A benchmark is keyed by its pytest node name (unique across files).
* ``slower`` / ``faster`` require the relative delta to exceed
  ``threshold`` (default 25%) *and* at least one side to exceed the noise
  floor (default 50 ms) — sub-floor benchmarks are pure jitter on shared
  CI boxes.
* Benchmarks present only in the current files are ``new``; present only
  in the baseline are ``missing``. Neither ever fails the gate: they are
  churn signals, not regressions.
* Records marked ``"status": "skipped"`` (see ``benchmarks/conftest.py``)
  and records without a measured ``seconds`` are ignored on both sides.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import ConfigurationError

#: Benchmark telemetry files the observatory ingests, repo-root relative.
DEFAULT_BENCH_FILES = (
    "BENCH_observability.json",
    "BENCH_parallel.json",
    "BENCH_fastpath.json",
    "BENCH_topology.json",
    "BENCH_audit.json",
)

#: Committed baseline filename, repo-root relative.
DEFAULT_BASELINE = "bench-baseline.json"

#: Relative slowdown/speedup beyond which a delta is reported.
DEFAULT_THRESHOLD = 0.25

#: Both sides under this many seconds → the benchmark is jitter, not signal.
NOISE_FLOOR_SECONDS = 0.05


def load_bench_records(path: Union[str, Path]) -> Dict[str, float]:
    """Benchmark name → measured seconds from one BENCH_*.json file.

    Handles both telemetry shapes (a bare list, or ``{"cpu_count": ...,
    "records": [...]}``); skipped and unmeasured records are dropped.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        records = payload.get("records")
        if not isinstance(records, list):
            raise ConfigurationError(
                f"{path}: expected a 'records' list in the telemetry object"
            )
    elif isinstance(payload, list):
        records = payload
    else:
        raise ConfigurationError(f"{path}: not a benchmark telemetry file")
    out: Dict[str, float] = {}
    for record in records:
        if not isinstance(record, dict) or "name" not in record:
            continue
        if record.get("status") == "skipped":
            continue
        seconds = record.get("seconds")
        if seconds is None:
            continue
        out[str(record["name"])] = float(seconds)
    return out


def collect_bench_seconds(
    paths: Sequence[Union[str, Path]],
) -> Dict[str, float]:
    """Merge every existing BENCH file into one name → seconds map."""
    merged: Dict[str, float] = {}
    for path in paths:
        if not Path(path).exists():
            continue
        merged.update(load_bench_records(path))
    return merged


def build_baseline(
    paths: Sequence[Union[str, Path]],
    cpu_count: Optional[int] = None,
) -> dict:
    """A committable baseline payload from the current BENCH files."""
    benchmarks = collect_bench_seconds(paths)
    payload = {
        "benchmarks": {
            name: round(seconds, 6)
            for name, seconds in sorted(benchmarks.items())
        },
    }
    if cpu_count is not None:
        payload["cpu_count"] = cpu_count
    return payload


def load_baseline(path: Union[str, Path]) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        raise ConfigurationError(
            f"{path}: not a bench baseline (missing 'benchmarks')"
        )
    return payload


@dataclass
class BenchDelta:
    """One benchmark's movement against the baseline."""

    name: str
    status: str  # "ok" | "slower" | "faster" | "new" | "missing"
    baseline_seconds: Optional[float] = None
    current_seconds: Optional[float] = None
    #: (current - baseline) / baseline; None for new/missing benchmarks.
    relative_delta: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "baseline_seconds": self.baseline_seconds,
            "current_seconds": self.current_seconds,
            "relative_delta": (
                round(self.relative_delta, 4)
                if self.relative_delta is not None
                else None
            ),
        }


@dataclass
class TrendReport:
    """Every benchmark's delta plus gate-level rollups."""

    deltas: List[BenchDelta] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.status == "slower"]

    @property
    def improvements(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.status == "faster"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def render(self) -> str:
        """Human-readable delta table for the CI log."""
        lines = [
            "bench trend vs baseline "
            f"(threshold {self.threshold:.0%}, noise floor "
            f"{NOISE_FLOOR_SECONDS * 1000:.0f} ms)",
            "",
        ]
        if not self.deltas:
            lines.append("  (no benchmarks to compare)")
            return "\n".join(lines)
        width = max(len(d.name) for d in self.deltas)
        for delta in self.deltas:
            if delta.status == "new":
                detail = f"new          {delta.current_seconds:8.4f}s"
            elif delta.status == "missing":
                detail = f"missing      {delta.baseline_seconds:8.4f}s (baseline)"
            else:
                marker = {"ok": " ", "slower": "!", "faster": "+"}[delta.status]
                detail = (
                    f"{delta.status:<8} {marker} "
                    f"{delta.baseline_seconds:8.4f}s -> "
                    f"{delta.current_seconds:8.4f}s "
                    f"({delta.relative_delta:+.1%})"
                )
            lines.append(f"  {delta.name:<{width}}  {detail}")
        lines.append("")
        if self.regressions:
            names = ", ".join(d.name for d in self.regressions)
            lines.append(f"REGRESSIONS ({len(self.regressions)}): {names}")
        else:
            lines.append("no regressions beyond threshold")
        return "\n".join(lines)


def compare_to_baseline(
    baseline: dict,
    paths: Sequence[Union[str, Path]],
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor: float = NOISE_FLOOR_SECONDS,
) -> TrendReport:
    """Per-benchmark deltas of the current BENCH files vs a baseline."""
    if threshold <= 0:
        raise ConfigurationError("threshold must be positive")
    base = {
        str(name): float(seconds)
        for name, seconds in baseline.get("benchmarks", {}).items()
    }
    current = collect_bench_seconds(paths)
    report = TrendReport(threshold=threshold)
    for name in sorted(set(base) | set(current)):
        if name not in base:
            report.deltas.append(
                BenchDelta(name, "new", current_seconds=current[name])
            )
            continue
        if name not in current:
            report.deltas.append(
                BenchDelta(name, "missing", baseline_seconds=base[name])
            )
            continue
        before, after = base[name], current[name]
        # Divide through the noise floor, not the raw baseline: a
        # zero/near-zero baseline (skipped run, sub-resolution timer)
        # would otherwise explode the percentage into inf/NaN and flag
        # pure jitter as a thousand-percent regression.
        relative = (after - before) / max(before, noise_floor)
        status = "ok"
        if max(before, after) >= noise_floor:
            if relative > threshold:
                status = "slower"
            elif relative < -threshold:
                status = "faster"
        report.deltas.append(
            BenchDelta(
                name,
                status,
                baseline_seconds=before,
                current_seconds=after,
                relative_delta=relative,
            )
        )
    return report


__all__ = [
    "DEFAULT_BENCH_FILES",
    "DEFAULT_BASELINE",
    "DEFAULT_THRESHOLD",
    "NOISE_FLOOR_SECONDS",
    "BenchDelta",
    "TrendReport",
    "load_bench_records",
    "collect_bench_seconds",
    "build_baseline",
    "load_baseline",
    "compare_to_baseline",
]
