"""Wire-run observability capture.

Some experiments (Figure 2, Table 2) run on the vectorized Monte-Carlo
engine, which never touches the wire simulator — there are no packets to
trace. When the CLI is asked for packet-level observability
(``--trace-out``) on such an experiment, it captures a *companion wire
run*: the same protocol under the same scenario on the event-driven
simulator, with the active metrics registry and trace collector observing
every link, node, crypto call, and agent decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.simulator import Simulator
from repro.workloads.scenarios import Scenario, paper_scenario


@dataclass
class CaptureResult:
    """Summary of one instrumented wire run."""

    protocol: str
    packets: int
    events_processed: int
    data_delivered: int
    overhead_packets: int

    def describe(self) -> str:
        return (
            f"observability capture: {self.protocol} wire run — "
            f"{self.packets} data packets, {self.data_delivered} delivered, "
            f"{self.overhead_packets} control packets, "
            f"{self.events_processed} engine events"
        )


def capture_wire_run(
    protocol: str,
    scenario: Optional[Scenario] = None,
    packets: int = 400,
    rate: float = 1000.0,
    seed: int = 0,
) -> CaptureResult:
    """Run ``protocol`` on the wire simulator under full observability.

    Install the metrics registry / trace collector *before* calling (the
    CLI does this); the run then populates both. Returns a small summary
    for the log line.
    """
    if scenario is None:
        scenario = paper_scenario()
    simulator = Simulator(seed=seed)
    instance = scenario.build_protocol(protocol, simulator)
    instance.run_traffic(count=packets, rate=rate)
    stats = instance.path.stats
    return CaptureResult(
        protocol=protocol,
        packets=packets,
        events_processed=simulator.events_processed,
        data_delivered=stats.data_delivered,
        overhead_packets=sum(stats.overhead_packets.values()),
    )


__all__ = ["CaptureResult", "capture_wire_run"]
