"""Process-wide metrics registry: counters, gauges, histograms.

The evaluation is entirely about *measuring* protocol behavior, so the
measurement plane is a first-class subsystem: every layer (engine, links,
nodes, crypto substrate, protocol agents) publishes metrics through one
registry with a uniform naming scheme and labeled series, exported as JSON
for the experiment/benchmark telemetry.

Design constraints, in order:

1. **Near-zero overhead when disabled.** The default registry is a shared
   :class:`NullRegistry` whose instruments are no-op singletons. Hot paths
   either hold one of those no-op instruments (a method call per event) or
   check ``registry.enabled`` (an attribute load per event) — there is no
   locking, no string formatting, and no dict lookup on the disabled path.
2. **Construction-time binding.** Instrumented objects fetch their
   instrument handles once, at construction, so the per-event cost with
   metrics enabled is a plain attribute increment. Install the registry
   (:func:`set_registry` / :func:`using_registry`) *before* building
   simulators and protocols.
3. **Deterministic export.** Snapshots order series by (name, labels) so
   two runs of the same seed produce byte-identical JSON.

Metric names are dot-separated (``net.link.transmissions``); labels are
keyword arguments with string values (``link="0", kind="data"``).
See ``docs/OBSERVABILITY.md`` for the full metric catalog.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError

#: Default histogram buckets for wall-clock timings (seconds): roughly
#: logarithmic from 1 microsecond to 1 second.
TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6,
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1,
    1.0,
)

#: Default buckets for simulated-time latencies (seconds): protocol rounds
#: resolve within a few worst-case round trips, i.e. well under a minute.
SIM_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.002, 0.005,
    0.01, 0.02, 0.05,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0,
    10.0, 30.0, 60.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, store occupancy)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` are inclusive upper bounds in increasing order; an
    observation larger than the last bound lands in the overflow bucket.
    The histogram also tracks count/sum/min/max so exports can report a
    mean without retaining samples.
    """

    __slots__ = ("buckets", "counts", "overflow", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # pragma: no cover - trivial
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(buckets=(1.0,))

    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """A collection of named, labeled metric series.

    Requesting the same (name, labels) twice returns the same instrument
    — series *merge* rather than shadow, which is what lets many links or
    agents contribute to one aggregate series.
    """

    #: Fast-path flag: hot code checks this instead of isinstance().
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[LabelItems, Counter]] = {}
        self._gauges: Dict[str, Dict[LabelItems, Gauge]] = {}
        self._histograms: Dict[str, Dict[LabelItems, Histogram]] = {}
        self._histogram_buckets: Dict[str, Tuple[float, ...]] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        family = self._counters.setdefault(name, {})
        key = _label_key(labels)
        instrument = family.get(key)
        if instrument is None:
            instrument = family[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        family = self._gauges.setdefault(name, {})
        key = _label_key(labels)
        instrument = family.get(key)
        if instrument is None:
            instrument = family[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = TIME_BUCKETS,
        **labels: str,
    ) -> Histogram:
        family = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        instrument = family.get(key)
        if instrument is None:
            bounds = self._histogram_buckets.setdefault(
                name, tuple(float(b) for b in buckets)
            )
            instrument = family[key] = Histogram(bounds)
        return instrument

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Drop every series (names, labels, and values)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._histogram_buckets.clear()

    def merge(self, other: Union["MetricsRegistry", dict]) -> None:
        """Fold another registry — or a :meth:`snapshot` dict — into this.

        Counters and histograms add; gauges take ``other``'s (newer)
        value. Used by the experiment runner to aggregate per-experiment
        registries into one run-level view, and by the parallel engine to
        fold worker snapshots (plain dicts shipped across the process
        boundary) back into the parent's registry. Merging is associative
        on the additive instruments, so merge order never changes counter
        or histogram totals.
        """
        snapshot = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for section in ("counters", "gauges", "histograms"):
            if section not in snapshot:
                raise ConfigurationError(
                    f"cannot merge: not a metrics snapshot (missing {section!r})"
                )
        for entry in snapshot["counters"]:
            self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snapshot["gauges"]:
            self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in snapshot["histograms"]:
            buckets = tuple(float(b) for b in entry["buckets"])
            mine = self.histogram(
                entry["name"], buckets=buckets, **entry["labels"]
            )
            if mine.buckets != buckets:
                raise ConfigurationError(
                    f"cannot merge histogram {entry['name']!r}: bucket mismatch"
                )
            for index, count in enumerate(entry["counts"]):
                mine.counts[index] += count
            mine.overflow += entry["overflow"]
            mine.count += entry["count"]
            mine.sum += entry["sum"]
            if entry["min"] is not None:
                mine.min = (
                    entry["min"] if mine.min is None
                    else min(mine.min, entry["min"])
                )
            if entry["max"] is not None:
                mine.max = (
                    entry["max"] if mine.max is None
                    else max(mine.max, entry["max"])
                )

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Return a JSON-serializable view of every series.

        Series are sorted by (name, labels) so exports are deterministic.
        """
        counters = [
            {"name": name, "labels": dict(key), "value": counter.value}
            for name in sorted(self._counters)
            for key, counter in sorted(self._counters[name].items())
        ]
        gauges = [
            {"name": name, "labels": dict(key), "value": gauge.value}
            for name in sorted(self._gauges)
            for key, gauge in sorted(self._gauges[name].items())
        ]
        histograms = [
            {
                "name": name,
                "labels": dict(key),
                "buckets": list(histogram.buckets),
                "counts": list(histogram.counts),
                "overflow": histogram.overflow,
                "count": histogram.count,
                "sum": histogram.sum,
                "min": histogram.min,
                "max": histogram.max,
            }
            for name in sorted(self._histograms)
            for key, histogram in sorted(self._histograms[name].items())
        ]
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def snapshot_deterministic(self) -> dict:
        return deterministic_view(self.snapshot())

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    # -- convenience lookups (tests, summaries) ----------------------------

    def counter_value(self, name: str, **labels: str) -> int:
        """Value of one counter series, 0 when absent."""
        family = self._counters.get(name, {})
        instrument = family.get(_label_key(labels))
        return instrument.value if instrument is not None else 0

    def counter_total(self, name: str) -> int:
        """Sum of a counter family across all label sets."""
        return sum(c.value for c in self._counters.get(name, {}).values())


class NullRegistry(MetricsRegistry):
    """The default, disabled registry: every instrument is a shared no-op.

    Instrumented code constructed while this registry is active pays one
    no-op method call per event — nothing is recorded, nothing allocates.
    """

    enabled = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._GAUGE

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = TIME_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}


def deterministic_view(snapshot: dict) -> dict:
    """The seed-reproducible projection of a metrics snapshot.

    Counters, gauges, and simulated-time histograms are pure functions of
    the experiment seed, but wall-clock histograms (the ones bucketed on
    :data:`TIME_BUCKETS`) observe real durations — their bucket spread,
    sum, and extrema vary run to run even at a fixed seed. This view
    keeps only each wall-clock histogram's observation ``count`` (which
    *is* deterministic), so two snapshots of the same seeded run — e.g. a
    serial and a parallel report — compare equal.
    """
    wall_clock = list(TIME_BUCKETS)
    histograms = []
    for entry in snapshot.get("histograms", []):
        if entry.get("buckets") == wall_clock:
            histograms.append(
                {
                    "name": entry["name"],
                    "labels": entry["labels"],
                    "count": entry["count"],
                }
            )
        else:
            histograms.append(entry)
    return {
        "counters": snapshot.get("counters", []),
        "gauges": snapshot.get("gauges", []),
        "histograms": histograms,
    }


#: The process-wide disabled registry (shared).
NULL_REGISTRY = NullRegistry()


class _ActiveState:
    """Mutable holder so hot modules can cache one reference and still see
    registry swaps (``_STATE.registry`` is re-read per call)."""

    __slots__ = ("registry",)

    def __init__(self) -> None:
        self.registry: MetricsRegistry = NULL_REGISTRY


_STATE = _ActiveState()


def get_registry() -> MetricsRegistry:
    """The currently active registry (the null registry by default)."""
    return _STATE.registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` process-wide; ``None`` restores the null one.

    Returns the registry that is now active. Install before constructing
    simulators/protocols: instruments are bound at construction time.
    """
    _STATE.registry = registry if registry is not None else NULL_REGISTRY
    return _STATE.registry


@contextmanager
def using_registry(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Context manager: install ``registry``, restore the previous on exit."""
    previous = _STATE.registry
    try:
        yield set_registry(registry)
    finally:
        _STATE.registry = previous


def metrics_enabled() -> bool:
    return _STATE.registry.enabled


class CounterBatch:
    """Accumulate labeled counter increments and flush them in one pass.

    Hot loops that would otherwise pay one ``Counter.inc()`` (plus a
    registry lookup for unbound instruments) per event can tally into a
    plain dict and publish each series with a single ``inc(n)``:

    >>> batch = CounterBatch()
    >>> for link in packets_per_link:            # doctest: +SKIP
    ...     batch.inc("net.link.transmissions", link=str(link))
    >>> batch.flush()                            # doctest: +SKIP

    Against a disabled registry every call is a cheap no-op, so the
    off-by-default observability path stays off the profile. The batch
    binds the registry active at construction time (mirroring how
    instruments are bound), so flushing inside a ``using_registry``
    block behaves the same as direct increments would.
    """

    __slots__ = ("_registry", "_pending")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else _STATE.registry
        self._pending: Dict[Tuple[str, LabelItems], int] = {}

    @property
    def enabled(self) -> bool:
        """Whether increments are being recorded at all."""
        return self._registry.enabled

    def __len__(self) -> int:
        return len(self._pending)

    def inc(self, name: str, amount: int = 1, **labels: str) -> None:
        """Add ``amount`` to the pending total for ``(name, labels)``."""
        if not self._registry.enabled or amount == 0:
            return
        key = (name, _label_key(labels))
        self._pending[key] = self._pending.get(key, 0) + amount

    def flush(self) -> None:
        """Publish every pending series with one increment each."""
        if not self._pending:
            return
        for (name, items), amount in self._pending.items():
            self._registry.counter(name, **dict(items)).inc(amount)
        self._pending.clear()


__all__ = [
    "CounterBatch",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "TIME_BUCKETS",
    "SIM_LATENCY_BUCKETS",
    "deterministic_view",
    "get_registry",
    "set_registry",
    "using_registry",
    "metrics_enabled",
]
