"""Round-level tracing spans.

Debugging or auditing an AAI protocol round means following one data
packet's identifier through its whole probe→ack→report lifecycle: the data
packet hop by hop, the probe that chased it, the (onion/oblivious) report
that came back, and any natural loss or adversarial drop along the way.

:class:`RoundTraceCollector` subscribes to the public path/link hook API
(:meth:`repro.net.path.Path.add_observer`) and groups every link and node
event by packet identifier into one :class:`RoundSpan` per round. Spans
export as JSONL — one JSON object per line, one line per round — so large
traces stream instead of accumulating a single document.

A collector can be activated process-wide (:func:`set_collector` /
:func:`using_collector`); paths constructed while a collector is active
attach themselves automatically, which is how the CLI's ``--trace-out``
flag traces experiments without threading a collector through every
experiment entry point.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # imported lazily: obs must not depend on repro.net at
    # runtime (repro.net.packets -> repro.crypto -> repro.obs would cycle)
    from repro.net.packets import Direction, Packet

#: Span event kinds (the ``kind`` field of each span event).
SEND = "send"
LOSS = "loss"
DELIVER = "deliver"
DROP = "drop"  # adversarial drop at a node

#: Wire packet categories as they appear in span events — the ``.value``
#: strings of :class:`repro.net.packets.PacketKind`, spelled out here to
#: keep this module import-independent of the net layer.
KIND_DATA = "data"
KIND_PROBE = "probe"
KIND_ACK = "ack"


@dataclass
class RoundSpan:
    """Everything observed for one data-packet round.

    ``events`` hold dicts with stable keys::

        {"t": float, "kind": send|loss|deliver|drop, "packet": data|probe|ack,
         "direction": forward|reverse, "link": int | None, "node": int | None,
         "report": bool}

    ``link`` is set for link events, ``node`` for adversarial drops.
    """

    identifier: str  # hex
    sequence: int
    path_id: int
    path_length: int
    start: float
    end: float = 0.0
    events: List[dict] = field(default_factory=list)

    def add(self, event: dict) -> None:
        self.events.append(event)
        self.end = event["t"]

    # -- derived round outcome --------------------------------------------

    @property
    def packet_kinds(self) -> List[str]:
        return sorted({event["packet"] for event in self.events})

    @property
    def data_delivered(self) -> bool:
        """True when the data packet crossed the final link to D."""
        last = self.path_length - 1
        return any(
            e["kind"] == DELIVER
            and e["packet"] == KIND_DATA
            and e["link"] == last
            for e in self.events
        )

    @property
    def probed(self) -> bool:
        return any(e["packet"] == KIND_PROBE for e in self.events)

    @property
    def report_returned(self) -> bool:
        """True when a report-carrying ack made it back across ``l_0``."""
        return any(
            e["kind"] == DELIVER
            and e["packet"] == KIND_ACK
            and e["link"] == 0
            and e["report"]
            for e in self.events
        )

    @property
    def acked(self) -> bool:
        """True when a plain end-to-end ack made it back across ``l_0``."""
        return any(
            e["kind"] == DELIVER
            and e["packet"] == KIND_ACK
            and e["link"] == 0
            and not e["report"]
            for e in self.events
        )

    def outcome(self) -> str:
        """Compact round classification for summaries."""
        if self.report_returned:
            return "reported"
        if self.acked:
            return "acked"
        if self.data_delivered:
            return "delivered"
        drops = [e for e in self.events if e["kind"] in (LOSS, DROP)]
        if drops:
            first = drops[0]
            where = (
                f"l{first['link']}" if first["link"] is not None
                else f"F{first['node']}"
            )
            return f"lost@{where}"
        return "in-flight"

    def to_dict(self) -> dict:
        return {
            "identifier": self.identifier,
            "sequence": self.sequence,
            "path": self.path_id,
            "start": self.start,
            "end": self.end,
            "outcome": self.outcome(),
            "packet_kinds": self.packet_kinds,
            "probed": self.probed,
            "events": self.events,
        }


class RoundTraceCollector:
    """Aggregates link/node events into per-round spans.

    Parameters
    ----------
    capacity:
        Maximum retained spans; the oldest span is evicted beyond it, so
        long runs stay bounded (like the tracer's ring buffer).

    The collector implements the :class:`repro.net.path.PathObserver`
    interface and can be attached to any number of paths (spans carry the
    path id).
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self._capacity = capacity
        self._spans: "OrderedDict[str, RoundSpan]" = OrderedDict()
        self._path_lengths: Dict[int, int] = {}
        self.evicted = 0

    # -- path attachment ---------------------------------------------------

    def attach(self, path) -> None:
        """Subscribe to ``path``'s link and node events."""
        self._path_lengths[path.path_id] = path.length
        path.add_observer(self)

    def detach(self, path) -> None:
        path.remove_observer(self)

    # -- PathObserver interface --------------------------------------------

    def on_transmit(self, link, packet: Packet, direction: Direction) -> None:
        self._record(link._simulator.now, link.path_id, packet, direction,
                     SEND, link=link.index)

    def on_loss(self, link, packet: Packet, direction: Direction) -> None:
        self._record(link._simulator.now, link.path_id, packet, direction,
                     LOSS, link=link.index)

    def on_deliver(self, link, packet: Packet, direction: Direction) -> None:
        self._record(link._simulator.now, link.path_id, packet, direction,
                     DELIVER, link=link.index)

    def on_node_drop(self, node, packet: Packet, direction: Direction,
                     cause: str) -> None:
        self._record(node.path.simulator.now, node.path.path_id, packet,
                     direction, DROP, node=node.position)

    # -- recording ---------------------------------------------------------

    def _record(
        self,
        now: float,
        path_id: int,
        packet: Packet,
        direction: Direction,
        kind: str,
        link: Optional[int] = None,
        node: Optional[int] = None,
    ) -> None:
        identifier = packet.identifier.hex()
        # Keyed by (path, identifier): concurrent protocol instances
        # built from the same key material emit identical packet
        # identifiers, so the identifier alone would merge rounds from
        # different paths into one span.
        key = f"{path_id}:{identifier}"
        span = self._spans.get(key)
        if span is None:
            span = RoundSpan(
                identifier=identifier,
                sequence=packet.sequence,
                path_id=path_id,
                path_length=self._path_lengths.get(path_id, 0),
                start=now,
            )
            self._spans[key] = span
            if len(self._spans) > self._capacity:
                self._spans.popitem(last=False)
                self.evicted += 1
        span.add(
            {
                "t": now,
                "kind": kind,
                "packet": packet.kind.value,
                "direction": direction.value,
                "link": link,
                "node": node,
                "report": bool(getattr(packet, "is_report", False)),
            }
        )

    # -- querying ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self) -> List[RoundSpan]:
        """All retained spans in creation (start-time) order."""
        return list(self._spans.values())

    def span_for(
        self, identifier: bytes, path_id: int = 0
    ) -> Optional[RoundSpan]:
        return self._spans.get(f"{path_id}:{identifier.hex()}")

    # -- export ------------------------------------------------------------

    def to_jsonl_lines(self) -> Iterator[str]:
        for span in self._spans.values():
            yield json.dumps(span.to_dict(), sort_keys=True)

    def write_jsonl(self, path: str) -> int:
        """Write one span per line; returns the number of spans written."""
        written = 0
        with open(path, "w") as handle:
            for line in self.to_jsonl_lines():
                handle.write(line)
                handle.write("\n")
                written += 1
        return written


# -- process-wide active collector ----------------------------------------


class _ActiveState:
    __slots__ = ("collector",)

    def __init__(self) -> None:
        self.collector: Optional[RoundTraceCollector] = None


_STATE = _ActiveState()


def get_collector() -> Optional[RoundTraceCollector]:
    """The collector new paths auto-attach to, or None."""
    return _STATE.collector


def set_collector(collector: Optional[RoundTraceCollector]) -> None:
    _STATE.collector = collector


@contextmanager
def using_collector(
    collector: Optional[RoundTraceCollector],
) -> Iterator[Optional[RoundTraceCollector]]:
    """Activate ``collector`` for the dynamic extent of the block."""
    previous = _STATE.collector
    _STATE.collector = collector
    try:
        yield collector
    finally:
        _STATE.collector = previous


def read_jsonl(path: str) -> List[dict]:
    """Load a span file written by :meth:`RoundTraceCollector.write_jsonl`."""
    spans = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


__all__ = [
    "RoundSpan",
    "RoundTraceCollector",
    "get_collector",
    "set_collector",
    "using_collector",
    "read_jsonl",
    "SEND",
    "LOSS",
    "DELIVER",
    "DROP",
]
