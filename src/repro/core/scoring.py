"""Drop-score bookkeeping.

Every AAI protocol in the paper reduces its observations to integer *drop
scores* per link, accumulated over *observation rounds* (a probed packet in
full-ack/PAAI-1, every data packet in PAAI-2). The board also keeps the
ground-truth-free round count ``n`` that normalizes scores into rates.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.exceptions import ConfigurationError


class ScoreBoard:
    """Per-link drop scores ``s_0 .. s_{d-1}`` plus the round counter."""

    def __init__(self, path_length: int) -> None:
        if path_length <= 0:
            raise ConfigurationError("path_length must be positive")
        self.path_length = path_length
        self._scores: List[int] = [0] * path_length
        self._rounds = 0

    @property
    def rounds(self) -> int:
        """Number of observation rounds recorded so far (``n``)."""
        return self._rounds

    @property
    def scores(self) -> List[int]:
        """A copy of the current per-link scores."""
        return list(self._scores)

    def score(self, link: int) -> int:
        self._check_link(link)
        return self._scores[link]

    def record_round(self) -> None:
        """Count one observation round (call exactly once per round)."""
        self._rounds += 1

    def add(self, link: int, amount: int = 1) -> None:
        """Add to one link's score (full-ack / PAAI-1 blame)."""
        self._check_link(link)
        if amount < 0:
            raise ConfigurationError("score increments must be non-negative")
        self._scores[link] += amount

    def add_range(self, links: Iterable[int], amount: int = 1) -> None:
        """Add to several links' scores (PAAI-2's interval increment)."""
        for link in links:
            self.add(link, amount)

    def add_upstream_interval(self, selected: int) -> None:
        """PAAI-2 mismatch: +1 to every link in ``[l_0, l_{selected-1}]``."""
        if not 1 <= selected <= self.path_length:
            raise ConfigurationError(f"selected node {selected} out of range")
        self.add_range(range(selected))

    def reset(self) -> None:
        self._scores = [0] * self.path_length
        self._rounds = 0

    def _check_link(self, link: int) -> None:
        if not 0 <= link < self.path_length:
            raise ConfigurationError(
                f"link index {link} out of range [0, {self.path_length})"
            )
