"""Conviction: turning per-link estimates into identified malicious links.

The identify phase of every protocol is the same comparison: convict link
``l_i`` when its estimated drop rate exceeds the decision threshold. This
module also packages the outcome in a form the metrics layer consumes —
which links were convicted, and whether the verdict is a false positive /
false negative relative to a known ground truth (simulation only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set

from repro.exceptions import ConfigurationError
from repro.obs.ledger import get_ledger


@dataclass
class IdentificationResult:
    """Outcome of one identify() evaluation.

    Attributes
    ----------
    convicted:
        Links whose estimate exceeded the threshold.
    estimates:
        The per-link estimates the verdict was based on.
    rounds:
        Observation rounds backing the estimates.
    """

    convicted: Set[int]
    estimates: List[float]
    rounds: int
    thresholds: List[float] = field(default_factory=list)

    def false_positives(self, malicious_links: Sequence[int]) -> Set[int]:
        """Convicted links that are actually honest."""
        return self.convicted - set(malicious_links)

    def false_negatives(self, malicious_links: Sequence[int]) -> Set[int]:
        """Malicious links that escaped conviction."""
        return set(malicious_links) - self.convicted

    def is_exact(self, malicious_links: Sequence[int]) -> bool:
        """True when the verdict matches ground truth exactly."""
        return self.convicted == set(malicious_links)


def identify_links(
    estimates: Sequence[float],
    threshold,
    rounds: int = 0,
) -> IdentificationResult:
    """Convict every link whose estimate exceeds its threshold.

    ``threshold`` is either a scalar applied to every link or a per-link
    sequence (calibrated thresholds).

    >>> result = identify_links([0.01, 0.05, 0.008], threshold=0.02)
    >>> result.convicted
    {1}
    """
    if isinstance(threshold, (int, float)):
        thresholds = [float(threshold)] * len(estimates)
    else:
        thresholds = [float(value) for value in threshold]
        if len(thresholds) != len(estimates):
            raise ConfigurationError(
                f"got {len(thresholds)} thresholds for {len(estimates)} links"
            )
    if any(value <= 0.0 for value in thresholds):
        raise ConfigurationError("thresholds must be positive")
    convicted = {
        index
        for index, (estimate, limit) in enumerate(zip(estimates, thresholds))
        if estimate > limit
    }
    ledger = get_ledger()
    if ledger.enabled:
        ledger.record(
            "identify",
            rounds=rounds,
            estimates=[float(value) for value in estimates],
            thresholds=thresholds,
            convicted=convicted,
        )
    return IdentificationResult(
        convicted=convicted,
        estimates=list(estimates),
        rounds=rounds,
        thresholds=thresholds,
    )
