"""Per-link loss estimators induced by each scoring rule.

Two estimator families cover all protocols in the paper:

* :class:`DirectEstimator` — full-ack and PAAI-1: the onion report
  localizes every observed drop to one link, so the per-link rate is the
  plain frequency ``theta_i = s_i / n`` (§6.1 phase 5).

* :class:`DifferenceEstimator` — PAAI-2: a mismatch with selected node
  ``F_e`` adds +1 to *every* link upstream of ``F_e``. Because the
  selected index is uniform on ``{1..d}`` and independent of where drops
  occur, the adjacent score difference satisfies

      E[s_j - s_{j+1}] = (n / d) * Q_j,

  where ``Q_j`` is the probability that a round suffers a localizable drop
  on links ``l_0 .. l_j`` (with ``s_d := 0``). Hence
  ``D_j = d (s_j - s_{j+1}) / n`` estimates the cumulative drop CDF and
  its increments ``D_j - D_{j-1}`` estimate per-link rates — the
  "compute per-link loss rate based on the accumulated data" step of §6.2
  phase 5. Estimating through two nested differences is what makes
  PAAI-2's convergence slow and position-dependent, visible in
  Figure 2(c).
"""

from __future__ import annotations

from typing import List

from repro.core.scoring import ScoreBoard


class DirectEstimator:
    """``theta_i = s_i / n`` for protocols with per-link blame."""

    def __init__(self, board: ScoreBoard) -> None:
        self._board = board

    def estimates(self) -> List[float]:
        """Per-link estimated drop rates (zeros before any round)."""
        n = self._board.rounds
        if n == 0:
            return [0.0] * self._board.path_length
        return [score / n for score in self._board.scores]


class SurvivalCorrectedEstimator:
    """Censoring-aware per-link rates for blame protocols (extension).

    The direct estimator reports ``s_i / n`` — the probability that a
    round's drop was *localized at* ``l_i``. But a packet only reaches
    ``l_i`` if it survived ``l_0..l_{i-1}``, so the direct estimate
    understates the downstream links' true per-crossing rates by the
    upstream survival factor. At the paper's ρ=1% the bias is negligible;
    at the high loss rates of the Gilbert-Elliott and stress scenarios it
    is not.

    The correction is the classic sequential (Kaplan-Meier-style)
    estimator: condition each link's rate on the rounds whose drop was not
    already attributed upstream::

        theta_hat_i = s_i / (n - s_0 - s_1 - ... - s_{i-1})

    Exact when blame is a pure first-failure process (forward drops only);
    an approximation for the full bidirectional blame process, validated
    against the closed-form models in the test suite.
    """

    def __init__(self, board: ScoreBoard) -> None:
        self._board = board

    def estimates(self) -> List[float]:
        n = self._board.rounds
        if n == 0:
            return [0.0] * self._board.path_length
        estimates = []
        at_risk = float(n)
        for score in self._board.scores:
            if at_risk <= 0:
                estimates.append(0.0)
                continue
            estimates.append(score / at_risk)
            at_risk -= score
        return estimates


class DifferenceEstimator:
    """Cumulative-difference estimator for PAAI-2 interval scores."""

    def __init__(self, board: ScoreBoard) -> None:
        self._board = board

    def cumulative(self) -> List[float]:
        """``D_j = d * (s_j - s_{j+1}) / n`` for ``j = 0..d-1``."""
        n = self._board.rounds
        d = self._board.path_length
        if n == 0:
            return [0.0] * d
        scores = self._board.scores + [0]  # s_d := 0
        return [d * (scores[j] - scores[j + 1]) / n for j in range(d)]

    def estimates(self) -> List[float]:
        """Per-link rates: increments of the cumulative estimate.

        Sampling noise can make an increment negative; estimates are
        clipped at zero (a drop rate cannot be negative), which also
        stabilizes early-round conviction decisions.
        """
        cumulative = self.cumulative()
        estimates = []
        previous = 0.0
        for value in cumulative:
            estimates.append(max(0.0, value - previous))
            previous = value
        return estimates
