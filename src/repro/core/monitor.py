"""End-to-end drop-rate monitoring.

PAAI-2's phase 5 (and §5's general scoring discussion) has the source track
the end-to-end data drop rate ψ from sent packets vs. successfully
acknowledged packets, and compare it against the threshold
``psi_th = 1 - (1 - alpha)^{2d}`` from Theorem 1(b): ψ exceeding ψ_th is
the alarm that at least one link's rate exceeds α, which triggers (or
corroborates) localization.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError


class EndToEndMonitor:
    """Tracks ψ, the observed end-to-end data-packet drop rate.

    Parameters
    ----------
    psi_threshold:
        The alarm threshold ``psi_th``.
    """

    def __init__(self, psi_threshold: float) -> None:
        if not 0.0 < psi_threshold < 1.0:
            raise ConfigurationError("psi_threshold must be in (0, 1)")
        self.psi_threshold = psi_threshold
        self.sent = 0
        self.acknowledged = 0

    def record_sent(self) -> None:
        self.sent += 1

    def record_acknowledged(self) -> None:
        self.acknowledged += 1

    @property
    def psi(self) -> float:
        """Observed end-to-end drop rate (0 before any packet)."""
        if self.sent == 0:
            return 0.0
        return 1.0 - self.acknowledged / self.sent

    @property
    def alarm(self) -> bool:
        """True when ψ exceeds ψ_th — adversary presence indicated."""
        return self.psi > self.psi_threshold

    def reset(self) -> None:
        self.sent = 0
        self.acknowledged = 0
