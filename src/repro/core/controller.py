"""Closed-loop response: monitor, identify, bypass.

The Figure 3 experiments assume that "the source bypasses the identified
link" once the protocol converges (§8.2.2) — the paper performs the bypass
by fiat at the known convergence packet count. This module closes the loop
the way a deployment would: an :class:`AAIController` periodically runs
the confidence-aware identify pass and, on the first *confident*
conviction, invokes a response callback (rerouting; in simulation,
neutralizing the adversary) — no oracle knowledge of the convergence time
required.

The controller also records what a paper evaluation wants to know: when
the conviction fired (in simulation time and in packets sent) and what
verdict triggered it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.exceptions import ConfigurationError
from repro.obs.ledger import get_ledger


@dataclass
class ConvictionEvent:
    """One conviction the controller acted on."""

    time: float
    packets_sent: int
    rounds: int
    convicted: Set[int] = field(default_factory=set)


class AAIController:
    """Periodically evaluates the protocol's verdict and responds.

    Parameters
    ----------
    protocol:
        A wired :class:`~repro.protocols.base.WireProtocol`.
    on_conviction:
        Callback ``(event) -> None`` invoked once per newly-convicted link
        set; typically routes around the link / bypasses the adversary.
    check_interval:
        Simulation seconds between identify passes.
    confident:
        Use the confidence-aware verdict (default) or the point-estimate
        verdict.
    """

    def __init__(
        self,
        protocol,
        on_conviction: Callable[[ConvictionEvent], None],
        check_interval: float = 0.5,
        confident: bool = True,
    ) -> None:
        if check_interval <= 0:
            raise ConfigurationError("check_interval must be positive")
        self.protocol = protocol
        self.on_conviction = on_conviction
        self.check_interval = check_interval
        self.confident = confident
        self.events: List[ConvictionEvent] = []
        self._acted_on: Set[int] = set()
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic check on the protocol's simulator."""
        if self._running:
            raise ConfigurationError("controller already started")
        self._running = True
        self._schedule()

    def _schedule(self) -> None:
        self.protocol.simulator.schedule_in(self.check_interval, self._tick)

    def _tick(self) -> None:
        self.check_now()
        if self._running:
            self._schedule()

    def stop(self) -> None:
        self._running = False

    # -- verdict handling ------------------------------------------------------

    def check_now(self) -> Optional[ConvictionEvent]:
        """Run one identify pass; act on newly-convicted links."""
        if self.confident:
            verdict = self.protocol.confident_identify()
            convicted = set(verdict.convicted)
        else:
            convicted = set(self.protocol.identify().convicted)
        fresh = convicted - self._acted_on
        if not fresh:
            return None
        self._acted_on |= fresh
        event = ConvictionEvent(
            time=self.protocol.simulator.now,
            packets_sent=self.protocol.path.stats.data_sent,
            rounds=self.protocol.board.rounds,
            convicted=fresh,
        )
        self.events.append(event)
        ledger = get_ledger()
        if ledger.enabled:
            ledger.record(
                "controller",
                time=float(event.time),
                packets_sent=event.packets_sent,
                rounds=event.rounds,
                convicted=event.convicted,
                confident=self.confident,
            )
        self.on_conviction(event)
        return event

    @property
    def first_conviction(self) -> Optional[ConvictionEvent]:
        return self.events[0] if self.events else None

    @property
    def convicted_links(self) -> Set[int]:
        return set(self._acted_on)


def bypass_adversaries(adversaries) -> Callable[[ConvictionEvent], None]:
    """Response callback factory: neutralize the adversary strategies at
    the convicted links' upstream nodes (the simulation analog of routing
    around the identified link)."""

    def respond(event: ConvictionEvent) -> None:
        for link in event.convicted:
            strategy = adversaries.get(link)
            if strategy is not None and hasattr(strategy, "bypass"):
                strategy.bypass()

    return respond
