"""Protocol parameterization.

Collects the quantities §3/§7 of the paper parameterize the protocols by:
path length ``d``, natural per-link loss ``rho``, per-link drop-rate
threshold ``alpha = rho + epsilon``, allowed false-positive rate ``sigma``,
the PAAI-1 probe frequency ``p``, and the engineering knobs (latency bound,
probe authentication, freshness window) that the wire implementation needs.

A note on the conviction threshold: the paper convicts a link when its
estimated rate exceeds ``alpha``, while its running example makes the
malicious link's *true* rate equal ``alpha`` — under which reading the
false-negative rate would not converge to zero. Theorem 2's Hoeffding
argument (the ``8*eps**2`` factor) tests against the midpoint
``rho + eps/2``; we follow the math: ``decision_threshold`` defaults to
``(rho + alpha) / 2`` and is exposed for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constants import (
    DEFAULT_ALPHA,
    DEFAULT_MAX_LINK_LATENCY,
    DEFAULT_NATURAL_LOSS,
    DEFAULT_PACKET_SIZE,
    DEFAULT_PATH_LENGTH,
    DEFAULT_SIGMA,
)
from repro.exceptions import ConfigurationError


@dataclass
class ProtocolParams:
    """Parameters of one AAI deployment on one path.

    Attributes
    ----------
    path_length:
        ``d`` — number of links.
    natural_loss:
        ``rho`` — maximum natural per-link drop rate.
    alpha:
        Per-link drop-rate threshold; a link whose *true* rate exceeds
        ``alpha`` must be convicted (Theorem 1's accounting unit).
    sigma:
        Allowed false-positive probability for the converged condition.
    probe_frequency:
        PAAI-1's ``p``; defaults to ``1/d**2``, the paper's choice that
        yields O(1/d) amortized communication overhead.
    decision_threshold:
        Estimate level above which a link is convicted. ``None`` (default)
        lets each protocol pick its own midpoint: estimators that observe
        only forward drops (PAAI-2, statistical FL) use
        ``rho + epsilon/2``; onion-report blame counts both directions of
        a round (data forward, ack/report reverse), so those protocols
        use ``(1 - (1-rho)**2) + epsilon/2`` — which for the paper's
        rho=0.01, epsilon=0.02 comes out to alpha itself, exactly the
        paper's "convict when theta_i > alpha" rule.
    max_link_latency:
        Per-direction worst-case link latency (seconds); wait-timers and
        the freshness window derive from it.
    authenticated_probes:
        Footnote 7: attach a per-hop MAC chain to probes, making them
        O(d)-sized but unforgeable.
    data_packet_size:
        Bytes per data packet, for overhead ratios (§9 uses 1500).
    freshness_window:
        Maximum acceptable data-packet timestamp age at an intermediate
        node. Defaults to ``r0`` (the loose-synchronization requirement is
        that clock error stays below ``min(r0)``; a window of ``r0`` admits
        honest in-flight packets while expiring withheld ones).
    """

    path_length: int = DEFAULT_PATH_LENGTH
    natural_loss: float = DEFAULT_NATURAL_LOSS
    alpha: float = DEFAULT_ALPHA
    sigma: float = DEFAULT_SIGMA
    probe_frequency: Optional[float] = None
    decision_threshold: Optional[float] = None
    max_link_latency: float = DEFAULT_MAX_LINK_LATENCY
    authenticated_probes: bool = False
    data_packet_size: int = DEFAULT_PACKET_SIZE
    freshness_window: Optional[float] = None
    #: PAAI-1's delayed-sampling gap: seconds between a data packet and
    #: its probe. The paper's performance accounting implicitly assumes an
    #: immediate probe (0.0, the default); defeating the §5 withholding
    #: attack requires ``probe_delay > freshness_window >= r0/2`` — see
    #: :meth:`secure_delayed_sampling` and DESIGN.md.
    probe_delay: float = 0.0
    #: Sliding-window size (in observation rounds) for windowed scoring,
    #: or None for the paper's purely cumulative scores. Windowed scoring
    #: catches intermittent (on/off) adversaries that dilute cumulative
    #: estimates with a clean history (see repro.core.windows).
    score_window: Optional[int] = None
    #: Degraded-mode knob (docs/ROBUSTNESS.md): number of times a source
    #: re-sends a probe whose report timed out before scoring the round as
    #: lost. 0 (default) is the paper's behavior — every timeout scores
    #: immediately. Retransmission only helps when the probe itself was
    #: lost before reaching any state-holding node; nodes that already
    #: reported have released their state (§7.4 storage bounds), so a
    #: re-probe cannot regenerate a lost report.
    probe_retries: int = 0

    def __post_init__(self) -> None:
        if self.path_length <= 0:
            raise ConfigurationError("path_length must be positive")
        if not 0.0 <= self.natural_loss < 1.0:
            raise ConfigurationError("natural_loss must be in [0, 1)")
        if not self.natural_loss < self.alpha < 1.0:
            raise ConfigurationError(
                f"need natural_loss < alpha < 1 (got rho={self.natural_loss}, "
                f"alpha={self.alpha})"
            )
        if not 0.0 < self.sigma < 1.0:
            raise ConfigurationError("sigma must be in (0, 1)")
        if self.probe_frequency is None:
            self.probe_frequency = 1.0 / self.path_length ** 2
        if not 0.0 < self.probe_frequency <= 1.0:
            raise ConfigurationError("probe_frequency must be in (0, 1]")
        if self.decision_threshold is not None and self.decision_threshold <= 0:
            raise ConfigurationError("decision_threshold must be positive")
        if self.max_link_latency <= 0:
            raise ConfigurationError("max_link_latency must be positive")
        if self.freshness_window is None:
            self.freshness_window = self.r0
        if self.freshness_window <= 0:
            raise ConfigurationError("freshness_window must be positive")
        if self.probe_delay < 0:
            raise ConfigurationError("probe_delay must be non-negative")
        if self.score_window is not None and self.score_window <= 0:
            raise ConfigurationError("score_window must be positive")
        if self.probe_retries < 0:
            raise ConfigurationError("probe_retries must be non-negative")

    # -- derived quantities -------------------------------------------------

    @property
    def epsilon(self) -> float:
        """``eps = alpha - rho``."""
        return self.alpha - self.natural_loss

    @property
    def forward_midpoint_threshold(self) -> float:
        """Midpoint threshold for forward-only estimators: ``rho + eps/2``."""
        return self.natural_loss + self.epsilon / 2.0

    @property
    def round_trip_midpoint_threshold(self) -> float:
        """Midpoint threshold for bidirectional (onion-blame) estimators.

        An honest link is blamed when either its forward or its reverse
        passage drops naturally: rate ``1 - (1-rho)**2``; a malicious link
        adds up to ``eps`` on top. The midpoint is natural + ``eps/2``.
        """
        return (1.0 - (1.0 - self.natural_loss) ** 2) + self.epsilon / 2.0

    @property
    def r0(self) -> float:
        """Worst-case source round-trip time ``r_0 = 2 d L_max``."""
        return 2.0 * self.path_length * self.max_link_latency

    def rtt_bound(self, position: int) -> float:
        """Worst-case RTT ``r_i`` from node ``i`` to the destination."""
        if not 0 <= position <= self.path_length:
            raise ConfigurationError(f"position {position} off path")
        return 2.0 * (self.path_length - position) * self.max_link_latency

    @property
    def psi_threshold(self) -> float:
        """Theorem 1(b)'s end-to-end threshold ``psi_th = 1-(1-alpha)^2d``.

        The exponent ``2d`` counts both directions: a data packet and its
        ack together make ``2d`` link traversals, each of which must
        survive for the source to observe a delivery.
        """
        return 1.0 - (1.0 - self.alpha) ** (2 * self.path_length)

    def secure_delayed_sampling(self) -> "ProtocolParams":
        """Return a copy hardened against §5's withholding attack.

        A withholder releases a data packet only once the probe reveals it
        is monitored, so the packet's timestamp must have *expired* by
        then at every honest downstream node: ``probe_delay`` must exceed
        the freshness window, which in turn must admit the worst honest
        transit (``r0/2``). This configuration sets
        ``probe_delay = 0.75 r0`` and ``freshness_window = 0.55 r0``.

        The cost is storage: nodes must hold packet state for
        ``probe_delay + r0/2`` instead of ``r0/2``, i.e. about 2.5x the
        paper's PAAI-1 bound — an inconsistency in the paper's accounting
        that the reproduction surfaces (see DESIGN.md §2).
        """
        return self.replace(
            probe_delay=0.75 * self.r0,
            freshness_window=0.55 * self.r0,
        )

    def replace(self, **overrides) -> "ProtocolParams":
        """Return a copy with the given fields replaced (re-validated)."""
        fields = {
            "path_length": self.path_length,
            "natural_loss": self.natural_loss,
            "alpha": self.alpha,
            "sigma": self.sigma,
            "probe_frequency": self.probe_frequency,
            "decision_threshold": self.decision_threshold,
            "max_link_latency": self.max_link_latency,
            "authenticated_probes": self.authenticated_probes,
            "data_packet_size": self.data_packet_size,
            "freshness_window": self.freshness_window,
            "probe_delay": self.probe_delay,
            "score_window": self.score_window,
            "probe_retries": self.probe_retries,
        }
        fields.update(overrides)
        return ProtocolParams(**fields)
