"""Confidence-aware identification.

The paper's identify phase compares point estimates against thresholds,
which produces false verdicts while estimates are still noisy (the early
transient visible in Figure 2). §7 defines the *converged condition* as
the estimates being within an accuracy interval with probability 1-σ; this
module operationalizes that at the source: Hoeffding confidence intervals
around each per-link estimate, and a verdict that only speaks when the
interval clears the threshold.

This is the mechanism a deployment would actually act on — rerouting
around a link is expensive, so the source should wait until the evidence
is conclusive rather than react to a point estimate. The extension bench
measures how much later the *confident* verdict arrives than the point
verdict, and that it (empirically) never convicts an honest link.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.exceptions import ConfigurationError
from repro.obs.ledger import get_ledger


@dataclass
class ConfidentVerdict:
    """Outcome of a confidence-aware identify pass.

    Attributes
    ----------
    convicted:
        Links whose lower confidence bound exceeds the threshold —
        malicious beyond reasonable (1-σ) doubt.
    cleared:
        Links whose upper confidence bound is below the threshold —
        exonerated at the same confidence.
    undecided:
        Links whose interval still straddles the threshold.
    half_width:
        The Hoeffding interval half-width at the current round count.
    """

    convicted: Set[int]
    cleared: Set[int]
    undecided: Set[int]
    estimates: List[float]
    half_width: float
    rounds: int

    @property
    def decided(self) -> bool:
        """True once every link is either convicted or cleared."""
        return not self.undecided


def hoeffding_half_width(rounds: int, sigma: float, links: int = 1) -> float:
    """Two-sided Hoeffding interval half-width for a mean of ``rounds``
    bounded observations at family-wise confidence ``1 - sigma`` across
    ``links`` simultaneous estimates (Bonferroni union bound)."""
    if rounds <= 0:
        return float("inf")
    if not 0.0 < sigma < 1.0:
        raise ConfigurationError("sigma must be in (0, 1)")
    if links <= 0:
        raise ConfigurationError("links must be positive")
    effective = sigma / links
    return math.sqrt(math.log(2.0 / effective) / (2.0 * rounds))


def confident_identify(
    estimates: Sequence[float],
    thresholds,
    rounds: int,
    sigma: float,
    variance_scale: float = 1.0,
) -> ConfidentVerdict:
    """Convict/clear links only when the confidence interval is clear of
    the threshold.

    Parameters
    ----------
    estimates:
        Per-link point estimates.
    thresholds:
        Scalar or per-link thresholds.
    rounds:
        Observation rounds behind the estimates.
    sigma:
        Allowed family-wise error probability.
    variance_scale:
        Correction factor for estimators whose per-round observations are
        not 1-bounded Bernoulli (PAAI-2's difference estimator combines
        ``2d`` counts; callers pass ``~2d`` to widen the interval).
    """
    if variance_scale <= 0:
        raise ConfigurationError("variance_scale must be positive")
    links = len(estimates)
    if isinstance(thresholds, (int, float)):
        thresholds = [float(thresholds)] * links
    else:
        thresholds = [float(value) for value in thresholds]
        if len(thresholds) != links:
            raise ConfigurationError("threshold/estimate length mismatch")
    half_width = hoeffding_half_width(rounds, sigma, links) * math.sqrt(
        variance_scale
    )
    convicted, cleared, undecided = set(), set(), set()
    for link, (estimate, threshold) in enumerate(zip(estimates, thresholds)):
        if estimate - half_width > threshold:
            convicted.add(link)
        elif estimate + half_width < threshold:
            cleared.add(link)
        else:
            undecided.add(link)
    ledger = get_ledger()
    if ledger.enabled:
        ledger.record(
            "bound",
            rounds=rounds,
            sigma=float(sigma),
            half_width=float(half_width),
            estimates=[float(value) for value in estimates],
            thresholds=thresholds,
            convicted=convicted,
            cleared=cleared,
            undecided=undecided,
        )
    return ConfidentVerdict(
        convicted=convicted,
        cleared=cleared,
        undecided=undecided,
        estimates=list(estimates),
        half_width=half_width,
        rounds=rounds,
    )
