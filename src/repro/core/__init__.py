"""Core AAI machinery shared by all protocols.

This package holds the paper's primary conceptual contribution in reusable
form: the parameterization of an AAI deployment (§3.1/§7 notation), the
drop-score bookkeeping, the per-link loss estimators each protocol's
scoring rule induces, the end-to-end drop-rate monitor (ψ vs ψ_th), and the
conviction logic that turns estimates into identified malicious links.
"""

from repro.core.estimators import DifferenceEstimator, DirectEstimator
from repro.core.identification import IdentificationResult, identify_links
from repro.core.monitor import EndToEndMonitor
from repro.core.params import ProtocolParams
from repro.core.scoring import ScoreBoard

__all__ = [
    "ProtocolParams",
    "ScoreBoard",
    "DirectEstimator",
    "DifferenceEstimator",
    "EndToEndMonitor",
    "IdentificationResult",
    "identify_links",
]
