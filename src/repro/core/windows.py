"""Windowed scoring: catching intermittent adversaries.

The paper's scoring is cumulative ("using the history of scores ... S will
identify the adversarial presence ... within a bounded number of probes").
Cumulative estimates have a blind spot the paper does not discuss: an
adversary that behaves honestly long enough dilutes its history, then
attacks hard — the cumulative per-link estimate crosses the threshold only
after the attack mass outweighs the clean past, which an on/off attacker
can postpone indefinitely while still damaging every "on" period.

:class:`WindowedScoreBoard` keeps per-window score vectors over a sliding
window of recent observation rounds; the windowed estimate reacts to the
current behavior regardless of history. The estimator trade-off is
classic: a window of ``W`` rounds caps detection latency at ``O(W)`` but
floors the detectable rate at the noise of ``W`` samples — the window
experiment quantifies both sides.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.core.scoring import ScoreBoard
from repro.exceptions import ConfigurationError


class WindowedScoreBoard(ScoreBoard):
    """A score board that additionally tracks a sliding window.

    Drop-in replacement for :class:`~repro.core.scoring.ScoreBoard`
    (protocol agents call the same ``record_round``/``add`` API); the
    window is maintained in per-round granularity.

    Parameters
    ----------
    path_length:
        Number of links.
    window:
        Window size in observation rounds.
    """

    def __init__(self, path_length: int, window: int = 1000) -> None:
        super().__init__(path_length)
        if window <= 0:
            raise ConfigurationError("window must be positive")
        self.window = window
        #: One score vector per round still inside the window. The current
        #: (open) round is the last element.
        self._round_scores: Deque[List[int]] = deque(maxlen=window)
        self._window_totals = [0] * path_length

    # -- recording --------------------------------------------------------

    def record_round(self) -> None:
        super().record_round()
        if len(self._round_scores) == self._round_scores.maxlen:
            # The oldest round falls out of the window.
            oldest = self._round_scores[0]
            for link, value in enumerate(oldest):
                self._window_totals[link] -= value
        self._round_scores.append([0] * self.path_length)

    def add(self, link: int, amount: int = 1) -> None:
        super().add(link, amount)
        if not self._round_scores:
            # Scores before any round are attributed to an implicit round
            # (keeps the API permissive for unit tests).
            self._round_scores.append([0] * self.path_length)
        self._round_scores[-1][link] += amount
        self._window_totals[link] += amount

    def reset(self) -> None:
        super().reset()
        self._round_scores.clear()
        self._window_totals = [0] * self.path_length

    # -- windowed view ------------------------------------------------------

    @property
    def window_rounds(self) -> int:
        """Rounds currently inside the window."""
        return len(self._round_scores)

    @property
    def window_scores(self) -> List[int]:
        return list(self._window_totals)

    def window_estimates(self) -> List[float]:
        """Per-link blame frequencies over the window only."""
        rounds = self.window_rounds
        if rounds == 0:
            return [0.0] * self.path_length
        return [score / rounds for score in self._window_totals]
