"""Evaluation metrics: FP/FN confusion over time, storage occupancy,
communication accounting, and converged-condition detection."""

from repro.metrics.comm import CommunicationSummary, summarize_communication
from repro.metrics.confusion import FpFnCurve
from repro.metrics.convergence import convergence_point, first_exact_round
from repro.metrics.storage import StorageRecorder

__all__ = [
    "FpFnCurve",
    "StorageRecorder",
    "CommunicationSummary",
    "summarize_communication",
    "convergence_point",
    "first_exact_round",
]
