"""Converged-condition detection.

§7's *converged condition*: the observed drop-rate estimates are close
enough to their true values that false positives/negatives stay below the
allowed ``sigma``. Two operational views:

* population view (Figure 2 / Table 2 "bound" comparison):
  :func:`convergence_point` finds the first checkpoint where a
  :class:`~repro.metrics.confusion.FpFnCurve` has both rates ≤ sigma;
* per-run view (Table 2 "average"): :func:`first_exact_round` finds, for
  one run's conviction history, the first checkpoint from which the
  verdict is exactly the ground truth and stays that way.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.metrics.confusion import FpFnCurve


def convergence_point(curve: FpFnCurve, sigma: float) -> Optional[int]:
    """First checkpoint where FP and FN rates are (and remain) ≤ sigma."""
    if not 0.0 < sigma < 1.0:
        raise ConfigurationError("sigma must be in (0, 1)")
    return curve.convergence_packets(sigma)


def first_exact_round(
    checkpoints: Sequence[int],
    convictions: np.ndarray,
    malicious_links: Sequence[int],
) -> np.ndarray:
    """Per-run first checkpoint with a stable, exact verdict.

    Parameters
    ----------
    convictions:
        Boolean tensor ``(checkpoints, runs, links)``.

    Returns
    -------
    Array of shape ``(runs,)``: the packet count at which each run first
    reached (and kept) the exact ground-truth verdict; ``-1`` for runs
    that never converged within the horizon.
    """
    convictions = np.asarray(convictions, dtype=bool)
    if convictions.ndim != 3:
        raise ConfigurationError("convictions must be (checkpoints, runs, links)")
    n_checkpoints, runs, links = convictions.shape
    truth = np.zeros(links, dtype=bool)
    for index in malicious_links:
        truth[index] = True
    if n_checkpoints == 0:
        return np.full(runs, -1, dtype=np.int64)
    exact = (convictions == truth[None, None, :]).all(axis=2)  # (cp, runs)
    # stable_from[c] = exact at every checkpoint >= c
    stable = np.flip(np.logical_and.accumulate(np.flip(exact, axis=0), axis=0), axis=0)
    checkpoint_array = np.asarray(list(checkpoints), dtype=np.int64)
    # argmax over booleans finds the first True per run; runs with no
    # stable checkpoint (argmax = 0 on an all-False column) are masked
    # back to -1 via any().
    first_index = np.argmax(stable, axis=0)
    ever_stable = stable.any(axis=0)
    return np.where(ever_stable, checkpoint_array[first_index], np.int64(-1))
