"""Communication-overhead accounting from wire statistics.

Table 1's communication column has analytic forms
(:mod:`repro.analysis.overhead`); this module produces the matching
*measured* numbers from a finished wire simulation so experiments can show
them side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packets import PacketKind


@dataclass
class CommunicationSummary:
    """Measured communication overhead of one wire run.

    Attributes
    ----------
    data_bytes / control_bytes:
        Bytes on the wire (summed over link traversals) for data packets
        vs. protocol packets (probes and acks).
    probes / acks:
        Counts of protocol-packet traversals.
    overhead_ratio:
        control_bytes / data_bytes — §9's "additional overhead" measure.
    per_packet_units:
        Control-packet traversals per data packet sent, normalized by path
        length (so one end-to-end O(1) control packet counts ~1 unit).
    """

    data_bytes: int
    control_bytes: int
    probes: int
    acks: int
    data_sent: int
    path_length: int

    @property
    def overhead_ratio(self) -> float:
        if self.data_bytes == 0:
            return 0.0
        return self.control_bytes / self.data_bytes

    @property
    def per_packet_units(self) -> float:
        if self.data_sent == 0:
            return 0.0
        return (self.probes + self.acks) / self.data_sent / self.path_length


def summarize_communication(protocol) -> CommunicationSummary:
    """Aggregate a finished wire protocol run's link statistics."""
    path = protocol.path
    data_bytes = 0
    control_bytes = 0
    probes = 0
    acks = 0
    for link in path.links:
        for kind, size in link.stats.bytes_sent.items():
            if kind is PacketKind.DATA:
                data_bytes += size
            else:
                control_bytes += size
        for (kind, _direction), count in link.stats.transmissions.items():
            if kind is PacketKind.PROBE:
                probes += count
            elif kind is PacketKind.ACK:
                acks += count
    return CommunicationSummary(
        data_bytes=data_bytes,
        control_bytes=control_bytes,
        probes=probes,
        acks=acks,
        data_sent=path.stats.data_sent,
        path_length=path.length,
    )
