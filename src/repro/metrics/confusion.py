"""False-positive / false-negative tracking over time (Figure 2's metric).

§8.1: the paper runs each protocol 10,000 times and plots, at each point
in time (measured in packets sent), the fraction of runs that currently
exhibit a false positive (some honest link convicted) and a false negative
(the malicious link not convicted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class FpFnCurve:
    """FP/FN rates at a series of checkpoints.

    Attributes
    ----------
    checkpoints:
        Packet counts (time axis, as in Figure 2).
    fp_rates / fn_rates:
        Fraction of runs with ≥1 honest link convicted / with some
        malicious link unconvicted, at each checkpoint.
    runs:
        Number of simulation runs aggregated.
    """

    checkpoints: List[int]
    fp_rates: List[float]
    fn_rates: List[float]
    runs: int

    def __post_init__(self) -> None:
        if not (len(self.checkpoints) == len(self.fp_rates) == len(self.fn_rates)):
            raise ConfigurationError("mismatched curve lengths")

    def convergence_packets(self, sigma: float) -> Optional[int]:
        """First checkpoint where both rates are at or below ``sigma`` and
        remain there for the rest of the horizon; None if never."""
        for index in range(len(self.checkpoints)):
            tail_ok = all(
                fp <= sigma and fn <= sigma
                for fp, fn in zip(self.fp_rates[index:], self.fn_rates[index:])
            )
            if tail_ok:
                return self.checkpoints[index]
        return None

    def as_rows(self) -> List[tuple]:
        """(checkpoint, fp, fn) rows for table rendering."""
        return list(zip(self.checkpoints, self.fp_rates, self.fn_rates))


def curve_from_convictions(
    checkpoints: Sequence[int],
    convictions: np.ndarray,
    malicious_links: Sequence[int],
) -> FpFnCurve:
    """Build a curve from a boolean conviction tensor.

    Parameters
    ----------
    convictions:
        Shape ``(checkpoints, runs, links)``: whether each run had each
        link convicted at each checkpoint.
    malicious_links:
        Ground-truth malicious link indices.
    """
    convictions = np.asarray(convictions, dtype=bool)
    if convictions.ndim != 3:
        raise ConfigurationError("convictions must be (checkpoints, runs, links)")
    n_checkpoints, runs, links = convictions.shape
    if n_checkpoints != len(checkpoints):
        raise ConfigurationError("checkpoint count mismatch")
    malicious = np.zeros(links, dtype=bool)
    for index in malicious_links:
        malicious[index] = True
    fp = convictions[:, :, ~malicious].any(axis=2).mean(axis=1)
    if malicious.any():
        fn = (~convictions[:, :, malicious]).any(axis=2).mean(axis=1)
    else:
        fn = np.zeros(n_checkpoints)
    return FpFnCurve(
        checkpoints=list(checkpoints),
        fp_rates=[float(x) for x in fp],
        fn_rates=[float(x) for x in fn],
        runs=runs,
    )
