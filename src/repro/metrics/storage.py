"""Storage-occupancy recording (Figure 3's metric).

A :class:`StorageRecorder` attaches to a node's :class:`PacketStore` as
its observer and records the occupancy step function over simulated time.
The Figure 3 experiments resample it onto a regular grid to plot "packets
stored at any given time".
"""

from __future__ import annotations

from typing import List, Tuple

from repro.exceptions import ConfigurationError


class StorageRecorder:
    """Records a packet store's occupancy over time."""

    def __init__(self) -> None:
        #: (time, size) change points, in time order.
        self.events: List[Tuple[float, int]] = []

    def __call__(self, time: float, size: int) -> None:
        self.events.append((time, size))

    def attach(self, node) -> "StorageRecorder":
        """Install on a node's packet store; returns self for chaining."""
        node.store.set_observer(self)
        return self

    @property
    def peak(self) -> int:
        """Maximum observed occupancy."""
        return max((size for _, size in self.events), default=0)

    def occupancy_at(self, time: float) -> int:
        """Occupancy at an arbitrary time (step-function semantics)."""
        current = 0
        for event_time, size in self.events:
            if event_time > time:
                break
            current = size
        return current

    def resample(self, start: float, end: float, step: float) -> List[Tuple[float, int]]:
        """Occupancy sampled on a regular grid (for plotting/series)."""
        if step <= 0 or end < start:
            raise ConfigurationError("need step > 0 and end >= start")
        samples = []
        index = 0
        current = 0
        time = start
        while time <= end + 1e-12:
            while index < len(self.events) and self.events[index][0] <= time:
                current = self.events[index][1]
                index += 1
            samples.append((time, current))
            time += step
        return samples

    def mean_occupancy(self, start: float, end: float) -> float:
        """Time-averaged occupancy over ``[start, end]``."""
        if end <= start:
            raise ConfigurationError("need end > start")
        total = 0.0
        current = 0
        cursor = start
        for event_time, size in self.events:
            if event_time <= start:
                current = size  # establish the level entering the window
                continue
            if event_time >= end:
                break
            total += current * (event_time - cursor)
            cursor = event_time
            current = size
        total += current * (end - cursor)
        return total / (end - start)
