"""Canonical constants for the CoNEXT 2008 reproduction.

These are the parameter values used throughout the paper's running example
(§7.2, §8.1) and therefore the defaults across the library:

* path length ``d = 6`` hops (nodes F0=S, F1..F5, F6=D);
* natural per-link loss rate ``rho = 0.01``;
* per-link drop-rate threshold ``alpha = 0.03`` (so ``epsilon = 0.02``);
* allowed false-positive rate ``sigma = 0.03``;
* PAAI-1 probe frequency ``p = 1/d**2``;
* the malicious *node* is F4 with node drop rate 0.02, which makes the
  downstream adjacent link l4 exhibit a total drop rate of about alpha;
* per-link one-way latency is uniform in ``[0, 5]`` milliseconds in each
  direction, giving a worst-case source round-trip time of 60 ms on the
  d=6 path;
* source sending rates of 100 and 1000 data packets per second.
"""

from __future__ import annotations

#: Default path length (number of links / hops) in the paper's evaluation.
DEFAULT_PATH_LENGTH = 6

#: Default natural (benign) per-link drop rate rho.
DEFAULT_NATURAL_LOSS = 0.01

#: Default per-link drop-rate threshold alpha (= rho + epsilon).
DEFAULT_ALPHA = 0.03

#: Default accuracy parameter epsilon = alpha - rho.
DEFAULT_EPSILON = DEFAULT_ALPHA - DEFAULT_NATURAL_LOSS

#: Default allowed false-positive probability sigma.
DEFAULT_SIGMA = 0.03

#: Index of the malicious node in the paper's running example (F4).
DEFAULT_MALICIOUS_NODE = 4

#: Drop rate applied by the malicious node in the running example. Together
#: with the two adjacent natural losses this yields theta_l4 ~= alpha.
DEFAULT_MALICIOUS_NODE_DROP = 0.02

#: Maximum per-link one-way latency in seconds (paper: 0-5 ms uniform).
DEFAULT_MAX_LINK_LATENCY = 0.005

#: Source sending rates evaluated in §8 (data packets per second).
SENDING_RATE_FAST = 1000.0
SENDING_RATE_SLOW = 100.0

#: Data packet size assumed in §9 practicality numbers (bytes, 1.5 KB MTU).
DEFAULT_PACKET_SIZE = 1500

#: Digest size (bytes) for packet identifiers H(m).
IDENTIFIER_SIZE = 32

#: Truncated MAC size (bytes) used in reports; 8 bytes is ample for a
#: simulation study and keeps onion reports compact.
MAC_SIZE = 8

#: Converged-condition packet counts used by the Figure 3 experiments
#: (paper §8.2.2: full-ack, PAAI-1, PAAI-2 converge after these many
#: data packets under the running example).
CONVERGENCE_PACKETS = {
    "full-ack": 1_000,
    "paai1": 25_000,
    "paai2": 300_000,
}
