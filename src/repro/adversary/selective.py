"""Per-kind / per-direction selective dropping.

Corollary 1 states that an adversary gains nothing by dropping different
packet types at different rates: any drop increments the drop count of the
link where it happened. This strategy lets the ablation experiments verify
that claim empirically — e.g., drop only probes, only acks, or only data,
with independent rates per direction.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple, Union

from repro.adversary.base import AdversaryStrategy
from repro.exceptions import ConfigurationError
from repro.net.packets import Direction, Packet, PacketKind

RateKey = Union[PacketKind, Tuple[PacketKind, Direction]]


class SelectiveDropper(AdversaryStrategy):
    """Drop packets with kind-specific (optionally direction-specific) rates.

    Parameters
    ----------
    rates:
        Mapping from :class:`PacketKind` (applies to both directions) or
        ``(PacketKind, Direction)`` tuples to drop probabilities. Missing
        keys default to 0 (honest behavior).
    rng:
        Dedicated random stream.

    Examples
    --------
    Drop only end-to-end acks on the return path::

        SelectiveDropper({(PacketKind.ACK, Direction.REVERSE): 0.05}, rng)
    """

    def __init__(self, rates: Dict[RateKey, float], rng: random.Random) -> None:
        super().__init__()
        self._rates: Dict[Tuple[PacketKind, Direction], float] = {}
        for key, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"drop rate must be in [0, 1], got {rate}")
            if isinstance(key, PacketKind):
                for direction in Direction:
                    self._rates[(key, direction)] = rate
            else:
                kind, direction = key
                self._rates[(kind, direction)] = rate
        self._rng = rng

    def rate_for(self, kind: PacketKind, direction: Direction) -> float:
        return self._rates.get((kind, direction), 0.0)

    def process(self, node, packet: Packet, direction: Direction) -> Optional[Packet]:
        rate = self.rate_for(packet.kind, direction)
        if rate > 0.0 and self._rng.random() < rate:
            self._drop(packet, direction)
            return None
        return packet
