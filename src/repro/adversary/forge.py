"""Report alteration and ack injection.

§5 fixes the semantics: the source must interpret *any* alteration exactly
as a drop, because the crypto layer reduces a mangled report to "invalid
from some layer onward". This strategy alters instead of dropping, letting
the integration tests check the equivalence — the blamed link under a
flipping adversary must match the blamed link under a dropping adversary.

Two modes:

* ``corrupt`` — flip bytes of the report in transit (alteration);
* ``replace`` — substitute a self-made forged report (injection). Without
  the honest nodes' keys, forged layers cannot verify, so the source's
  verdict still lands on a link adjacent to the forger.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.adversary.base import AdversaryStrategy
from repro.exceptions import ConfigurationError
from repro.net.packets import AckPacket, Direction, Packet, PacketKind, clone_with_report


class ReportForger(AdversaryStrategy):
    """Alter ack reports with probability ``rate``.

    Parameters
    ----------
    rate:
        Per-ack alteration probability.
    rng:
        Dedicated random stream.
    mode:
        ``"corrupt"`` (bit-flip) or ``"replace"`` (forged substitute).
    targets:
        ``"all"`` acks, or ``"reports"`` to alter only report-carrying
        acks (leaving plain e2e acks untouched).
    """

    def __init__(
        self,
        rate: float,
        rng: random.Random,
        mode: str = "corrupt",
        targets: str = "all",
    ) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"alteration rate must be in [0, 1], got {rate}")
        if mode not in ("corrupt", "replace"):
            raise ConfigurationError(f"unknown forger mode {mode!r}")
        if targets not in ("all", "reports"):
            raise ConfigurationError(f"unknown forger targets {targets!r}")
        self.rate = rate
        self._rng = rng
        self._mode = mode
        self._targets = targets

    def process(self, node, packet: Packet, direction: Direction) -> Optional[Packet]:
        if packet.kind is not PacketKind.ACK:
            return packet
        if self._targets == "reports" and not getattr(packet, "is_report", False):
            return packet
        if self.rate == 0.0 or self._rng.random() >= self.rate:
            return packet
        assert isinstance(packet, AckPacket)
        self._alter(packet, direction)
        if self._mode == "replace" or not packet.report:
            forged = bytes(self._rng.getrandbits(8) for _ in range(max(32, len(packet.report))))
            return clone_with_report(packet, forged, origin=node.position)
        mangled = bytearray(packet.report)
        index = self._rng.randrange(len(mangled))
        mangled[index] ^= 1 + self._rng.randrange(255)
        return clone_with_report(packet, bytes(mangled), origin=packet.origin)
