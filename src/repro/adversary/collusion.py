"""Colluding multi-node adversaries.

Theorem 1: ``z`` malicious links can jointly cause an end-to-end malicious
drop rate of ``z * alpha`` without detection — each compromised link stays
just under the per-link threshold. The coordinator implements that optimal
collusion: it owns strategies on several nodes and splits a total drop
budget across them so that no single link's rate exceeds its share.

Corollary 2's network-wide statement (one malicious link per path is
optimal across paths) is exercised analytically in
:mod:`repro.analysis.bounds`; here we model collusion *within* one path.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.adversary.base import AdversaryStrategy
from repro.exceptions import ConfigurationError
from repro.net.packets import Direction, Packet


class _Member(AdversaryStrategy):
    """One colluding node's strategy; defers rate decisions to the group."""

    def __init__(self, coordinator: "CollusionCoordinator", position: int) -> None:
        super().__init__()
        self._coordinator = coordinator
        self.position = position

    def process(self, node, packet: Packet, direction: Direction) -> Optional[Packet]:
        if self._coordinator.should_drop(self.position, packet, direction):
            self._drop(packet, direction)
            return None
        return packet


class CollusionCoordinator:
    """Splits a total malicious drop budget across colluding nodes.

    Parameters
    ----------
    positions:
        Node positions under adversarial control.
    per_node_rate:
        Drop rate applied at each member (the threshold-evading choice is
        just below ``alpha`` minus the natural loss of the adjacent link).
    rng:
        Dedicated random stream.
    mode:
        ``"independent"`` — each member drops i.i.d. at ``per_node_rate``;
        ``"round-robin"`` — members take turns so each *drop event* rotates
        through the group, sharing the score growth evenly (the "share the
        drops amongst themselves" tactic of §4).
    """

    def __init__(
        self,
        positions: Sequence[int],
        per_node_rate: float,
        rng: random.Random,
        mode: str = "independent",
    ) -> None:
        if not positions:
            raise ConfigurationError("collusion requires at least one node")
        if len(set(positions)) != len(positions):
            raise ConfigurationError("duplicate positions in collusion group")
        if not 0.0 <= per_node_rate <= 1.0:
            raise ConfigurationError(
                f"per-node rate must be in [0, 1], got {per_node_rate}"
            )
        if mode not in ("independent", "round-robin"):
            raise ConfigurationError(f"unknown collusion mode {mode!r}")
        self.positions = list(positions)
        self.per_node_rate = per_node_rate
        self._rng = rng
        self._mode = mode
        self._turn = 0
        self.members: Dict[int, _Member] = {
            position: _Member(self, position) for position in self.positions
        }

    def strategy_for(self, position: int) -> AdversaryStrategy:
        """The strategy object to install at ``position``."""
        try:
            return self.members[position]
        except KeyError as exc:
            raise ConfigurationError(
                f"node {position} is not part of this collusion group"
            ) from exc

    def should_drop(self, position: int, packet: Packet, direction: Direction) -> bool:
        if self.per_node_rate == 0.0:
            return False
        if self._mode == "independent":
            return self._rng.random() < self.per_node_rate
        # Round-robin: scale the group decision so the aggregate drop rate
        # matches `per_node_rate * len(positions)`, but attribute each drop
        # to the member whose turn it is.
        group_rate = min(1.0, self.per_node_rate * len(self.positions))
        if self._rng.random() >= group_rate:
            return False
        chosen = self.positions[self._turn % len(self.positions)]
        self._turn += 1
        return chosen == position

    @property
    def total_drops(self) -> int:
        return sum(member.total_drops for member in self.members.values())

    def drops_by_position(self) -> Dict[int, int]:
        return {pos: member.total_drops for pos, member in self.members.items()}

    def bypass(self, position: Optional[int] = None) -> None:
        """Neutralize one member (or all) — models source-side rerouting."""
        if position is None:
            self.per_node_rate = 0.0
            return
        member = self.strategy_for(position)
        # Removing the member from the rotation neutralizes it.
        self.positions = [p for p in self.positions if p != position]
        if not self.positions:
            self.per_node_rate = 0.0
        member._coordinator = _NullCoordinator()


class _NullCoordinator:
    """Coordinator stub for bypassed members: never drops."""

    def should_drop(self, position, packet, direction) -> bool:
        return False
