"""Timing-based adversaries: intermittent (on/off) droppers and delayers.

Two strategies that attack the *measurement* rather than just the traffic:

* :class:`IntermittentDropper` — behaves honestly for long stretches and
  attacks in bursts. Against the paper's cumulative scoring, the clean
  history dilutes the per-link estimate below the threshold while every
  "on" period still damages throughput; the windowed scoring extension
  (:mod:`repro.core.windows`) closes this gap, and the window ablation
  quantifies the trade.

* :class:`DelayAttacker` — never drops, only *delays* packets past the
  protocol's wait-timers. §5's "alteration ≡ drop" principle extends to
  timing: a too-late ack is indistinguishable from a lost one, so the
  blame must land on the delayer's adjacent links exactly as for a
  dropper (verified in the attack tests).
"""

from __future__ import annotations

import random
from typing import Optional, Set

from repro.adversary.base import AdversaryStrategy
from repro.exceptions import ConfigurationError
from repro.net.packets import Direction, Packet, PacketKind


class IntermittentDropper(AdversaryStrategy):
    """Drops forward data/probes at ``rate``, but only during "on" bursts.

    The duty cycle is counted in *forwarded data packets*: the strategy is
    off for ``off_packets``, on for ``on_packets``, repeating.
    """

    def __init__(
        self,
        rate: float,
        off_packets: int,
        on_packets: int,
        rng: random.Random,
    ) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        if off_packets < 0 or on_packets <= 0:
            raise ConfigurationError("need off_packets >= 0, on_packets > 0")
        self.rate = rate
        self.off_packets = off_packets
        self.on_packets = on_packets
        self._rng = rng
        self._seen = 0

    @property
    def attacking(self) -> bool:
        cycle = self.off_packets + self.on_packets
        return (self._seen % cycle) >= self.off_packets

    def process(self, node, packet: Packet, direction: Direction) -> Optional[Packet]:
        if direction is not Direction.FORWARD or packet.kind not in (
            PacketKind.DATA,
            PacketKind.PROBE,
        ):
            return packet
        active = self.attacking
        if packet.kind is PacketKind.DATA:
            self._seen += 1
        if active and self.rate > 0.0 and self._rng.random() < self.rate:
            self._drop(packet, direction)
            return None
        return packet

    def bypass(self) -> None:
        self.rate = 0.0


class DelayAttacker(AdversaryStrategy):
    """Delays (never drops) forward traffic by a fixed amount.

    Implemented at egress: the packet is withheld and re-sent after
    ``delay`` seconds of simulation time. A delay exceeding the
    source/forwarder wait-timers makes the traffic useless — timers fire,
    reports regenerate, and the blame lands on the delayer's downstream
    link just as for a dropper.
    """

    def __init__(self, delay: float) -> None:
        super().__init__()
        if delay <= 0:
            raise ConfigurationError("delay must be positive")
        self.delay = delay
        self._releasing: Set[int] = set()
        #: Packets released after the hold.
        self.delayed = 0

    def process(self, node, packet: Packet, direction: Direction) -> Optional[Packet]:
        if direction is not Direction.FORWARD or packet.kind not in (
            PacketKind.DATA,
            PacketKind.PROBE,
        ):
            return packet
        marker = id(packet)
        if marker in self._releasing:
            self._releasing.discard(marker)
            return packet
        self._drop(packet, direction)  # accounted as interference
        self.delayed += 1

        def release():
            self._releasing.add(marker)
            node.send_forward(packet)

        node.set_timer(self.delay, release)
        return None
