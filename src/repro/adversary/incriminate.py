"""Footnote 6's incrimination attack.

Against a *naive* subset-acknowledgment scheme — one where the adversary
can tell which node was selected to ack — a malicious node can frame an
honest link ``l_h``: drop the ack whenever ``F_{h+1}`` is selected and
behave honestly whenever ``F_h`` is selected, creating a score difference
between ``l_{h-1}`` and ``l_h`` that convicts the honest link.

PAAI-2 defeats the attack by making selection *oblivious*: the constant-
size re-encrypted ack reveals nothing about its origin. To demonstrate
both halves of that claim, this strategy takes a ``selection_oracle``:

* oracle provided (modeling a leaky protocol): the attack works, and the
  ablation experiment shows an honest link's score inflating;
* oracle absent (PAAI-2's actual guarantee): the attacker can only guess,
  implemented here as random ack drops — which Theorem 1's accounting
  charges to the attacker's own adjacent links.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.adversary.base import AdversaryStrategy
from repro.exceptions import ConfigurationError
from repro.net.packets import Direction, Packet, PacketKind


class IncriminationAttacker(AdversaryStrategy):
    """Selective ack-dropping to frame the honest link ``l_target``.

    Parameters
    ----------
    target_link:
        Index ``h`` of the honest link to incriminate.
    selection_oracle:
        Callable mapping a packet identifier to the selected node's
        position, or None when the protocol hides the selection (PAAI-2).
    guess_rate:
        Drop probability used when no oracle is available (blind guessing).
    rng:
        Dedicated random stream.
    """

    def __init__(
        self,
        target_link: int,
        selection_oracle: Optional[Callable[[bytes], int]],
        rng: random.Random,
        guess_rate: float = 0.0,
    ) -> None:
        super().__init__()
        if target_link < 0:
            raise ConfigurationError("target link must be non-negative")
        if not 0.0 <= guess_rate <= 1.0:
            raise ConfigurationError(f"guess rate must be in [0, 1], got {guess_rate}")
        self.target_link = target_link
        self._oracle = selection_oracle
        self._guess_rate = guess_rate
        self._rng = rng

    def process(self, node, packet: Packet, direction: Direction) -> Optional[Packet]:
        if packet.kind is not PacketKind.ACK or direction is not Direction.REVERSE:
            return packet
        if self._oracle is not None:
            selected = self._oracle(packet.identifier)
            if selected == self.target_link + 1:
                self._drop(packet, direction)
                return None
            return packet
        if self._guess_rate > 0.0 and self._rng.random() < self._guess_rate:
            self._drop(packet, direction)
            return None
        return packet
