"""Adversary strategy interface.

A strategy is installed on a node (``node.adversary = strategy``) and
consulted at *egress*: the node first runs its honest protocol logic
(storing identifiers, preparing acks — matching §8.1's tactic that a
malicious node which dropped a data packet still answers the ack request
as if it had forwarded it), then the strategy decides the packet's fate on
the outgoing link.

``process`` returns:

* the packet unchanged — behave honestly;
* ``None`` — drop the packet (recorded as a deliberate drop in the path
  statistics, attributed to this node);
* a different packet — alteration/injection; §5 requires the protocols to
  treat this exactly like a drop, which the integration tests verify.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Optional

from repro.net.packets import Direction, Packet


class AdversaryStrategy(ABC):
    """Decides the fate of each packet leaving a compromised node."""

    def __init__(self) -> None:
        self.drop_log: Counter = Counter()
        self.alter_log: Counter = Counter()

    @abstractmethod
    def process(
        self, node, packet: Packet, direction: Direction
    ) -> Optional[Packet]:
        """Egress hook: return the packet to transmit, or None to drop."""

    def process_ingress(
        self, node, packet: Packet, direction: Direction
    ) -> Optional[Packet]:
        """Ingress hook: return the packet to deliver to the node's
        protocol logic, or None to swallow it *before* processing.

        Swallowing at ingress models §8.1's tactic (b): the compromised
        node pretends it never received the packet, keeping its protocol
        state intact — so a later probe still finds it responsive and the
        blame lands on its downstream adjacent link. Default: honest.
        """
        return packet

    # -- bookkeeping helpers for subclasses --------------------------------

    def _drop(self, packet: Packet, direction: Direction) -> None:
        self.drop_log[(packet.kind, direction)] += 1

    def _alter(self, packet: Packet, direction: Direction) -> None:
        self.alter_log[(packet.kind, direction)] += 1

    @property
    def total_drops(self) -> int:
        return sum(self.drop_log.values())

    @property
    def total_alterations(self) -> int:
        return sum(self.alter_log.values())


class PassThrough(AdversaryStrategy):
    """A strategy that never misbehaves (control runs / bypassed nodes)."""

    def process(self, node, packet: Packet, direction: Direction) -> Optional[Packet]:
        return packet
