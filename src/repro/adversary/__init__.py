"""Adversary models (§3.2).

The paper's adversary controls an arbitrary set of intermediate nodes
(knowing their keys), can eavesdrop anywhere, and may drop, alter, or
inject packets on links under its control — but cannot change the natural
loss rate of links. This package provides the strategies used in the
evaluation plus the specific attacks the protocol design defends against:

* :class:`~repro.adversary.uniform.UniformDropper` — drop every packet kind
  at one rate: Corollary 1's optimal strategy and the §8.1 configuration;
* :class:`~repro.adversary.selective.SelectiveDropper` — per-packet-kind
  (and per-direction) drop rates, for the Corollary 1 ablation;
* :class:`~repro.adversary.incriminate.IncriminationAttacker` — footnote
  6's selective ack-dropping attack against subset-acknowledgment schemes;
* :class:`~repro.adversary.withhold.WithholdingAttacker` — §5's
  withhold-until-probe attack, defeated by timestamp freshness;
* :class:`~repro.adversary.collusion.CollusionCoordinator` — multiple
  compromised nodes sharing a drop budget to stay under per-link
  thresholds;
* :class:`~repro.adversary.forge.ReportForger` — alters reports in transit
  (alteration must score exactly like a drop, per §5);
* :class:`~repro.adversary.paper.PaperTacticAdversary` — the §8.1
  evaluation adversary (tactics (a)+(b): forward drops at egress, ack
  swallowing at ingress, honest report handling);
* :class:`~repro.adversary.timing.IntermittentDropper` /
  :class:`~repro.adversary.timing.DelayAttacker` — on/off bursts that
  dilute cumulative scoring, and pure delay attacks (timing ≡ drop).
"""

from repro.adversary.base import AdversaryStrategy, PassThrough
from repro.adversary.collusion import CollusionCoordinator
from repro.adversary.forge import ReportForger
from repro.adversary.incriminate import IncriminationAttacker
from repro.adversary.paper import PaperTacticAdversary
from repro.adversary.selective import SelectiveDropper
from repro.adversary.timing import DelayAttacker, IntermittentDropper
from repro.adversary.uniform import UniformDropper
from repro.adversary.withhold import WithholdingAttacker

__all__ = [
    "AdversaryStrategy",
    "PassThrough",
    "UniformDropper",
    "SelectiveDropper",
    "IncriminationAttacker",
    "WithholdingAttacker",
    "CollusionCoordinator",
    "ReportForger",
    "PaperTacticAdversary",
    "IntermittentDropper",
    "DelayAttacker",
]
