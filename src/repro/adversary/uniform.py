"""The uniform dropper — the paper's evaluation adversary.

§8.1: "the adversary drops all types of packets at the same rate", which
Corollary 1 shows is as damaging as any per-type mix. Each packet leaving
the compromised node, in either direction, is dropped independently with
the configured rate.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.adversary.base import AdversaryStrategy
from repro.exceptions import ConfigurationError
from repro.net.packets import Direction, Packet


class UniformDropper(AdversaryStrategy):
    """Drop every packet with probability ``rate``, regardless of kind.

    Parameters
    ----------
    rate:
        Per-packet drop probability (the paper's running example uses 0.02
        at node F4, and 0.1 in the Figure 3(c) experiment).
    rng:
        Dedicated random stream.
    """

    def __init__(self, rate: float, rng: random.Random) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"drop rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = rng

    def process(self, node, packet: Packet, direction: Direction) -> Optional[Packet]:
        if self.rate > 0.0 and self._rng.random() < self.rate:
            self._drop(packet, direction)
            return None
        return packet

    def bypass(self) -> None:
        """Stop dropping — models the source routing around the adversary.

        The Figure 3 experiments "bypass" the identified node by resetting
        its drop rate to zero (§8.2.2), which this implements directly.
        """
        self.rate = 0.0
