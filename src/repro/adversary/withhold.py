"""§5's withhold-until-probe attack.

Under delayed sampling, a malicious node might *withhold* a data packet
until the corresponding probe arrives (or fails to arrive) to learn whether
the packet is monitored before deciding its fate: forward the packet late
when it turns out to be sampled, silently drop it otherwise.

The countermeasure is the timestamp freshness check backed by loose time
synchronization: a withheld packet's embedded timestamp has expired by the
time it is released, so downstream honest nodes discard it — the withhold
becomes indistinguishable from a drop at the adversary's own link, which is
exactly what the scoring then records. The integration tests run this
strategy against PAAI-1 and assert the adversary's adjacent link is still
the one convicted.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.adversary.base import AdversaryStrategy
from repro.net.packets import DataPacket, Direction, Packet, PacketKind


class WithholdingAttacker(AdversaryStrategy):
    """Withhold data packets; release them only when a probe reveals that
    they were sampled.

    The strategy is installed at egress, so the node has already stored the
    identifier and will answer probes "honestly" — the strongest version of
    the attack.
    """

    def __init__(self) -> None:
        super().__init__()
        self._held: Dict[bytes, DataPacket] = {}
        self._releasing: set = set()
        #: Data packets released after their probe arrived (late forwards).
        self.released = 0
        #: Data packets never released (no probe ever came: unmonitored).
        self.suppressed = 0

    def process(self, node, packet: Packet, direction: Direction) -> Optional[Packet]:
        if direction is Direction.FORWARD and packet.kind is PacketKind.DATA:
            if packet.identifier in self._releasing:
                # This is our own late release re-entering egress: let it go.
                self._releasing.discard(packet.identifier)
                return packet
            # Withhold: do not transmit now; remember for possible release.
            self._held[packet.identifier] = packet
            self._drop(packet, direction)
            return None
        if direction is Direction.FORWARD and packet.kind is PacketKind.PROBE:
            held = self._held.pop(packet.identifier, None)
            if held is not None:
                # The packet turned out to be monitored: release it (late).
                self.released += 1
                self._releasing.add(held.identifier)
                node.send_forward(held)
            return packet
        return packet

    def finalize(self) -> None:
        """Account packets never probed (call at end of simulation)."""
        self.suppressed += len(self._held)
        self._held.clear()
