"""The paper's evaluation adversary (§8.1 tactics (a) and (b)).

The malicious node drops the *throughput-relevant* traffic flowing through
it — data packets and probes at egress, end-to-end acks at ingress — each
at the same rate, while answering ack requests (probes) and handling
report acks honestly, "as if it were functioning correctly". Two details
make this the configuration under which *all* of the node's malicious
activity lands on its downstream adjacent link ``l_i``:

* forward drops (data, probes) happen at egress onto ``l_i``: the first
  node without state is ``F_{i+1}``, so onion cutoffs blame ``l_i``;
* e2e-ack drops happen at *ingress*: the node keeps its own per-packet
  state (it pretends it never saw the ack), so a later probe still finds
  it responsive — the onion stops at the popped ``F_{i+1}``, and the
  drop is charged to ``l_i`` again. Observationally this is identical to
  a natural reverse loss on ``l_i``, which is exactly how the outcome
  models account for it (the ``b_ack`` rate array).

Report acks are never touched (tactic (b)), so the blame for this node
never leaks onto its upstream link.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.adversary.base import AdversaryStrategy
from repro.exceptions import ConfigurationError
from repro.net.packets import Direction, Packet, PacketKind


class PaperTacticAdversary(AdversaryStrategy):
    """§8.1's malicious node: rate ``beta`` on data/probes (egress) and on
    e2e acks (ingress); honest on report acks."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"drop rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = rng

    def process(self, node, packet: Packet, direction: Direction) -> Optional[Packet]:
        if direction is Direction.FORWARD and packet.kind in (
            PacketKind.DATA,
            PacketKind.PROBE,
        ):
            if self.rate > 0.0 and self._rng.random() < self.rate:
                self._drop(packet, direction)
                return None
        return packet

    def process_ingress(
        self, node, packet: Packet, direction: Direction
    ) -> Optional[Packet]:
        if (
            direction is Direction.REVERSE
            and packet.kind is PacketKind.ACK
            and not getattr(packet, "is_report", False)
        ):
            if self.rate > 0.0 and self._rng.random() < self.rate:
                self._drop(packet, direction)
                return None
        return packet

    def bypass(self) -> None:
        """Stop all malicious behavior (source rerouted around the node)."""
        self.rate = 0.0
