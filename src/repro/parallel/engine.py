"""Process-pool execution engine with deterministic decomposition.

Design constraints, in order:

1. **Determinism.** Work decomposition (:func:`shard_sizes`) and seed
   derivation (:func:`shard_seed`) depend only on the workload and the
   root seed — never on the worker count — so results can be reassembled
   in decomposition order and compared byte-for-byte against a serial
   run.
2. **Serial is the degenerate case.** ``jobs=1`` runs every task
   in-process through the same code path a worker would take (no pool,
   no pickling), so the serial and parallel pipelines cannot drift.
3. **Picklable task units.** Task functions must be module-level
   callables and payloads plain data; workers are separate processes.

Worker-side telemetry: :func:`call_with_metrics` runs a task under its
own fresh :class:`~repro.obs.registry.MetricsRegistry` and returns the
snapshot alongside the result, so parents can merge worker metrics with
:meth:`MetricsRegistry.merge`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.exceptions import ConfigurationError, TaskRetryError
from repro.net.rng import RngFactory

P = TypeVar("P")
R = TypeVar("R")


def default_jobs() -> int:
    """Number of workers when the caller asks for "all cores"."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean all cores."""
    if jobs is None or jobs == 0:
        return default_jobs()
    if jobs < 0:
        raise ConfigurationError(f"jobs must be positive, got {jobs}")
    return int(jobs)


# -- deterministic decomposition -------------------------------------------


def shard_sizes(total: int, shards: int) -> List[int]:
    """Split ``total`` items into ``shards`` contiguous chunk sizes.

    Sizes are as equal as possible (the remainder spreads over the first
    shards) and depend only on ``(total, shards)`` — concatenating shard
    results in shard order therefore reproduces the unsharded ordering.
    Shards never outnumber items; with ``total == 0`` a single empty
    shard is returned.
    """
    if total < 0:
        raise ConfigurationError(f"total must be non-negative, got {total}")
    if shards <= 0:
        raise ConfigurationError(f"shards must be positive, got {shards}")
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


def shard_seed(root_seed: int, index: int, label: str = "shard") -> int:
    """Derive shard ``index``'s seed from the experiment's root seed.

    Reuses the :class:`~repro.net.rng.RngFactory` stream-derivation
    idiom (``spawn("shard-<i>")``): seeds are stable across processes and
    machines, independent per shard, and never collide with the root
    seed's own streams.
    """
    return RngFactory(root_seed).spawn(f"{label}-{index}").seed


# -- retry policy -----------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Resilience policy for task execution.

    Attributes
    ----------
    max_attempts:
        Total attempts per task (first run included). A task still
        failing after this many attempts raises
        :class:`~repro.exceptions.TaskRetryError` with the last failure
        chained.
    timeout:
        Seconds a retry *round* may take before its unfinished tasks are
        treated as failed and rescheduled. Measured from round start, so
        it covers queueing as well as execution; size it for the slowest
        expected task times the round's queue depth. ``None`` disables
        timeouts. Only enforced under a process pool — in-process (serial)
        execution cannot interrupt a running task.
    backoff:
        Base delay in seconds before the second attempt; doubles each
        further attempt (exponential backoff). ``0`` retries immediately.

    Retries are determinism-safe *for pure tasks*: a task function that
    depends only on its payload (the engine's contract) returns the same
    value on any attempt, and results are reassembled by payload index,
    so retried runs remain byte-identical to serial runs at the same
    seed.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout}")
        if self.backoff < 0:
            raise ConfigurationError(f"backoff must be non-negative, got {self.backoff}")

    def delay_before(self, attempt: int) -> float:
        """Backoff delay before ``attempt`` (1-based; first attempt is free)."""
        if attempt <= 1 or self.backoff == 0:
            return 0.0
        return self.backoff * (2.0 ** (attempt - 2))


def _failure_kind(exc: BaseException) -> str:
    if isinstance(exc, BrokenProcessPool):
        return "crash"
    if isinstance(exc, TimeoutError):
        return "timeout"
    return "error"


def _record_failure(exc: BaseException) -> None:
    from repro.obs.registry import get_registry

    registry = get_registry()
    if registry.enabled:
        registry.counter("parallel.task_failures", kind=_failure_kind(exc)).inc()


def _record_retry() -> None:
    from repro.obs.registry import get_registry

    registry = get_registry()
    if registry.enabled:
        registry.counter("parallel.task_retries").inc()


def _serial_attempts(func: Callable[[P], R], payload: P, index: int,
                     retry: RetryPolicy) -> R:
    """Run one task in-process under the retry policy (no timeout)."""
    last: Optional[BaseException] = None
    for attempt in range(1, retry.max_attempts + 1):
        if attempt > 1:
            _record_retry()
            delay = retry.delay_before(attempt)
            if delay:
                time.sleep(delay)
        try:
            return func(payload)
        except Exception as exc:
            last = exc
            _record_failure(exc)
    raise TaskRetryError(
        f"task {index} failed after {retry.max_attempts} attempts: {last!r}"
    ) from last


def _stream_round(
    func: Callable[[P], R],
    payloads: Sequence[P],
    indices: Sequence[int],
    jobs: int,
    timeout: Optional[float],
) -> Iterator[Tuple[str, int, object]]:
    """One pool attempt over ``indices``; yields ``(event, index, value)``.

    ``event`` is ``"ok"`` (value is the result) or ``"fail"`` (value is
    the exception). A fresh pool is built per round, so a pool poisoned
    by a crashed worker (``BrokenProcessPool``) never leaks into the next
    attempt. On a round timeout, unfinished futures are cancelled and the
    pool abandoned without waiting; a genuinely wedged worker process can
    therefore outlive the round (and is the reason ``timeout`` should be
    generous).
    """
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(indices)))
    try:
        futures = {pool.submit(func, payloads[i]): i for i in indices}
        pending = set(futures)
        deadline = None if timeout is None else time.monotonic() + timeout
        while pending:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            done, pending = wait(pending, timeout=remaining,
                                 return_when=FIRST_COMPLETED)
            if not done:
                # Round deadline expired with tasks still outstanding.
                for future in pending:
                    future.cancel()
                for future in pending:
                    yield ("fail", futures[future],
                           TimeoutError(f"task {futures[future]} timed out"))
                return
            for future in done:
                index = futures[future]
                try:
                    yield ("ok", index, future.result())
                except Exception as exc:
                    yield ("fail", index, exc)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _pooled_with_retry(
    func: Callable[[P], R],
    payloads: Sequence[P],
    jobs: int,
    retry: RetryPolicy,
) -> Iterator[Tuple[int, R]]:
    """Pool execution with retry rounds; yields results in completion order."""
    attempts = dict.fromkeys(range(len(payloads)), 0)
    pending = sorted(attempts)
    round_index = 0
    while pending:
        if round_index > 0:
            delay = retry.delay_before(round_index + 1)
            if delay:
                time.sleep(delay)
        for index in pending:
            attempts[index] += 1
            if attempts[index] > 1:
                _record_retry()
        still_failing: List[int] = []
        for event, index, value in _stream_round(
            func, payloads, pending, jobs, retry.timeout
        ):
            if event == "ok":
                yield index, value  # type: ignore[misc]
                continue
            exc = value  # type: BaseException
            _record_failure(exc)
            if attempts[index] >= retry.max_attempts:
                raise TaskRetryError(
                    f"task {index} failed after {attempts[index]} attempts: {exc!r}"
                ) from exc
            still_failing.append(index)
        pending = sorted(still_failing)
        round_index += 1


# -- task execution --------------------------------------------------------


def run_tasks(
    func: Callable[[P], R],
    payloads: Sequence[P],
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
) -> List[R]:
    """Run ``func`` over ``payloads``; results in payload order.

    ``jobs == 1`` executes in-process. With more jobs, payloads fan out
    over a process pool; the pool size never exceeds the payload count.

    With a :class:`RetryPolicy`, failed tasks (exceptions, crashed
    workers, round timeouts) are retried on a fresh pool up to
    ``max_attempts`` times; ``retry=None`` preserves fail-fast behavior.
    Results are keyed by payload index either way, so retries never
    perturb output ordering.
    """
    payloads = list(payloads)
    jobs = resolve_jobs(jobs)
    if retry is not None:
        if jobs == 1 or len(payloads) <= 1:
            return [
                _serial_attempts(func, payload, index, retry)
                for index, payload in enumerate(payloads)
            ]
        results = dict(_pooled_with_retry(func, payloads, jobs, retry))
        return [results[index] for index in range(len(payloads))]
    if jobs == 1 or len(payloads) <= 1:
        return [func(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        return list(pool.map(func, payloads))


def run_tasks_completed(
    func: Callable[[P], R],
    payloads: Sequence[P],
    jobs: int = 1,
    retry: Optional[RetryPolicy] = None,
) -> Iterator[Tuple[int, R]]:
    """Yield ``(payload_index, result)`` pairs in completion order.

    The streaming variant of :func:`run_tasks`, for callers that
    checkpoint or report progress as results land. Serial execution
    completes in payload order by construction. Without a retry policy,
    a failing task cancels pending tasks and the exception propagates
    after in-flight workers finish; with one, failed tasks are retried
    on a fresh pool and only a task exhausting ``max_attempts`` raises
    (:class:`~repro.exceptions.TaskRetryError`).
    """
    payloads = list(payloads)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(payloads) <= 1:
        for index, payload in enumerate(payloads):
            if retry is not None:
                yield index, _serial_attempts(func, payload, index, retry)
            else:
                yield index, func(payload)
        return
    if retry is not None:
        yield from _pooled_with_retry(func, payloads, jobs, retry)
        return
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        futures = {
            pool.submit(func, payload): index
            for index, payload in enumerate(payloads)
        }
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in done:
                    yield futures[future], future.result()
        finally:
            for future in pending:
                future.cancel()


def call_with_metrics(
    func: Callable[[], R],
    collect_metrics: bool,
) -> Tuple[R, Optional[dict]]:
    """Invoke ``func``, optionally under a fresh metrics registry.

    Returns ``(result, snapshot)``; the snapshot is ``None`` when metrics
    collection is off. The snapshot is plain JSON-serializable data, so
    workers can ship it back across the process boundary for the parent
    to fold in with :meth:`MetricsRegistry.merge`.
    """
    if not collect_metrics:
        return func(), None
    from repro.obs.registry import MetricsRegistry, using_registry

    with using_registry(MetricsRegistry()) as registry:
        result = func()
    return result, registry.snapshot()
