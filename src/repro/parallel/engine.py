"""Process-pool execution engine with deterministic decomposition.

Design constraints, in order:

1. **Determinism.** Work decomposition (:func:`shard_sizes`) and seed
   derivation (:func:`shard_seed`) depend only on the workload and the
   root seed — never on the worker count — so results can be reassembled
   in decomposition order and compared byte-for-byte against a serial
   run.
2. **Serial is the degenerate case.** ``jobs=1`` runs every task
   in-process through the same code path a worker would take (no pool,
   no pickling), so the serial and parallel pipelines cannot drift.
3. **Picklable task units.** Task functions must be module-level
   callables and payloads plain data; workers are separate processes.

Worker-side telemetry: :func:`call_with_metrics` runs a task under its
own fresh :class:`~repro.obs.registry.MetricsRegistry` and returns the
snapshot alongside the result, so parents can merge worker metrics with
:meth:`MetricsRegistry.merge`.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.exceptions import ConfigurationError
from repro.net.rng import RngFactory

P = TypeVar("P")
R = TypeVar("R")


def default_jobs() -> int:
    """Number of workers when the caller asks for "all cores"."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean all cores."""
    if jobs is None or jobs == 0:
        return default_jobs()
    if jobs < 0:
        raise ConfigurationError(f"jobs must be positive, got {jobs}")
    return int(jobs)


# -- deterministic decomposition -------------------------------------------


def shard_sizes(total: int, shards: int) -> List[int]:
    """Split ``total`` items into ``shards`` contiguous chunk sizes.

    Sizes are as equal as possible (the remainder spreads over the first
    shards) and depend only on ``(total, shards)`` — concatenating shard
    results in shard order therefore reproduces the unsharded ordering.
    Shards never outnumber items; with ``total == 0`` a single empty
    shard is returned.
    """
    if total < 0:
        raise ConfigurationError(f"total must be non-negative, got {total}")
    if shards <= 0:
        raise ConfigurationError(f"shards must be positive, got {shards}")
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


def shard_seed(root_seed: int, index: int, label: str = "shard") -> int:
    """Derive shard ``index``'s seed from the experiment's root seed.

    Reuses the :class:`~repro.net.rng.RngFactory` stream-derivation
    idiom (``spawn("shard-<i>")``): seeds are stable across processes and
    machines, independent per shard, and never collide with the root
    seed's own streams.
    """
    return RngFactory(root_seed).spawn(f"{label}-{index}").seed


# -- task execution --------------------------------------------------------


def run_tasks(
    func: Callable[[P], R],
    payloads: Sequence[P],
    jobs: int = 1,
) -> List[R]:
    """Run ``func`` over ``payloads``; results in payload order.

    ``jobs == 1`` executes in-process. With more jobs, payloads fan out
    over a process pool; the pool size never exceeds the payload count.
    """
    payloads = list(payloads)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(payloads) <= 1:
        return [func(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        return list(pool.map(func, payloads))


def run_tasks_completed(
    func: Callable[[P], R],
    payloads: Sequence[P],
    jobs: int = 1,
) -> Iterator[Tuple[int, R]]:
    """Yield ``(payload_index, result)`` pairs in completion order.

    The streaming variant of :func:`run_tasks`, for callers that
    checkpoint or report progress as results land. Serial execution
    completes in payload order by construction. If a task raises, pending
    tasks are cancelled and the exception propagates after in-flight
    workers finish.
    """
    payloads = list(payloads)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(payloads) <= 1:
        for index, payload in enumerate(payloads):
            yield index, func(payload)
        return
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        futures = {
            pool.submit(func, payload): index
            for index, payload in enumerate(payloads)
        }
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in done:
                    yield futures[future], future.result()
        finally:
            for future in pending:
                future.cancel()


def call_with_metrics(
    func: Callable[[], R],
    collect_metrics: bool,
) -> Tuple[R, Optional[dict]]:
    """Invoke ``func``, optionally under a fresh metrics registry.

    Returns ``(result, snapshot)``; the snapshot is ``None`` when metrics
    collection is off. The snapshot is plain JSON-serializable data, so
    workers can ship it back across the process boundary for the parent
    to fold in with :meth:`MetricsRegistry.merge`.
    """
    if not collect_metrics:
        return func(), None
    from repro.obs.registry import MetricsRegistry, using_registry

    with using_registry(MetricsRegistry()) as registry:
        result = func()
    return result, registry.snapshot()
