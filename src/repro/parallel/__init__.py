"""Deterministic parallel execution for experiments and Monte-Carlo runs.

The experiment harness has two embarrassingly parallel axes:

* the independent experiments of a full report
  (:func:`repro.experiments.runner.run_all` — ``report --jobs N``), and
* the independent runs of a Monte-Carlo batch
  (:class:`repro.mc.detection.DetectionExperiment`), which shard into
  per-worker chunks whose seeds derive from the root seed.

This package provides the process-pool engine behind both, built so that
**parallel output is identical to serial output at the same seed**: work
is decomposed deterministically (never by worker count), each unit owns a
derived seed, and results are reassembled in decomposition order.
See ``docs/PARALLEL.md``.
"""

from repro.parallel.engine import (
    RetryPolicy,
    call_with_metrics,
    default_jobs,
    resolve_jobs,
    run_tasks,
    run_tasks_completed,
    shard_seed,
    shard_sizes,
)

__all__ = [
    "RetryPolicy",
    "call_with_metrics",
    "default_jobs",
    "resolve_jobs",
    "run_tasks",
    "run_tasks_completed",
    "shard_seed",
    "shard_sizes",
]
