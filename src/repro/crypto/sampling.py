"""Secure sampling and oblivious node selection.

Two sampling mechanisms from the paper:

* **Secure sampling (SS), PAAI-1 §6.1.** The source decides with fixed
  probability ``p`` whether a data packet must be probed. The decision is a
  PRF of the packet identifier under a key known *only to the source*, so an
  adversary observing a packet cannot tell whether it will be probed — the
  property that makes unmonitored traffic safe to carry.

* **Selection predicates ``T_i``, PAAI-2 §6.2.** On receiving a probe with
  challenge ``Z``, node ``F_i`` computes a predicate under its own pairwise
  key that is true with probability ``1/(d-i+1)``. The *selected* node is
  the first sampled one; the telescoping product makes the selected index
  uniform on ``{1, ..., d}`` with the destination (``T_d`` true with
  probability 1) as the backstop. The source knows every pairwise key and
  can therefore recompute which node was selected; no one else can.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.crypto.prf import PRF
from repro.exceptions import ConfigurationError


class SecureSampler:
    """PAAI-1's SS algorithm: sample packets with fixed probability ``p``.

    >>> sampler = SecureSampler(key=b"k" * 16, probability=0.25)
    >>> isinstance(sampler.is_sampled(b"some-identifier"), bool)
    True
    """

    def __init__(self, key: bytes, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"sampling probability must be in [0, 1], got {probability}"
            )
        self._prf = PRF(key, label="paai1-secure-sampling")
        self._probability = probability

    @property
    def probability(self) -> float:
        """The configured probe frequency ``p``."""
        return self._probability

    def is_sampled(self, identifier: bytes) -> bool:
        """Return True iff the packet with this identifier must be probed."""
        return self._prf.bernoulli(identifier, self._probability)

    def count_sampled(self, identifiers: Sequence[bytes]) -> int:
        """Return how many of ``identifiers`` the sampler selects."""
        return sum(1 for ident in identifiers if self.is_sampled(ident))


class SelectionPredicate:
    """PAAI-2's positional predicate ``T_i`` for node ``F_i``.

    Parameters
    ----------
    key:
        The pairwise key ``K_i`` shared between the source and ``F_i``.
    position:
        The node index ``i`` (1-based; the destination is ``d``).
    path_length:
        The path length ``d``.
    """

    def __init__(self, key: bytes, position: int, path_length: int) -> None:
        if path_length <= 0:
            raise ConfigurationError("path length must be positive")
        if not 1 <= position <= path_length:
            raise ConfigurationError(
                f"position must be in [1, {path_length}], got {position}"
            )
        self._prf = PRF(key, label="paai2-selection")
        self._position = position
        self._path_length = path_length

    @property
    def probability(self) -> float:
        """Sampling probability ``1/(d - i + 1)`` for this node."""
        return 1.0 / (self._path_length - self._position + 1)

    def is_sampled(self, challenge: bytes) -> bool:
        """Evaluate ``T_i`` on the probe challenge ``Z``."""
        return self._prf.bernoulli(challenge, self.probability)


def selected_node(
    keys: Sequence[bytes], challenge: bytes, path_length: Optional[int] = None
) -> int:
    """Return the index of the node *selected* for ``challenge`` (1-based).

    Implements Definition 1: the selected node is the first sampled node.
    The source calls this with the full key list ``[K_1, ..., K_d]`` to
    recompute the selection made distributedly by the nodes. Because
    ``T_d`` fires with probability 1, a selection always exists.

    >>> keys = [bytes([i]) * 16 for i in range(1, 7)]
    >>> 1 <= selected_node(keys, b"challenge") <= 6
    True
    """
    if not keys:
        raise ConfigurationError("at least one key is required")
    d = path_length if path_length is not None else len(keys)
    if len(keys) != d:
        raise ConfigurationError(f"expected {d} keys, got {len(keys)}")
    for index, key in enumerate(keys, start=1):
        predicate = SelectionPredicate(key, position=index, path_length=d)
        if predicate.is_sampled(challenge):
            return index
    # Unreachable: T_d has probability 1. Guard against floating error.
    return d
