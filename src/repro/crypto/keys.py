"""Pairwise key management.

§3.2: the source shares a pairwise symmetric key ``K_i`` with each
intermediate node and the destination. §3.3 notes that in practice separate
keys would be derived for encryption and MAC computation; we do exactly
that, deriving role-specific subkeys from each pairwise master key with the
PRF.

The :class:`KeyManager` plays the part of the security infrastructure the
paper assumes pre-exists (e.g., installed by the routing protocol's key
exchange). Simulations create one manager per path and hand each node its
own keys; the source keeps the full table.
"""

from __future__ import annotations

from typing import Dict, List

from repro.crypto.prf import PRF
from repro.exceptions import ConfigurationError, KeyError_

#: Byte length of generated and derived keys.
KEY_SIZE = 32


def derive_key(master: bytes, role: str) -> bytes:
    """Derive a role-specific subkey from a pairwise master key.

    ``role`` is a free-form label ("mac", "enc", "sample", ...). Distinct
    roles yield computationally independent keys through PRF domain
    separation.
    """
    if not role:
        raise ConfigurationError("role label must be non-empty")
    return PRF(master, label="key-derivation").digest(role.encode())[:KEY_SIZE]


class KeyManager:
    """Key table for one monitored path.

    Parameters
    ----------
    path_length:
        Path length ``d``; pairwise keys exist for nodes ``1..d`` (the
        destination is node ``d``).
    seed:
        Deterministic seed for key generation so simulation runs are
        reproducible. Real deployments would use a key-exchange protocol;
        the derivation below stands in for it.
    """

    def __init__(self, path_length: int, seed: bytes = b"repro-key-seed") -> None:
        if path_length <= 0:
            raise ConfigurationError("path length must be positive")
        self._path_length = path_length
        root = PRF(seed, label="pairwise-keygen")
        self._masters: Dict[int, bytes] = {
            i: root.digest(i.to_bytes(4, "big"))[:KEY_SIZE]
            for i in range(1, path_length + 1)
        }
        # The source's private sampling key (PAAI-1 SS algorithm) is shared
        # with no one.
        self._source_sampling_key = root.digest(b"source-sampling")[:KEY_SIZE]

    @property
    def path_length(self) -> int:
        """Path length ``d`` this manager serves."""
        return self._path_length

    @property
    def source_sampling_key(self) -> bytes:
        """The source-only key driving PAAI-1's secure sampling."""
        return self._source_sampling_key

    def master_key(self, node: int) -> bytes:
        """Return the pairwise master key ``K_i`` for node ``i``."""
        try:
            return self._masters[node]
        except KeyError as exc:
            raise KeyError_(f"no pairwise key for node {node}") from exc

    def mac_key(self, node: int) -> bytes:
        """Return the MAC subkey for node ``i``."""
        return derive_key(self.master_key(node), "mac")

    def encryption_key(self, node: int) -> bytes:
        """Return the encryption subkey for node ``i`` (PAAI-2 layers)."""
        return derive_key(self.master_key(node), "enc")

    def selection_key(self, node: int) -> bytes:
        """Return the subkey node ``i`` uses for its ``T_i`` predicate."""
        return derive_key(self.master_key(node), "select")

    def all_mac_keys(self) -> List[bytes]:
        """MAC subkeys for nodes ``1..d`` in path order (source's view)."""
        return [self.mac_key(i) for i in range(1, self._path_length + 1)]

    def all_selection_keys(self) -> List[bytes]:
        """Selection subkeys for nodes ``1..d`` in path order."""
        return [self.selection_key(i) for i in range(1, self._path_length + 1)]
