"""Winternitz one-time signatures (WOTS), from scratch.

Footnote 1 of the paper mentions a "fairly simple AAI protocol that
employs asymmetric key cryptography", dismissed for its per-packet
computation and communication cost. To reproduce that variant without any
external crypto dependency we build signatures from the only primitive the
rest of the stack already trusts: a hash function.

WOTS signs a fixed-size digest by revealing intermediate values of hash
chains:

* private key: ``L`` random 32-byte starting points (derived from a seed);
* public key: each start hashed forward ``2^w - 1`` times;
* signature: chain values at depths given by the message digits (base
  ``2^w``) plus a checksum that prevents digit-increase forgeries;
* verification: hash each signature element forward the *remaining*
  distance and compare with the public key.

Security rests on preimage resistance: producing a signature for a digest
with any digit *smaller* than a seen one requires inverting the chain, and
the checksum digits move oppositely so some digit always shrinks. Each key
signs exactly one message — :mod:`repro.crypto.merkle` lifts this to a
many-time scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.hashing import hash_bytes
from repro.crypto.prf import PRF
from repro.exceptions import ConfigurationError

#: Digest length signed by a WOTS key (SHA-256).
DIGEST_BYTES = 32


@dataclass(frozen=True)
class WotsParams:
    """WOTS parameterization.

    ``w`` is the Winternitz log-width: digits are in ``[0, 2^w)``. Larger
    ``w`` shrinks signatures but costs exponentially more hashing —
    exactly the compute/size trade-off footnote 1 alludes to.
    """

    w: int = 4

    def __post_init__(self) -> None:
        if self.w not in (1, 2, 4, 8):
            raise ConfigurationError("w must be one of 1, 2, 4, 8")

    @property
    def base(self) -> int:
        return 1 << self.w

    @property
    def message_digits(self) -> int:
        return (DIGEST_BYTES * 8) // self.w

    @property
    def checksum_digits(self) -> int:
        max_checksum = self.message_digits * (self.base - 1)
        digits = 0
        while max_checksum > 0:
            digits += 1
            max_checksum //= self.base
        return digits

    @property
    def total_digits(self) -> int:
        return self.message_digits + self.checksum_digits

    @property
    def signature_bytes(self) -> int:
        return self.total_digits * DIGEST_BYTES


def _digits(params: WotsParams, digest: bytes) -> List[int]:
    """Message digits plus checksum digits, base ``2^w``."""
    value = int.from_bytes(digest, "big")
    digits = []
    for _ in range(params.message_digits):
        digits.append(value % params.base)
        value //= params.base
    checksum = sum(params.base - 1 - digit for digit in digits)
    for _ in range(params.checksum_digits):
        digits.append(checksum % params.base)
        checksum //= params.base
    return digits


def _chain(value: bytes, steps: int) -> bytes:
    for _ in range(steps):
        value = hash_bytes(value)
    return value


class WotsPrivateKey:
    """One-time private key; refuses to sign twice."""

    def __init__(self, seed: bytes, params: WotsParams = WotsParams()) -> None:
        self.params = params
        prf = PRF(seed, label="wots-keygen")
        self._starts: List[bytes] = [
            prf.digest(index.to_bytes(4, "big"))
            for index in range(params.total_digits)
        ]
        self._used = False

    def public_key(self) -> "WotsPublicKey":
        tops = [
            _chain(start, self.params.base - 1) for start in self._starts
        ]
        return WotsPublicKey(tops, self.params)

    def sign(self, digest: bytes) -> List[bytes]:
        """Sign a 32-byte digest; one-time use enforced."""
        if len(digest) != DIGEST_BYTES:
            raise ConfigurationError("WOTS signs exactly 32-byte digests")
        if self._used:
            raise ConfigurationError(
                "one-time key reused: this leaks enough chain values to forge"
            )
        self._used = True
        return [
            _chain(start, digit)
            for start, digit in zip(self._starts, _digits(self.params, digest))
        ]


class WotsPublicKey:
    """Verifier half of a WOTS key."""

    def __init__(self, tops: Sequence[bytes], params: WotsParams = WotsParams()) -> None:
        if len(tops) != params.total_digits:
            raise ConfigurationError(
                f"expected {params.total_digits} chain tops, got {len(tops)}"
            )
        self.params = params
        self.tops = list(tops)

    def verify(self, digest: bytes, signature: Sequence[bytes]) -> bool:
        if len(digest) != DIGEST_BYTES:
            return False
        if len(signature) != self.params.total_digits:
            return False
        for element, digit, top in zip(
            signature, _digits(self.params, digest), self.tops
        ):
            if not isinstance(element, (bytes, bytearray)) or len(element) != DIGEST_BYTES:
                return False
            if _chain(bytes(element), self.params.base - 1 - digit) != top:
                return False
        return True

    def encode(self) -> bytes:
        """Serialize (for embedding in Merkle leaves and wire messages)."""
        return b"".join(self.tops)

    @classmethod
    def decode(cls, blob: bytes, params: WotsParams = WotsParams()) -> "WotsPublicKey":
        expected = params.total_digits * DIGEST_BYTES
        if len(blob) != expected:
            raise ConfigurationError(
                f"public key blob must be {expected} bytes, got {len(blob)}"
            )
        tops = [
            blob[index : index + DIGEST_BYTES]
            for index in range(0, expected, DIGEST_BYTES)
        ]
        return cls(tops, params)
