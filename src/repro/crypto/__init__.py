"""Symmetric-key cryptographic substrate for the AAI protocols.

The paper assumes each node can compute a collision-resistant hash ``h``, a
keyed pseudorandom function ``PRF``, message authentication codes, and (for
PAAI-2) symmetric encryption. This package provides all of these, built from
first principles on top of the SHA-256 compression function exposed by
:mod:`hashlib`:

* :mod:`repro.crypto.hashing` — packet identifiers ``H(m)``;
* :mod:`repro.crypto.mac` — HMAC per RFC 2104 (implemented from the padded
  inner/outer construction, not the ``hmac`` stdlib module) and truncated
  MACs for compact reports;
* :mod:`repro.crypto.prf` — a keyed PRF with integer/fraction/predicate
  output modes;
* :mod:`repro.crypto.sampling` — PAAI-1's secure sampling (SS) algorithm and
  PAAI-2's positional predicates ``T_i``;
* :mod:`repro.crypto.cipher` — a CTR-mode stream cipher built on the PRF,
  used for PAAI-2's per-hop onion re-encryption;
* :mod:`repro.crypto.keys` — pairwise key management with separate derived
  keys for MAC and encryption;
* :mod:`repro.crypto.onion` — onion reports (§3.3) with fault localization;
* :mod:`repro.crypto.oblivious` — PAAI-2's oblivious selection/ack layer.
"""

from repro.crypto.cipher import StreamCipher
from repro.crypto.hashing import hash_bytes, packet_identifier
from repro.crypto.keys import KeyManager, derive_key
from repro.crypto.mac import hmac_sha256, mac, verify_mac
from repro.crypto.oblivious import ObliviousDecoder, ObliviousReport
from repro.crypto.onion import OnionReport, OnionVerifier
from repro.crypto.prf import PRF
from repro.crypto.sampling import SecureSampler, SelectionPredicate

__all__ = [
    "packet_identifier",
    "hash_bytes",
    "hmac_sha256",
    "mac",
    "verify_mac",
    "PRF",
    "SecureSampler",
    "SelectionPredicate",
    "StreamCipher",
    "KeyManager",
    "derive_key",
    "OnionReport",
    "OnionVerifier",
    "ObliviousReport",
    "ObliviousDecoder",
]
