"""Onion reports (§3.3) and their verification.

An onion report authenticates, hop by hop, how far along the path a packet
(or its ack) travelled. Node ``F_d`` (or whichever node originates the
report) produces ``A_d = [d || R_d]_{K_d}``; each upstream node ``F_i``
wraps what it received: ``A_i = [i || R_i || A_{i+1}]_{K_i}``, where
``[x]_K`` denotes ``x`` together with a MAC over ``x`` under ``K``.

The source verifies layers outside-in with the pairwise keys. If layers
``1..i`` verify but layer ``i+1`` is invalid or absent, the drop is located
at link ``l_i`` — the central fault-localization step of the full-ack and
PAAI-1 protocols. The security property (an adversary at ``F_z`` cannot
shift blame off its adjacent links) follows from unforgeability of the
layers it does not own, and is exercised directly in the test suite.

Wire format of one layer::

    position (2 bytes) || len(payload) (4) || len(inner) (4)
        || payload || inner || tag (MAC over everything before it)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Sequence

from repro.constants import MAC_SIZE
from repro.crypto.mac import mac, verify_mac
from repro.exceptions import ConfigurationError
from repro.obs.registry import TIME_BUCKETS, get_registry

_HEADER_SIZE = 2 + 4 + 4


class OnionReport:
    """Builder for onion report layers (node side)."""

    @staticmethod
    def originate(position: int, payload: bytes, mac_key: bytes) -> bytes:
        """Create the innermost layer ``A_k = [k || payload]_{K_k}``.

        Used by the destination in the normal case and by the deepest
        reached node when its wait-timer expires without a downstream ack.
        """
        return OnionReport._encode(position, payload, b"", mac_key)

    @staticmethod
    def wrap(position: int, payload: bytes, inner: bytes, mac_key: bytes) -> bytes:
        """Wrap a downstream report: ``A_i = [i || payload || A_{i+1}]_{K_i}``."""
        if not inner:
            raise ConfigurationError("wrap requires a non-empty inner report")
        return OnionReport._encode(position, payload, inner, mac_key)

    @staticmethod
    def _encode(position: int, payload: bytes, inner: bytes, mac_key: bytes) -> bytes:
        if not 0 <= position < 2 ** 16:
            raise ConfigurationError(f"position {position} out of range")
        header = (
            position.to_bytes(2, "big")
            + len(payload).to_bytes(4, "big")
            + len(inner).to_bytes(4, "big")
        )
        body = header + bytes(payload) + bytes(inner)
        return body + mac(mac_key, body)


@dataclass
class OnionLayer:
    """One decoded, MAC-valid layer of an onion report."""

    position: int
    payload: bytes


@dataclass
class OnionVerdict:
    """Outcome of verifying a full onion report at the source.

    Attributes
    ----------
    deepest_valid:
        Largest ``i`` such that layers ``1..i`` are all present, valid, and
        carry the expected positions. Zero when even the outermost layer
        fails.
    layers:
        The decoded valid layers, outermost first.
    blamed_link:
        The link the paper's rule localizes the fault to: ``l_i`` where
        ``i = deepest_valid`` — meaningful only when the report terminated
        early (``complete`` is False).
    complete:
        True when the innermost valid layer is a leaf (an *originating*
        layer) — i.e. the report is structurally whole rather than cut off
        by a verification failure in some deeper layer.
    """

    deepest_valid: int
    layers: List[OnionLayer] = field(default_factory=list)
    complete: bool = False

    @property
    def blamed_link(self) -> int:
        return self.deepest_valid

    def origin(self) -> Optional[int]:
        """Position of the node that originated the report, if it verified."""
        if not self.layers:
            return None
        return self.layers[-1].position


class OnionVerifier:
    """Source-side verifier holding the MAC keys of all path nodes.

    Parameters
    ----------
    mac_keys:
        MAC subkeys ``[K_1, ..., K_d]`` in path order.
    """

    def __init__(self, mac_keys: Sequence[bytes]) -> None:
        if not mac_keys:
            raise ConfigurationError("verifier needs at least one key")
        self._keys = list(mac_keys)
        registry = get_registry()
        self._obs_calls = None
        self._obs_seconds = None
        if registry.enabled:
            self._obs_calls = registry.counter("crypto.onion.verify.calls")
            self._obs_seconds = registry.histogram(
                "crypto.onion.verify.seconds", buckets=TIME_BUCKETS
            )

    @property
    def path_length(self) -> int:
        return len(self._keys)

    def verify(self, report: Optional[bytes]) -> OnionVerdict:
        """Verify ``report`` outside-in and locate the first bad layer.

        Returns an :class:`OnionVerdict`; never raises on malformed input —
        a mangled report is an expected adversarial event, reflected as a
        small ``deepest_valid``.
        """
        if self._obs_calls is None:
            return self._verify(report)
        start = perf_counter()
        verdict = self._verify(report)
        self._obs_seconds.observe(perf_counter() - start)
        self._obs_calls.inc()
        return verdict

    def _verify(self, report: Optional[bytes]) -> OnionVerdict:
        verdict = OnionVerdict(deepest_valid=0)
        remaining = report
        expected_position = 1
        while remaining:
            parsed = self._parse_layer(remaining, expected_position)
            if parsed is None:
                return verdict  # cut off by an invalid layer: incomplete
            payload, inner = parsed
            verdict.layers.append(
                OnionLayer(position=expected_position, payload=payload)
            )
            verdict.deepest_valid = expected_position
            expected_position += 1
            remaining = inner
        # Loop fell through on an empty inner blob: the innermost valid
        # layer is a true originating leaf.
        verdict.complete = bool(verdict.layers)
        return verdict

    def _parse_layer(self, blob: bytes, expected_position: int):
        """Parse and MAC-check one layer; None on any failure."""
        if expected_position > len(self._keys):
            return None
        if len(blob) < _HEADER_SIZE + MAC_SIZE:
            return None
        position = int.from_bytes(blob[0:2], "big")
        payload_len = int.from_bytes(blob[2:6], "big")
        inner_len = int.from_bytes(blob[6:10], "big")
        total = _HEADER_SIZE + payload_len + inner_len + MAC_SIZE
        if position != expected_position or len(blob) != total:
            return None
        body = blob[: _HEADER_SIZE + payload_len + inner_len]
        tag = blob[_HEADER_SIZE + payload_len + inner_len :]
        key = self._keys[expected_position - 1]
        if not verify_mac(key, body, tag):
            return None
        payload = blob[_HEADER_SIZE : _HEADER_SIZE + payload_len]
        inner = blob[_HEADER_SIZE + payload_len : _HEADER_SIZE + payload_len + inner_len]
        return payload, inner
