"""Merkle trees and a many-time hash-based signer.

Lifts the one-time WOTS scheme of :mod:`repro.crypto.wots` into a
many-time signature scheme (an XMSS-style construction, simplified):

* a signer pre-generates ``2^h`` one-time keys from a seed and publishes
  only the Merkle root over their public keys — the node's long-term
  public identity;
* signature ``i`` consists of the WOTS signature, the one-time public
  key, and the authentication path proving that key is leaf ``i``;
* a verifier checks the WOTS signature, then hashes the leaf up the
  authentication path and compares against the root.

The sizes this produces (a few KiB per signature) against the 8-byte MACs
of the symmetric protocols are the quantitative form of footnote 1's
dismissal of asymmetric AAI — measured by the sig-ack protocol and its
bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.hashing import hash_bytes
from repro.crypto.prf import PRF
from repro.crypto.wots import (
    DIGEST_BYTES,
    WotsParams,
    WotsPrivateKey,
    WotsPublicKey,
)
from repro.exceptions import ConfigurationError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _leaf_hash(data: bytes) -> bytes:
    return hash_bytes(_LEAF_PREFIX + data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hash_bytes(_NODE_PREFIX + left + right)


class MerkleTree:
    """A complete binary Merkle tree over ``2^h`` leaves."""

    def __init__(self, leaves: Sequence[bytes]) -> None:
        count = len(leaves)
        if count == 0 or count & (count - 1):
            raise ConfigurationError("leaf count must be a power of two")
        self._levels: List[List[bytes]] = [[_leaf_hash(leaf) for leaf in leaves]]
        while len(self._levels[-1]) > 1:
            below = self._levels[-1]
            self._levels.append(
                [
                    _node_hash(below[i], below[i + 1])
                    for i in range(0, len(below), 2)
                ]
            )

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def height(self) -> int:
        return len(self._levels) - 1

    def auth_path(self, index: int) -> List[bytes]:
        """Sibling hashes from leaf ``index`` up to (not including) the root."""
        if not 0 <= index < len(self._levels[0]):
            raise ConfigurationError(f"leaf index {index} out of range")
        path = []
        for level in self._levels[:-1]:
            path.append(level[index ^ 1])
            index //= 2
        return path

    @staticmethod
    def verify_path(
        leaf: bytes, index: int, path: Sequence[bytes], root: bytes
    ) -> bool:
        node = _leaf_hash(leaf)
        for sibling in path:
            if not isinstance(sibling, (bytes, bytearray)) or len(sibling) != DIGEST_BYTES:
                return False
            if index % 2 == 0:
                node = _node_hash(node, bytes(sibling))
            else:
                node = _node_hash(bytes(sibling), node)
            index //= 2
        return index == 0 and node == root


@dataclass
class MerkleSignature:
    """One many-time signature: WOTS sig + its public key + Merkle proof."""

    index: int
    wots_signature: List[bytes]
    wots_public: bytes  # encoded WotsPublicKey
    auth_path: List[bytes]

    @property
    def size_bytes(self) -> int:
        """Wire size: what the sig-ack protocol pays per report layer."""
        return (
            4
            + sum(len(element) for element in self.wots_signature)
            + len(self.wots_public)
            + sum(len(node) for node in self.auth_path)
        )


class MerkleSigner:
    """A node's many-time signing identity.

    Parameters
    ----------
    seed:
        Secret seed; all one-time keys derive from it.
    height:
        Tree height ``h``: the signer can produce ``2^h`` signatures
        before :meth:`exhausted` (the AAI protocol regenerates a new pool
        and re-registers the root — a real operational cost this
        reproduction surfaces in its overhead accounting).
    """

    def __init__(
        self, seed: bytes, height: int = 6, params: WotsParams = WotsParams()
    ) -> None:
        if not 1 <= height <= 16:
            raise ConfigurationError("height must be in [1, 16]")
        self.params = params
        self.height = height
        count = 1 << height
        prf = PRF(seed, label="merkle-keygen")
        self._privates = [
            WotsPrivateKey(prf.digest(index.to_bytes(4, "big")), params)
            for index in range(count)
        ]
        self._publics = [private.public_key() for private in self._privates]
        self._tree = MerkleTree([public.encode() for public in self._publics])
        self._next = 0

    @property
    def public_root(self) -> bytes:
        """The long-term public key to register with verifiers."""
        return self._tree.root

    @property
    def remaining(self) -> int:
        return (1 << self.height) - self._next

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0

    def sign(self, message: bytes) -> MerkleSignature:
        """Sign an arbitrary message (hashed internally)."""
        if self.exhausted:
            raise ConfigurationError(
                "key pool exhausted: generate a new signer and re-register"
            )
        index = self._next
        self._next += 1
        digest = hash_bytes(message)
        return MerkleSignature(
            index=index,
            wots_signature=self._privates[index].sign(digest),
            wots_public=self._publics[index].encode(),
            auth_path=self._tree.auth_path(index),
        )


def encode_signature(signature: MerkleSignature) -> bytes:
    """Serialize a signature for the wire.

    Layout: index(4) || path_len(1) || wots_sig || wots_pub || auth_path,
    with all hash elements 32 bytes.
    """
    return (
        signature.index.to_bytes(4, "big")
        + len(signature.auth_path).to_bytes(1, "big")
        + b"".join(signature.wots_signature)
        + signature.wots_public
        + b"".join(signature.auth_path)
    )


def decode_signature(
    blob: bytes, params: WotsParams = WotsParams()
) -> MerkleSignature:
    """Inverse of :func:`encode_signature`.

    Raises :class:`ConfigurationError` on structural mismatch (the AAI
    layer treats that as an invalid signature).
    """
    if len(blob) < 5:
        raise ConfigurationError("signature blob too short")
    index = int.from_bytes(blob[:4], "big")
    path_len = blob[4]
    sig_elements = params.total_digits
    expected = 5 + (2 * sig_elements + path_len) * DIGEST_BYTES
    if len(blob) != expected:
        raise ConfigurationError(
            f"signature blob must be {expected} bytes, got {len(blob)}"
        )
    cursor = 5
    wots_signature = []
    for _ in range(sig_elements):
        wots_signature.append(blob[cursor : cursor + DIGEST_BYTES])
        cursor += DIGEST_BYTES
    wots_public = blob[cursor : cursor + sig_elements * DIGEST_BYTES]
    cursor += sig_elements * DIGEST_BYTES
    auth_path = []
    for _ in range(path_len):
        auth_path.append(blob[cursor : cursor + DIGEST_BYTES])
        cursor += DIGEST_BYTES
    return MerkleSignature(
        index=index,
        wots_signature=wots_signature,
        wots_public=wots_public,
        auth_path=auth_path,
    )


class MerkleVerifier:
    """Verifies signatures against a registered root."""

    def __init__(self, root: bytes, params: WotsParams = WotsParams()) -> None:
        if len(root) != DIGEST_BYTES:
            raise ConfigurationError("root must be a 32-byte digest")
        self.root = root
        self.params = params

    def verify(self, message: bytes, signature: MerkleSignature) -> bool:
        try:
            public = WotsPublicKey.decode(signature.wots_public, self.params)
        except ConfigurationError:
            return False
        if not public.verify(hash_bytes(message), signature.wots_signature):
            return False
        return MerkleTree.verify_path(
            signature.wots_public, signature.index, signature.auth_path, self.root
        )
