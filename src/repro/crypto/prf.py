"""Keyed pseudorandom function.

The AAI protocols use a PRF for three purposes:

* PAAI-1's secure sampling algorithm — map a packet identifier to a Yes/No
  decision that fires with a fixed probability ``p`` and is unpredictable
  without the sampling key (§6.1 phase 1);
* PAAI-2's positional predicates ``T_i`` — map a probe challenge ``Z`` to a
  true/false decision that fires with probability ``1/(d-i+1)`` (§6.2
  phase 2);
* keystream generation for the CTR cipher in :mod:`repro.crypto.cipher`.

All three reduce to "derive a uniformly distributed value from (key,
input)". We realize the PRF as HMAC-SHA256 with domain-separation labels and
expose integer, fraction and Bernoulli output modes.
"""

from __future__ import annotations

import hashlib

from repro.crypto.mac import hmac_sha256
from repro.obs.registry import get_registry

_HMAC_BLOCK = 64  # SHA-256 block size in bytes.


class PRF:
    """A keyed PRF with convenience output modes.

    Parameters
    ----------
    key:
        Secret PRF key.
    label:
        Domain-separation label. Two PRFs with the same key but different
        labels produce independent-looking outputs, which is how a single
        pairwise key safely serves multiple protocol roles.
    """

    #: Number of bytes of PRF output used to build fractions; 8 bytes gives
    #: 64 bits of precision, far more than the probabilities involved need.
    _FRACTION_BYTES = 8

    def __init__(self, key: bytes, label: str = "") -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("PRF key must be bytes")
        self._key = bytes(key)
        self._prefix = label.encode() + b"\x00"
        registry = get_registry()
        self._obs_calls = (
            registry.counter("crypto.prf.calls", label=label or "(unlabeled)")
            if registry.enabled
            else None
        )

    def digest(self, data: bytes) -> bytes:
        """Return the raw 32-byte PRF output on ``data``."""
        if self._obs_calls is not None:
            self._obs_calls.inc()
        return hmac_sha256(self._key, self._prefix + bytes(data))

    def integer(self, data: bytes, modulus: int) -> int:
        """Return a PRF-derived integer in ``[0, modulus)``.

        Uses 16 bytes of output so modulo bias is negligible for any modulus
        the protocols use (moduli are at most path lengths or counters).
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        value = int.from_bytes(self.digest(data)[:16], "big")
        return value % modulus

    def fraction(self, data: bytes) -> float:
        """Return a PRF-derived float uniform in ``[0, 1)``."""
        value = int.from_bytes(self.digest(data)[: self._FRACTION_BYTES], "big")
        return value / float(1 << (8 * self._FRACTION_BYTES))

    def bernoulli(self, data: bytes, probability: float) -> bool:
        """Return True with the given probability, deterministically in ``data``.

        This is the core of both the secure sampling algorithm and the
        ``T_i`` predicates: the decision is a pure function of (key, data),
        so the keyholder can recompute it, while to anyone else it is
        indistinguishable from an independent coin flip.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self.fraction(data) < probability

    def hot(self) -> "HotPRF":
        """Return a :class:`HotPRF` producing identical outputs."""
        return HotPRF(self._key, self._prefix)

    def keystream(self, nonce: bytes, length: int) -> bytes:
        """Return ``length`` pseudorandom bytes bound to ``nonce``.

        CTR construction: block ``i`` is ``PRF(nonce || i)``. Used by
        :class:`repro.crypto.cipher.StreamCipher`.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        blocks = []
        produced = 0
        counter = 0
        while produced < length:
            block = self.digest(bytes(nonce) + counter.to_bytes(8, "big"))
            blocks.append(block)
            produced += len(block)
            counter += 1
        return b"".join(blocks)[:length]


class HotPRF:
    """Hot-loop evaluator producing bit-identical :class:`PRF` outputs.

    ``repro.crypto.mac`` builds HMAC-SHA256 from scratch per call (pure
    Python key padding and XOR), which dominates profiles when a PRF is
    evaluated per packet — e.g. statfl's per-node sketch coins or
    PAAI-1's secure sampling in the fast-path replay. The RFC 2104
    construction keys both hash passes with data that depends only on
    the key (and here also the domain-separation prefix), so this class
    precomputes the inner/outer digest states once and pays two C-level
    ``copy()``/``update()`` rounds per evaluation. Equality with
    :meth:`PRF.fraction`/:meth:`PRF.bernoulli` is pinned by the test
    suite.

    Deliberately *not* instrumented: the ``crypto.prf.calls`` counter
    exists to audit protocol-level PRF usage on the event engine; batch
    consumers account for their own work.
    """

    __slots__ = ("_inner", "_outer")

    #: ``float(2**64)`` — exact (power of two), matching ``PRF.fraction``'s
    #: divisor for 8 fraction bytes.
    _SCALE = float(1 << 64)

    def __init__(self, key: bytes, prefix: bytes = b"") -> None:
        key = bytes(key)
        if len(key) > _HMAC_BLOCK:
            key = hashlib.sha256(key).digest()
        key = key.ljust(_HMAC_BLOCK, b"\x00")
        self._inner = hashlib.sha256(
            bytes(byte ^ 0x36 for byte in key) + prefix
        )
        self._outer = hashlib.sha256(bytes(byte ^ 0x5C for byte in key))

    def digest(self, data: bytes) -> bytes:
        """Raw 32-byte output, equal to ``PRF.digest`` for the same
        key/label (the prefix passed at construction must be
        ``label.encode() + b"\\x00"``, as :meth:`PRF.hot` arranges)."""
        inner = self._inner.copy()
        inner.update(data)
        outer = self._outer.copy()
        outer.update(inner.digest())
        return outer.digest()

    def fraction(self, data: bytes) -> float:
        """Uniform-in-[0, 1) float, equal to :meth:`PRF.fraction`."""
        value = int.from_bytes(self.digest(data)[:8], "big")
        return value / self._SCALE

    def bernoulli(self, data: bytes, probability: float) -> bool:
        """Deterministic coin, equal to :meth:`PRF.bernoulli`.

        Inlined digest+fraction: this is the per-packet operation hot
        loops call, so it keeps to a single Python frame.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        inner = self._inner.copy()
        inner.update(data)
        outer = self._outer.copy()
        outer.update(inner.digest())
        value = int.from_bytes(outer.digest()[:8], "big")
        return value / self._SCALE < probability
