"""PAAI-2's oblivious selection-and-acknowledgment layer (§6.2).

The acknowledgment traveling back toward the source must not reveal *where*
it originated: if an adversary could tell which node was selected, it could
selectively drop acks from honest nodes to incriminate honest links
(footnote 6). PAAI-2 therefore keeps the ack at a constant size and has
every node transform it under its own key:

* a node that originates a report produces
  ``A_i = E_{K_i}([i || c || a_d]_{K_i})`` — an authenticated report,
  encrypted under its pairwise key;
* every other node *re-encrypts* what it received:
  ``A_i = E_{K_i}(A_{i+1})``.

Because the stream cipher uses a fresh nonce per hop, each hop's output is
indistinguishable from random regardless of whether the node overwrote or
merely re-encrypted — the obliviousness property, checked by a statistical
test in the test suite.

The source, knowing every key, strips layers ``K_1..K_e`` (where ``F_e`` is
the node it knows to be *selected* for this challenge) and accepts the probe
round iff the result parses as ``F_e``'s authenticated report for the right
challenge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.constants import MAC_SIZE
from repro.crypto.cipher import StreamCipher
from repro.crypto.mac import mac, verify_mac
from repro.exceptions import ConfigurationError, DecryptionError

#: Flag byte marking whether the report carries a destination ack.
_HAS_ACK = b"\x01"
_NO_ACK = b"\x00"

_HEADER_SIZE = 2 + 4 + 4 + 1


class ObliviousReport:
    """Node-side construction of PAAI-2 reports."""

    @staticmethod
    def originate(
        position: int,
        challenge: bytes,
        dest_ack: Optional[bytes],
        mac_key: bytes,
        enc_key: bytes,
        rng=None,
    ) -> bytes:
        """Build ``E_{K_i}([i || c || a_d]_{K_i})``.

        ``dest_ack`` is the copy of the destination's end-to-end ack stored
        during phase 1, or None for the paper's ``a_d = ⊥``.
        """
        if not 0 <= position < 2 ** 16:
            raise ConfigurationError(f"position {position} out of range")
        ack = b"" if dest_ack is None else bytes(dest_ack)
        flag = _NO_ACK if dest_ack is None else _HAS_ACK
        body = (
            position.to_bytes(2, "big")
            + len(challenge).to_bytes(4, "big")
            + len(ack).to_bytes(4, "big")
            + flag
            + bytes(challenge)
            + ack
        )
        inner = body + mac(mac_key, body)
        return StreamCipher(enc_key, rng=rng).encrypt(inner)

    @staticmethod
    def reencrypt(report: bytes, enc_key: bytes, rng=None) -> bytes:
        """Re-encrypt a downstream report: ``A_i = E_{K_i}(A_{i+1})``."""
        return StreamCipher(enc_key, rng=rng).encrypt(report)


@dataclass
class DecodedReport:
    """Source-side decode outcome for one PAAI-2 probe round.

    ``matches`` is the paper's phase-4 test: the decoded value is the
    selected node's authenticated report for this challenge. The remaining
    fields are populated only on a match.
    """

    matches: bool
    position: Optional[int] = None
    has_dest_ack: bool = False
    dest_ack: Optional[bytes] = None


class ObliviousDecoder:
    """Source-side decoder holding all per-node keys.

    Parameters
    ----------
    enc_keys, mac_keys:
        Encryption and MAC subkeys for nodes ``1..d`` in path order.
    """

    def __init__(self, enc_keys: Sequence[bytes], mac_keys: Sequence[bytes]) -> None:
        if len(enc_keys) != len(mac_keys) or not enc_keys:
            raise ConfigurationError("need matching non-empty key lists")
        self._enc_keys = list(enc_keys)
        self._mac_keys = list(mac_keys)

    def decode(
        self, report: Optional[bytes], selected: int, challenge: bytes
    ) -> DecodedReport:
        """Strip layers ``1..selected`` and check the inner report.

        Never raises on adversarial input: any failure to decode or verify
        is the protocol-level *mismatch* outcome.
        """
        if not 1 <= selected <= len(self._enc_keys):
            raise ConfigurationError(f"selected index {selected} out of range")
        if not report:
            return DecodedReport(matches=False)
        blob = report
        for index in range(1, selected + 1):
            try:
                blob = StreamCipher(self._enc_keys[index - 1]).decrypt(blob)
            except DecryptionError:
                return DecodedReport(matches=False)
        return self._parse_inner(blob, selected, challenge)

    def _parse_inner(
        self, blob: bytes, selected: int, challenge: bytes
    ) -> DecodedReport:
        if len(blob) < _HEADER_SIZE + MAC_SIZE:
            return DecodedReport(matches=False)
        position = int.from_bytes(blob[0:2], "big")
        challenge_len = int.from_bytes(blob[2:6], "big")
        ack_len = int.from_bytes(blob[6:10], "big")
        flag = blob[10:11]
        total = _HEADER_SIZE + challenge_len + ack_len + MAC_SIZE
        if len(blob) != total or position != selected:
            return DecodedReport(matches=False)
        body = blob[: _HEADER_SIZE + challenge_len + ack_len]
        tag = blob[len(body) :]
        if not verify_mac(self._mac_keys[selected - 1], body, tag):
            return DecodedReport(matches=False)
        embedded = blob[_HEADER_SIZE : _HEADER_SIZE + challenge_len]
        if embedded != bytes(challenge):
            return DecodedReport(matches=False)
        ack = blob[_HEADER_SIZE + challenge_len : _HEADER_SIZE + challenge_len + ack_len]
        has_ack = flag == _HAS_ACK and ack_len > 0
        return DecodedReport(
            matches=True,
            position=position,
            has_dest_ack=has_ack,
            dest_ack=ack if has_ack else None,
        )
