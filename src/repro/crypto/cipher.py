"""CTR-mode stream cipher built on the PRF.

PAAI-2 requires each node to *encrypt* (or re-encrypt) the report embedded
in an ack so that the identity of the selected node stays hidden from
traffic analysis (§6.2 phase 3). We build ``E_K(.)`` as a classic
counter-mode stream cipher over the PRF of :mod:`repro.crypto.prf`:

    ciphertext = nonce || (plaintext XOR PRF_K.keystream(nonce))

A fresh random nonce per encryption makes re-encryptions of the same
plaintext look unrelated on the wire — exactly the obliviousness PAAI-2
needs. Note the cipher provides confidentiality only; authenticity comes
from the MAC inside the innermost report, which is the paper's arrangement.
"""

from __future__ import annotations

import os

from repro.crypto.prf import PRF
from repro.exceptions import DecryptionError

#: Nonce length in bytes. 16 bytes keeps collision probability negligible
#: over any simulation run.
NONCE_SIZE = 16


class StreamCipher:
    """Symmetric encryption ``E_K`` used for PAAI-2 onion layers.

    Parameters
    ----------
    key:
        Encryption key (callers should pass a key derived for the
        encryption role; see :func:`repro.crypto.keys.derive_key`).
    rng:
        Optional callable ``rng(n) -> bytes`` producing nonces. Defaults to
        :func:`os.urandom`; simulations inject a deterministic source so
        runs are reproducible.
    """

    def __init__(self, key: bytes, rng=None) -> None:
        self._prf = PRF(key, label="stream-cipher")
        # Deliberate exception: the *default* entropy source is ambient
        # (real deployments want unpredictable nonces); simulations always
        # inject RngFactory.nonce_source.
        self._rng = rng if rng is not None else os.urandom  # repro: allow(DET004)

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext``; returns ``nonce || ciphertext``."""
        nonce = self._rng(NONCE_SIZE)
        if len(nonce) != NONCE_SIZE:
            raise ValueError(f"nonce source returned {len(nonce)} bytes")
        keystream = self._prf.keystream(nonce, len(plaintext))
        body = bytes(p ^ k for p, k in zip(plaintext, keystream))
        return nonce + body

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt`.

        Raises
        ------
        DecryptionError
            If the ciphertext is too short to contain a nonce. Any other
            corruption yields garbage plaintext by design (CTR mode is not
            authenticated); the protocol detects that via the inner MAC.
        """
        if len(ciphertext) < NONCE_SIZE:
            raise DecryptionError(
                f"ciphertext shorter than nonce ({len(ciphertext)} bytes)"
            )
        nonce, body = ciphertext[:NONCE_SIZE], ciphertext[NONCE_SIZE:]
        keystream = self._prf.keystream(nonce, len(body))
        return bytes(c ^ k for c, k in zip(body, keystream))
