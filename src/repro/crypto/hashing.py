"""Collision-resistant hashing and packet identifiers.

The paper uses ``H(m)``, the hash of a data packet ``m``, as the packet
identifier carried by probes and acks. We use SHA-256: 32-byte identifiers
make accidental collisions irrelevant at simulation scale and the identifier
doubles as a compact dictionary key inside node packet stores.
"""

from __future__ import annotations

import hashlib


def hash_bytes(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data``.

    This is the collision-resistant hash function ``h`` of §3.2.

    >>> len(hash_bytes(b"packet"))
    32
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"hash input must be bytes, got {type(data).__name__}")
    return hashlib.sha256(bytes(data)).digest()


def packet_identifier(payload: bytes, timestamp: float) -> bytes:
    """Return the identifier ``H(m)`` for a data packet.

    A data packet in the paper is ``m = <data || timestamp>``; both parts
    feed the identifier so a replayed payload with a fresh timestamp maps to
    a new identifier. The timestamp is encoded with fixed width so the
    encoding is injective.

    Parameters
    ----------
    payload:
        The application payload carried by the packet.
    timestamp:
        The source timestamp embedded in the packet (seconds).
    """
    encoded_time = repr(float(timestamp)).encode("ascii")
    # Length-prefix the payload so (payload, timestamp) parsing is unique.
    header = len(payload).to_bytes(8, "big")
    return hash_bytes(header + bytes(payload) + encoded_time)


def truncate(digest: bytes, size: int) -> bytes:
    """Truncate ``digest`` to ``size`` bytes (for compact wire formats)."""
    if size <= 0 or size > len(digest):
        raise ValueError(f"invalid truncation size {size} for {len(digest)}-byte digest")
    return digest[:size]
