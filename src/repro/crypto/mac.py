"""Message authentication codes.

Implements HMAC-SHA256 from the RFC 2104 construction::

    HMAC(K, m) = H((K' xor opad) || H((K' xor ipad) || m))

rather than delegating to the :mod:`hmac` stdlib module, since the paper's
protocols are specified directly in terms of a MAC primitive and the
reproduction builds its substrates from scratch. The implementation is
validated against the RFC 4231 test vectors in the test suite.

``[m]_K`` in the paper denotes ``m`` together with a MAC over ``m`` under
``K``; the :func:`mac` / :func:`verify_mac` pair provides the truncated MAC
used inside onion reports.
"""

from __future__ import annotations

import hashlib
from time import perf_counter

from repro.constants import MAC_SIZE
from repro.obs.registry import TIME_BUCKETS, get_registry

_BLOCK_SIZE = 64  # SHA-256 block size in bytes.
_IPAD = bytes(0x36 for _ in range(_BLOCK_SIZE))
_OPAD = bytes(0x5C for _ in range(_BLOCK_SIZE))

#: (registry, calls counter, seconds histogram) — rebound when the active
#: registry changes so instruments always land in the current one.
_OBS_CACHE = (None, None, None)


def _obs_instruments(registry):
    global _OBS_CACHE
    cached, calls, seconds = _OBS_CACHE
    if cached is not registry:
        calls = registry.counter("crypto.hmac.calls")
        seconds = registry.histogram("crypto.hmac.seconds", buckets=TIME_BUCKETS)
        _OBS_CACHE = (registry, calls, seconds)
    return calls, seconds


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _hmac_sha256(key: bytes, message: bytes) -> bytes:
    if not isinstance(key, (bytes, bytearray)):
        raise TypeError("key must be bytes")
    if not isinstance(message, (bytes, bytearray)):
        raise TypeError("message must be bytes")
    key = bytes(key)
    if len(key) > _BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    inner = hashlib.sha256(_xor_bytes(key, _IPAD) + bytes(message)).digest()
    return hashlib.sha256(_xor_bytes(key, _OPAD) + inner).digest()


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Return the full 32-byte HMAC-SHA256 of ``message`` under ``key``."""
    registry = get_registry()
    if not registry.enabled:
        return _hmac_sha256(key, message)
    calls, seconds = _obs_instruments(registry)
    start = perf_counter()
    digest = _hmac_sha256(key, message)
    seconds.observe(perf_counter() - start)
    calls.inc()
    return digest


def mac(key: bytes, message: bytes, size: int = MAC_SIZE) -> bytes:
    """Return a ``size``-byte MAC tag over ``message``.

    Truncation of HMAC output is the standard way to trade tag size against
    forgery probability (2^-64 for the default 8-byte tags — far below the
    false-positive rates the protocols tolerate).
    """
    if size <= 0 or size > 32:
        raise ValueError(f"MAC size must be in [1, 32], got {size}")
    return hmac_sha256(key, message)[:size]


def verify_mac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Check ``tag`` against the MAC of ``message`` under ``key``.

    Comparison is constant-time in the tag length to mirror real
    implementations (irrelevant for simulation results, cheap to do right).
    """
    if not tag:
        return False
    expected = mac(key, message, size=len(tag))
    if len(expected) != len(tag):
        return False
    result = 0
    for x, y in zip(expected, tag):
        result |= x ^ y
    return result == 0
