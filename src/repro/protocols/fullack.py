"""The full-ack strawman protocol (§4).

Every data packet must be acknowledged end-to-end; every missing ack
triggers an onion-report probe that localizes the loss to a single link.
Best possible detection rate, O(1 + ψd) communication overhead per packet
— the baseline whose overhead PAAI-1 trades away.

Round semantics as implemented (and mirrored by the fast outcome model):

* e2e ack received in time → round observed, no blame;
* no ack → probe; the onion report comes back with effective depth ``i``:
  ``i = d`` means the data reached D (only the ack was lost) → no blame;
  ``i < d`` blames link ``l_i``;
* no report at all within the wait-time → blame ``l_0`` (footnote 8).
"""

from __future__ import annotations

from typing import List

from repro.core.estimators import DirectEstimator
from repro.core.monitor import EndToEndMonitor
from repro.crypto.mac import verify_mac
from repro.crypto.onion import OnionVerifier
from repro.net.packets import AckPacket, DataPacket, Direction, Packet
from repro.protocols.base import (
    SourceAgent,
    WireProtocol,
    is_e2e_ack,
    is_report_ack,
)
from repro.protocols.onion_common import (
    OnionDestination,
    OnionForwarder,
    build_probe,
    effective_onion_depth,
)


class FullAckSource(SourceAgent):
    """Source agent for the full-ack protocol."""

    def __init__(self, protocol: "FullAckProtocol") -> None:
        super().__init__(protocol)
        self.verifier = OnionVerifier(self.keys.all_mac_keys())
        self.monitor = EndToEndMonitor(self.params.psi_threshold)
        self._estimator = DirectEstimator(self.board)
        self._dest_mac_key = self.keys.mac_key(self.params.path_length)

    # -- sending ------------------------------------------------------------

    def _after_send(self, packet: DataPacket) -> None:
        identifier = packet.identifier
        self.monitor.record_sent()
        entry = self.pending.setdefault(identifier, {})
        entry["sequence"] = packet.sequence
        entry["probed"] = False
        entry["handle"] = self.timer_with_slack(
            self.params.r0, lambda: self._on_ack_timeout(identifier)
        )

    # -- receiving ------------------------------------------------------------

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if is_e2e_ack(packet, direction):
            self._on_e2e_ack(packet)
        elif is_report_ack(packet, direction):
            self._on_report(packet)

    def _on_e2e_ack(self, ack: AckPacket) -> None:
        entry = self.pending.get(ack.identifier)
        if entry is None or entry["probed"]:
            return
        if not verify_mac(self._dest_mac_key, ack.identifier, ack.report):
            self.obs_mac_failures.inc()
            self.record_fault("ack_mac_failure")
            return  # forged/altered ack: treated as absent (drop semantics)
        entry["handle"].cancel()
        self.pending.pop(ack.identifier)
        self.monitor.record_acknowledged()
        self.obs_acks_verified.inc()
        self.board.record_round()  # an observed round with no blame
        self.observe_round(entry)

    def _on_ack_timeout(self, identifier: bytes) -> None:
        entry = self.pending.get(identifier)
        if entry is None:
            return
        entry["probed"] = True
        entry["probe_attempts"] = 0
        self._probe(identifier, entry)

    def _probe(self, identifier: bytes, entry: dict) -> None:
        probe = build_probe(self.protocol, identifier, entry["sequence"])
        self.path.stats.record_overhead(probe)
        self.send_forward(probe)
        self.obs_probes_sent.inc()
        entry["handle"] = self.timer_with_slack(
            self.params.r0, lambda: self._on_report_timeout(identifier)
        )

    def _on_report(self, ack: AckPacket) -> None:
        entry = self.pending.get(ack.identifier)
        if entry is None or not entry["probed"]:
            return
        entry["handle"].cancel()
        self.pending.pop(ack.identifier)
        depth = effective_onion_depth(self.verifier, ack.report, ack.identifier)
        if depth < self.params.path_length:
            self.board.add(depth)
        self.board.record_round()
        self.observe_round(entry)

    def _on_report_timeout(self, identifier: bytes) -> None:
        entry = self.pending.get(identifier)
        if entry is None:
            return
        # Degraded mode (probe_retries > 0): re-send the probe a bounded
        # number of times before scoring the round.
        if entry["probe_attempts"] < self.params.probe_retries:
            entry["probe_attempts"] += 1
            self._probe(identifier, entry)
            return
        self.pending.pop(identifier)
        # Footnote 8: no report at all means the loss is at l_0.
        self.obs_report_timeouts.inc()
        self.board.add(0)
        self.board.record_round()
        self.observe_round(entry)

    # -- verdicts ------------------------------------------------------------

    def estimates(self) -> List[float]:
        return self._estimator.estimates()


class FullAckProtocol(WireProtocol):
    """Wire instance of the full-ack protocol."""

    name = "full-ack"
    #: e2e ack + onion-probe lifecycle, replayable by repro.net.fastpath.
    fastpath_family = "onion-ack"

    def _build_nodes(self):
        params = self.params
        source = FullAckSource(self)
        forwarders = [
            OnionForwarder(self, position, hold=2.0 * params.r0, e2e_policy="pop")
            for position in range(1, params.path_length)
        ]
        destination = OnionDestination(
            self, hold=2.0 * params.r0, ack_predicate=lambda packet: True
        )
        return [source, *forwarders, destination]
