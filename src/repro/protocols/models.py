"""Exact per-round outcome distributions for every protocol.

For each protocol we derive, in closed form, the probability distribution
of what one observation round contributes to the score board, as a
function of the per-crossing drop probabilities of each link:

* ``f[i]`` — probability a *forward* crossing of link ``l_i`` drops the
  packet (natural loss combined with the egress node ``F_i``'s malicious
  rate); applies to data packets and probes alike;
* ``b_ack[i]`` — probability a *reverse* crossing of ``l_i`` loses an
  end-to-end ack. A malicious ``F_i`` swallowing acks at ingress (§8.1
  tactic (b)) is observationally identical to extra loss here;
* ``b_report[i]`` — probability a reverse crossing loses a *report* ack.
  The paper's evaluation adversary answers ack requests honestly, so this
  stays at the natural rate even on its links.

The distributions replicate the wire agents' semantics event by event
(probe stopping at the first node without state, report regeneration on
the return path, footnote 8's blame-``l_0`` fallback, PAAI-2's oblivious
match condition) and are cross-validated against the wire simulator in
``tests/integration/test_wire_vs_model.py``. They power three things:

1. the vectorized Monte-Carlo engine for the 10,000-run experiments of §8
   (drawing multinomial score counts per checkpoint instead of simulating
   every packet);
2. per-link *calibrated decision thresholds*: the source knows ρ and its
   own protocol, so it can compute each link's natural blame rate and
   convict at ``natural + epsilon/2`` — the Hoeffding midpoint of
   Theorem 2 generalized to each protocol's observation process;
3. analytical expected estimates for validation and the Table 2 harness.

Outcome encoding (onion protocols: full-ack, PAAI-1, Combination 1):
categories ``0..d-1`` mean "blame link l_i", category ``d`` means "no
blame". For PAAI-2/Combination 2: categories ``0..d-1`` mean "mismatch
with selected node e=i+1" (increment links ``l_0..l_i``), category ``d``
means "no score".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError

#: Outcome-kind tags.
KIND_BLAME = "blame"  # direct per-link blame (onion protocols)
KIND_INTERVAL = "interval"  # PAAI-2 upstream-interval increments


@dataclass
class OutcomeModel:
    """Per-round outcome distribution plus its scoring semantics.

    Attributes
    ----------
    kind:
        :data:`KIND_BLAME` or :data:`KIND_INTERVAL`.
    probabilities:
        Length ``d+1`` vector; see module docstring for the encoding.
    rounds_per_packet:
        Expected observation rounds per data packet sent (1 for full-ack
        and PAAI-2; the probe frequency ``p`` for sampled protocols).
    """

    kind: str
    probabilities: np.ndarray
    rounds_per_packet: float

    @property
    def path_length(self) -> int:
        return len(self.probabilities) - 1

    def expected_estimates(self) -> List[float]:
        """Expected value of the protocol's per-link estimator."""
        d = self.path_length
        p = self.probabilities
        if self.kind == KIND_BLAME:
            return [float(p[i]) for i in range(d)]
        # Interval scoring: E[estimate_j] = d * (P(e=j+1) - P(e=j)) where
        # P(e=x) is the mismatch probability with selected node x
        # (cumulative-difference estimator; see core.estimators).
        estimates = []
        previous = 0.0
        for j in range(d):
            cumulative = d * float(p[j])
            estimates.append(max(0.0, cumulative - previous))
            previous = cumulative
        return estimates

    def score_matrix(self) -> np.ndarray:
        """Matrix mapping outcome categories to per-link score increments.

        Shape ``(d+1, d)``: row ``c`` is the score vector added to the
        board when category ``c`` occurs.
        """
        d = self.path_length
        matrix = np.zeros((d + 1, d))
        for category in range(d):
            if self.kind == KIND_BLAME:
                matrix[category, category] = 1.0
            else:
                matrix[category, : category + 1] = 1.0
        return matrix


def _first_failure(probs: Sequence[float]) -> Iterable[Tuple[Optional[int], float]]:
    """Yield ``(index, probability)`` of the first failing trial, plus
    ``(None, survival)`` for the all-pass case, over independent Bernoulli
    trials with the given failure probabilities (in trial order)."""
    survive = 1.0
    for index, prob in enumerate(probs):
        yield index, survive * prob
        survive *= 1.0 - prob
    yield None, survive


def _final_report_depth(m: int, b: Sequence[float]) -> Iterable[Tuple[int, float]]:
    """Distribution of the depth the source finally sees for a report that
    originated at node ``F_m``.

    The report crosses reverse links ``l_{m-1} .. l_0``; a drop at ``l_i``
    triggers regeneration at ``F_i`` (depth ``i``), so the final depth is
    the lowest-index dropped crossing, or ``m`` when none drops. Depth 0
    covers both a regenerated report from ``F_0``'s neighbor failing and
    footnote 8's no-report case — the source blames ``l_0`` either way.
    """
    for index, prob in _first_failure(b[:m]):
        yield (m if index is None else index), prob


def _validate_rates(*rate_arrays: Sequence[float]) -> List[List[float]]:
    lengths = {len(rates) for rates in rate_arrays}
    if len(lengths) != 1 or 0 in lengths:
        raise ConfigurationError("need matching non-empty rate arrays")
    for rates in rate_arrays:
        for rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"drop rate {rate} outside [0, 1]")
    return [list(rates) for rates in rate_arrays]


# ---------------------------------------------------------------------------
# Onion family
# ---------------------------------------------------------------------------


def fullack_model(
    f: Sequence[float],
    b_ack: Sequence[float],
    b_report: Sequence[float],
) -> OutcomeModel:
    """Full-ack: every data packet is one observation round."""
    f, b_ack, b_report = _validate_rates(f, b_ack, b_report)
    d = len(f)
    out = np.zeros(d + 1)

    for k, pk in _first_failure(f):  # data crossing
        if k is None:
            # Data delivered; e2e ack crosses links d-1 .. 0.
            for a_rev, pa in _first_failure(b_ack[::-1]):
                if a_rev is None:
                    out[d] += pk * pa  # delivered, no probe
                    continue
                a = d - 1 - a_rev  # link index where the ack was lost
                # Forwarders that relayed the ack popped their state; D
                # kept its. The probe can reach D only when the ack died
                # on its very first crossing (a == d-1).
                if a == d - 1:
                    for j, pj in _first_failure(f):
                        m = d if j is None else j
                        for depth, pr in _final_report_depth(m, b_report):
                            target = d if depth == d else depth
                            out[target] += pk * pa * pj * pr
                else:
                    for j, pj in _first_failure(f[:a]):
                        m = a if j is None else j
                        for depth, pr in _final_report_depth(m, b_report):
                            out[depth] += pk * pa * pj * pr
        else:
            # Data dropped at l_k: probe stops at F_{k+1} (no state).
            for j, pj in _first_failure(f[:k]):
                m = k if j is None else j
                for depth, pr in _final_report_depth(m, b_report):
                    out[depth] += pk * pj * pr

    return OutcomeModel(KIND_BLAME, out, rounds_per_packet=1.0)


def paai1_model(
    f: Sequence[float],
    b_ack: Sequence[float],
    b_report: Sequence[float],
    probe_frequency: float,
) -> OutcomeModel:
    """PAAI-1: one observation round per *sampled* packet; the probe is
    sent unconditionally for sampled packets. There are no per-packet e2e
    acks, so ``b_ack`` is unused (kept in the signature for uniformity)."""
    f, b_ack, b_report = _validate_rates(f, b_ack, b_report)
    d = len(f)
    out = np.zeros(d + 1)

    for k, pk in _first_failure(f):  # data crossing
        limit = d if k is None else k
        for j, pj in _first_failure(f[:limit]):
            m = limit if j is None else j
            for depth, pr in _final_report_depth(m, b_report):
                target = d if depth == d else depth
                out[target] += pk * pj * pr

    return OutcomeModel(KIND_BLAME, out, rounds_per_packet=probe_frequency)


def combo1_model(
    f: Sequence[float],
    b_ack: Sequence[float],
    b_report: Sequence[float],
    probe_frequency: float,
) -> OutcomeModel:
    """Combination 1: like PAAI-1, but D acks sampled packets and the
    source probes only when that ack is missing; forwarders keep state
    (no pop-on-relay), so a probe after an ack loss can reach D."""
    f, b_ack, b_report = _validate_rates(f, b_ack, b_report)
    d = len(f)
    out = np.zeros(d + 1)

    for k, pk in _first_failure(f):
        if k is None:
            for a_rev, pa in _first_failure(b_ack[::-1]):
                if a_rev is None:
                    out[d] += pk * pa  # ack arrived: observed, no blame
                    continue
                # Probe; every node still has state, so D is reachable.
                for j, pj in _first_failure(f):
                    m = d if j is None else j
                    for depth, pr in _final_report_depth(m, b_report):
                        target = d if depth == d else depth
                        out[target] += pk * pa * pj * pr
        else:
            for j, pj in _first_failure(f[:k]):
                m = k if j is None else j
                for depth, pr in _final_report_depth(m, b_report):
                    out[depth] += pk * pj * pr

    return OutcomeModel(KIND_BLAME, out, rounds_per_packet=probe_frequency)


# ---------------------------------------------------------------------------
# PAAI-2 family
# ---------------------------------------------------------------------------


def _paai2_mismatch_terms(
    f: Sequence[float],
    b_report: Sequence[float],
    k: Optional[int],
    out: np.ndarray,
    weight: float,
) -> None:
    """Distribute one probed round's probability over (e, match) outcomes.

    ``k`` is the link where the data dropped (None when delivered). The
    selected node ``e`` is uniform on ``1..d``. A round *matches* iff the
    data reached ``F_e`` (``k`` is None or ``e <= k``), the probe reached
    ``F_e`` (no forward drop on crossings ``l_0..l_{e-1}``), and ``F_e``'s
    report survived the reverse crossings ``l_{e-1}..l_0`` without
    regeneration by another node.
    """
    d = len(f)
    for e in range(1, d + 1):
        p_e = weight / d
        if k is not None and e > k:
            out[e - 1] += p_e  # F_e never saw the packet: mismatch
            continue
        survive = 1.0
        for j in range(e):
            survive *= (1.0 - f[j]) * (1.0 - b_report[j])
        out[e - 1] += p_e * (1.0 - survive)
        out[d] += p_e * survive


def paai2_model(
    f: Sequence[float],
    b_ack: Sequence[float],
    b_report: Sequence[float],
) -> OutcomeModel:
    """PAAI-2: every data packet is one observation round."""
    f, b_ack, b_report = _validate_rates(f, b_ack, b_report)
    d = len(f)
    out = np.zeros(d + 1)

    for k, pk in _first_failure(f):
        if k is None:
            for a_rev, pa in _first_failure(b_ack[::-1]):
                if a_rev is None:
                    out[d] += pk * pa  # delivered: no probe, no score
                else:
                    _paai2_mismatch_terms(f, b_report, None, out, pk * pa)
        else:
            _paai2_mismatch_terms(f, b_report, k, out, pk)

    return OutcomeModel(KIND_INTERVAL, out, rounds_per_packet=1.0)


def combo2_model(
    f: Sequence[float],
    b_ack: Sequence[float],
    b_report: Sequence[float],
    probe_frequency: float,
) -> OutcomeModel:
    """Combination 2: PAAI-2 semantics on the sampled fraction only."""
    model = paai2_model(f, b_ack, b_report)
    return OutcomeModel(
        model.kind, model.probabilities, rounds_per_packet=probe_frequency
    )


# ---------------------------------------------------------------------------
# Dispatch helpers
# ---------------------------------------------------------------------------


def combine_rates(natural: float, malicious: float) -> float:
    """Combined per-crossing drop probability of independent causes."""
    return 1.0 - (1.0 - natural) * (1.0 - malicious)


def build_model(
    name: str,
    f: Sequence[float],
    b_ack: Sequence[float],
    b_report: Sequence[float],
    params: ProtocolParams,
) -> OutcomeModel:
    """Build the outcome model for a registry-named protocol.

    The statistical FL baseline has no per-round blame distribution (its
    estimator reads counters) and is handled separately by the analysis
    and Monte-Carlo layers.
    """
    if name in ("full-ack", "sig-ack"):
        # Sig-ack replaces MACs with signatures; its per-round blame
        # semantics are identical to full-ack's.
        return fullack_model(f, b_ack, b_report)
    if name == "paai1":
        return paai1_model(f, b_ack, b_report, params.probe_frequency)
    if name == "paai2":
        return paai2_model(f, b_ack, b_report)
    if name == "combo1":
        return combo1_model(f, b_ack, b_report, params.probe_frequency)
    if name == "combo2":
        return combo2_model(f, b_ack, b_report, params.probe_frequency)
    raise ConfigurationError(f"no outcome model for protocol {name!r}")


def natural_estimates(name: str, params: ProtocolParams) -> List[float]:
    """Expected per-link estimates with every link at the natural rate.

    For the statistical FL baseline the estimator reads survival ratios,
    whose natural expectation is exactly ``rho`` per link.
    """
    if name == "statfl":
        return [params.natural_loss] * params.path_length
    rho = [params.natural_loss] * params.path_length
    return build_model(name, rho, rho, rho, params).expected_estimates()


def malicious_estimates(name: str, params: ProtocolParams, link: int) -> List[float]:
    """Expected estimates with the §8.1 adversary at node ``link``
    dropping at the threshold margin ``epsilon`` (so the link's total
    forward rate is ``alpha``)."""
    if not 0 <= link < params.path_length:
        raise ConfigurationError(f"link {link} off path")
    rho = params.natural_loss
    eps = params.epsilon
    if name == "statfl":
        estimates = [rho] * params.path_length
        estimates[link] = combine_rates(rho, eps)
        return estimates
    f = [rho] * params.path_length
    b_ack = [rho] * params.path_length
    b_report = [rho] * params.path_length
    f[link] = combine_rates(rho, eps)
    b_ack[link] = combine_rates(rho, eps)
    return build_model(name, f, b_ack, b_report, params).expected_estimates()


def calibrated_thresholds(name: str, params: ProtocolParams) -> List[float]:
    """Per-link conviction thresholds at the Hoeffding midpoint.

    For each link the threshold sits halfway between the expected estimate
    under the honest hypothesis (all links natural) and under the §8.1
    malicious hypothesis (that link's node dropping at ``epsilon``) —
    the per-protocol generalization of Theorem 2's midpoint test.
    """
    natural = natural_estimates(name, params)
    thresholds = []
    for link in range(params.path_length):
        malicious = malicious_estimates(name, params, link)[link]
        thresholds.append((natural[link] + malicious) / 2.0)
    return thresholds
