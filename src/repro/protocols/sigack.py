"""Sig-ack: the asymmetric-cryptography AAI variant of footnote 1.

Structurally this is the full-ack protocol with every MAC replaced by a
hash-based signature (:mod:`repro.crypto.wots` / :mod:`repro.crypto.merkle`):

* the destination's per-packet ack is a signature over the identifier;
* probe responses are *signature onions* — each node wraps the downstream
  report and signs the whole layer with its Merkle key, so any party
  (not just the source) could audit the report chain — the property
  asymmetric crypto buys;
* each node's signing pool holds ``2^h`` one-time keys; when it runs dry
  the node regenerates a pool and re-registers its root (counted in
  ``key_regenerations`` — an operational cost symmetric protocols don't
  have).

What footnote 1 dismisses, this module quantifies: a single signature is
several KiB (vs. 8-byte MACs) and costs thousands of hash evaluations, so
per-packet acks become more expensive than the data they protect. The
``sig-ack`` registry entry and its bench exist to make that comparison
concrete; detection behavior is identical to full-ack.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.estimators import DirectEstimator
from repro.core.monitor import EndToEndMonitor
from repro.crypto.merkle import (
    MerkleSigner,
    MerkleVerifier,
    decode_signature,
    encode_signature,
)
from repro.exceptions import ConfigurationError
from repro.net.packets import (
    AckPacket,
    DataPacket,
    Direction,
    Packet,
    PacketKind,
    ProbePacket,
)
from repro.protocols.base import (
    DestinationAgent,
    ForwarderAgent,
    SourceAgent,
    WireProtocol,
    is_e2e_ack,
    is_report_ack,
)

_HEADER = 2 + 4 + 4  # position, payload length, inner length


class _SignerPool:
    """A node's signing identity with automatic pool regeneration."""

    def __init__(self, seed: bytes, height: int) -> None:
        self._seed = seed
        self._height = height
        self._generation = 0
        self.key_regenerations = 0
        self._signer = self._fresh()
        #: Roots in registration order; verifiers accept any of them
        #: (re-registration is assumed out-of-band and instantaneous).
        self.roots: List[bytes] = [self._signer.public_root]

    def _fresh(self) -> MerkleSigner:
        signer = MerkleSigner(
            self._seed + self._generation.to_bytes(4, "big"), height=self._height
        )
        self._generation += 1
        return signer

    def sign(self, message: bytes) -> bytes:
        if self._signer.exhausted:
            self._signer = self._fresh()
            self.roots.append(self._signer.public_root)
            self.key_regenerations += 1
        return encode_signature(self._signer.sign(message))


class _SigVerifierSet:
    """Source-side verifier accepting a node's registered roots."""

    def __init__(self, pool: _SignerPool) -> None:
        self._pool = pool

    def verify(self, message: bytes, blob: bytes) -> bool:
        try:
            signature = decode_signature(blob)
        except ConfigurationError:
            return False
        return any(
            MerkleVerifier(root).verify(message, signature)
            for root in self._pool.roots
        )


def _encode_layer(position: int, payload: bytes, inner: bytes, signature: bytes) -> bytes:
    header = (
        position.to_bytes(2, "big")
        + len(payload).to_bytes(4, "big")
        + len(inner).to_bytes(4, "big")
    )
    return header + payload + inner + signature


def _signed_body(position: int, payload: bytes, inner: bytes) -> bytes:
    return (
        position.to_bytes(2, "big")
        + len(payload).to_bytes(4, "big")
        + len(inner).to_bytes(4, "big")
        + payload
        + inner
    )


class SigAckSource(SourceAgent):
    """Source for the sig-ack protocol (full-ack flow, signature checks)."""

    def __init__(self, protocol: "SigAckProtocol") -> None:
        super().__init__(protocol)
        self.monitor = EndToEndMonitor(self.params.psi_threshold)
        self._estimator = DirectEstimator(self.board)
        self._verifiers = protocol.verifiers

    def _after_send(self, packet: DataPacket) -> None:
        identifier = packet.identifier
        self.monitor.record_sent()
        self.pending[identifier] = {
            "sequence": packet.sequence,
            "probed": False,
            "handle": self.timer_with_slack(
                self.params.r0, lambda: self._on_ack_timeout(identifier)
            ),
        }

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if is_e2e_ack(packet, direction):
            self._on_e2e_ack(packet)
        elif is_report_ack(packet, direction):
            self._on_report(packet)

    def _on_e2e_ack(self, ack: AckPacket) -> None:
        entry = self.pending.get(ack.identifier)
        if entry is None or entry["probed"]:
            return
        dest = self.params.path_length
        if not self._verifiers[dest].verify(b"e2e" + ack.identifier, ack.report):
            self.obs_mac_failures.inc()
            self.record_fault("ack_signature_failure")
            return  # forged/altered ack: treated as absent (drop semantics)
        entry["handle"].cancel()
        self.pending.pop(ack.identifier)
        self.monitor.record_acknowledged()
        self.obs_acks_verified.inc()
        self.board.record_round()
        self.observe_round(entry)

    def _on_ack_timeout(self, identifier: bytes) -> None:
        entry = self.pending.get(identifier)
        if entry is None:
            return
        entry["probed"] = True
        entry["probe_attempts"] = 0
        self._probe(identifier, entry)

    def _probe(self, identifier: bytes, entry: dict) -> None:
        probe = ProbePacket.create(identifier, sequence=entry["sequence"])
        self.path.stats.record_overhead(probe)
        self.send_forward(probe)
        self.obs_probes_sent.inc()
        entry["handle"] = self.timer_with_slack(
            self.params.r0, lambda: self._on_report_timeout(identifier)
        )

    def _on_report(self, ack: AckPacket) -> None:
        entry = self.pending.get(ack.identifier)
        if entry is None or not entry["probed"]:
            return
        entry["handle"].cancel()
        self.pending.pop(ack.identifier)
        depth = self._verify_chain(ack.report, ack.identifier)
        if depth < self.params.path_length:
            self.board.add(depth)
        self.board.record_round()
        self.observe_round(entry)

    def _on_report_timeout(self, identifier: bytes) -> None:
        entry = self.pending.get(identifier)
        if entry is None:
            return
        # Degraded mode (probe_retries > 0): re-send the probe a bounded
        # number of times before scoring the round.
        if entry["probe_attempts"] < self.params.probe_retries:
            entry["probe_attempts"] += 1
            self._probe(identifier, entry)
            return
        self.pending.pop(identifier)
        self.obs_report_timeouts.inc()
        self.board.add(0)
        self.board.record_round()
        self.observe_round(entry)

    def _verify_chain(self, report: Optional[bytes], identifier: bytes) -> int:
        """Walk the signature onion outside-in; return the effective depth."""
        depth = 0
        expected = 1
        remaining = report
        while remaining:
            if expected > self.params.path_length or len(remaining) < _HEADER:
                break
            position = int.from_bytes(remaining[0:2], "big")
            payload_len = int.from_bytes(remaining[2:6], "big")
            inner_len = int.from_bytes(remaining[6:10], "big")
            if position != expected:
                break
            end = _HEADER + payload_len + inner_len
            if len(remaining) < end:
                break
            payload = remaining[_HEADER : _HEADER + payload_len]
            inner = remaining[_HEADER + payload_len : end]
            signature = remaining[end:]
            body = _signed_body(position, payload, inner)
            if payload != identifier:
                break
            if not self._verifiers[position].verify(body, signature):
                break
            depth = position
            expected += 1
            remaining = inner
        return depth

    def estimates(self) -> List[float]:
        return self._estimator.estimates()


class SigAckForwarder(ForwarderAgent):
    """Forwarder: signature-onion analog of the full-ack forwarder."""

    def __init__(self, protocol: "SigAckProtocol", position: int) -> None:
        super().__init__(protocol, position)
        self.pool = protocol.pools[position]
        self._hold = 2.0 * protocol.params.r0

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if direction is Direction.FORWARD and packet.kind is PacketKind.DATA:
            self._on_data(packet)
        elif direction is Direction.FORWARD and packet.kind is PacketKind.PROBE:
            self._on_probe(packet)
        elif is_e2e_ack(packet, direction):
            self._on_e2e_ack(packet)
        elif is_report_ack(packet, direction):
            self._on_report(packet)

    def _on_data(self, packet: DataPacket) -> None:
        if not self.is_fresh(packet):
            return
        identifier = packet.identifier
        entry = self.store.add(identifier, self.now, probed=False)
        entry["hold_handle"] = self.timer_with_slack(
            self._hold, lambda: self._expire(identifier)
        )
        self.send_forward(packet)

    def _on_probe(self, probe: ProbePacket) -> None:
        entry = self.store.get(probe.identifier)
        if entry is None or entry["probed"]:
            return
        entry["probed"] = True
        entry["hold_handle"].cancel()
        identifier = probe.identifier
        entry["report_handle"] = self.timer_with_slack(
            self.rtt_to_destination(), lambda: self._report_timeout(identifier)
        )
        self.send_forward(probe)

    def _on_e2e_ack(self, ack: AckPacket) -> None:
        entry = self.store.get(ack.identifier)
        if entry is None or entry["probed"]:
            return
        entry["hold_handle"].cancel()
        self.store.pop(ack.identifier, self.now)
        self.send_backward(ack)

    def _on_report(self, ack: AckPacket) -> None:
        entry = self.store.get(ack.identifier)
        if entry is None or not entry["probed"]:
            return
        entry["report_handle"].cancel()
        self.store.pop(ack.identifier, self.now)
        self._emit(ack.identifier, inner=ack.report, sequence=ack.sequence)

    def _report_timeout(self, identifier: bytes) -> None:
        if identifier not in self.store:
            return
        self.store.pop(identifier, self.now)
        self._emit(identifier, inner=b"", sequence=0)

    def _emit(self, identifier: bytes, inner: bytes, sequence: int) -> None:
        body = _signed_body(self.position, identifier, inner)
        layer = _encode_layer(
            self.position, identifier, inner, self.pool.sign(body)
        )
        self.send_backward(
            AckPacket.create(
                identifier, report=layer, origin=self.position,
                sequence=sequence, is_report=True,
            )
        )

    def _expire(self, identifier: bytes) -> None:
        entry = self.store.get(identifier)
        if entry is not None and not entry["probed"]:
            self.store.pop(identifier, self.now)


class SigAckDestination(DestinationAgent):
    """Destination: signs every ack and every probe response."""

    def __init__(self, protocol: "SigAckProtocol") -> None:
        super().__init__(protocol)
        self.pool = protocol.pools[self.position]
        self._hold = 2.0 * protocol.params.r0

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if direction is Direction.FORWARD and packet.kind is PacketKind.DATA:
            self._on_data(packet)
        elif direction is Direction.FORWARD and packet.kind is PacketKind.PROBE:
            self._on_probe(packet)

    def _on_data(self, packet: DataPacket) -> None:
        if not self.is_fresh(packet):
            return
        identifier = packet.identifier
        entry = self.store.add(identifier, self.now)
        entry["hold_handle"] = self.timer_with_slack(
            self._hold, lambda: self._expire(identifier)
        )
        self.path.stats.record_data_delivered()
        self.send_backward(
            AckPacket.create(
                identifier,
                report=self.pool.sign(b"e2e" + identifier),
                origin=self.position,
                sequence=packet.sequence,
                is_report=False,
            )
        )

    def _on_probe(self, probe: ProbePacket) -> None:
        entry = self.store.get(probe.identifier)
        if entry is None:
            return
        entry["hold_handle"].cancel()
        self.store.pop(probe.identifier, self.now)
        identifier = probe.identifier
        body = _signed_body(self.position, identifier, b"")
        layer = _encode_layer(self.position, identifier, b"", self.pool.sign(body))
        self.send_backward(
            AckPacket.create(
                identifier, report=layer, origin=self.position, is_report=True
            )
        )

    def _expire(self, identifier: bytes) -> None:
        if identifier in self.store:
            self.store.pop(identifier, self.now)


class SigAckProtocol(WireProtocol):
    """Wire instance of the footnote-1 asymmetric AAI variant.

    Parameters
    ----------
    pool_height:
        Merkle tree height per signing pool (``2^h`` signatures before a
        regeneration).
    """

    name = "sig-ack"
    #: Draw-identical to full-ack on the wire (signatures consume no
    #: stream draws), so it shares the onion-ack fastpath replay.
    fastpath_family = "onion-ack"

    def __init__(self, *args, pool_height: int = 6, **kwargs) -> None:
        self._pool_height = pool_height
        self.pools: Dict[int, _SignerPool] = {}
        self.verifiers: Dict[int, _SigVerifierSet] = {}
        super().__init__(*args, **kwargs)

    def _build_nodes(self):
        d = self.params.path_length
        for position in range(1, d + 1):
            pool = _SignerPool(
                self.keys.master_key(position), height=self._pool_height
            )
            self.pools[position] = pool
            self.verifiers[position] = _SigVerifierSet(pool)
        source = SigAckSource(self)
        forwarders = [SigAckForwarder(self, i) for i in range(1, d)]
        destination = SigAckDestination(self)
        return [source, *forwarders, destination]

    def total_key_regenerations(self) -> int:
        return sum(pool.key_regenerations for pool in self.pools.values())
