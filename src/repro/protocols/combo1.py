"""§10 Combination 1: every node acknowledges a selected fraction of *lost*
data packets.

PAAI-1's sampling key is replaced by the key shared with the destination
(``K_d``-derived), so D can independently tell which packets are sampled
and proactively ack them. The source then probes only for *sampled packets
whose e2e ack never arrived* — cutting communication to ``O(p (1 + ψ d))``
— while the detection rate matches PAAI-1 (one observation per sampled
packet either way). The cost is storage: nodes cannot tell sampled
packets apart, and a probe may now arrive a full extra ``r_0`` later (the
source's ack wait), so every node holds state correspondingly longer
(Table 1's ``O(r_0 (0.5 + 2p) ν)`` row).
"""

from __future__ import annotations

from typing import List

from repro.core.estimators import DirectEstimator
from repro.core.monitor import EndToEndMonitor
from repro.crypto.keys import derive_key
from repro.crypto.mac import verify_mac
from repro.crypto.onion import OnionVerifier
from repro.crypto.sampling import SecureSampler
from repro.net.packets import AckPacket, DataPacket, Direction, Packet
from repro.protocols.base import (
    SourceAgent,
    WireProtocol,
    is_e2e_ack,
    is_report_ack,
)
from repro.protocols.onion_common import (
    OnionDestination,
    OnionForwarder,
    build_probe,
    effective_onion_depth,
)

#: Role label for the sampling key derived from the S-D pairwise key.
SAMPLING_ROLE = "combo-sampling"


class Combo1Source(SourceAgent):
    """Source agent for Combination 1."""

    def __init__(self, protocol: "Combination1Protocol") -> None:
        super().__init__(protocol)
        d = self.params.path_length
        self.verifier = OnionVerifier(self.keys.all_mac_keys())
        self.monitor = EndToEndMonitor(self.params.psi_threshold)
        # Sampling key derived from the pairwise key with D: both ends can
        # evaluate it, nobody else can.
        self.sampler = SecureSampler(
            derive_key(self.keys.master_key(d), SAMPLING_ROLE),
            self.params.probe_frequency,
        )
        self._dest_mac_key = self.keys.mac_key(d)
        self._estimator = DirectEstimator(self.board)

    # -- sending --------------------------------------------------------------

    def _after_send(self, packet: DataPacket) -> None:
        if not self.sampler.is_sampled(packet.identifier):
            return
        identifier = packet.identifier
        self.monitor.record_sent()
        self.obs_sampling_hits.inc()
        self.pending[identifier] = {
            "sequence": packet.sequence,
            "probed": False,
            "handle": self.timer_with_slack(
                self.params.r0, lambda: self._on_ack_timeout(identifier)
            ),
        }

    # -- receiving --------------------------------------------------------------

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if is_e2e_ack(packet, direction):
            self._on_e2e_ack(packet)
        elif is_report_ack(packet, direction):
            self._on_report(packet)

    def _on_e2e_ack(self, ack: AckPacket) -> None:
        entry = self.pending.get(ack.identifier)
        if entry is None or entry["probed"]:
            return
        if not verify_mac(self._dest_mac_key, ack.identifier, ack.report):
            self.obs_mac_failures.inc()
            return
        entry["handle"].cancel()
        self.pending.pop(ack.identifier)
        self.monitor.record_acknowledged()
        self.obs_acks_verified.inc()
        self.board.record_round()  # sampled, delivered, no blame
        self.observe_round(entry)

    def _on_ack_timeout(self, identifier: bytes) -> None:
        entry = self.pending.get(identifier)
        if entry is None:
            return
        entry["probed"] = True
        probe = build_probe(self.protocol, identifier, entry["sequence"])
        self.path.stats.record_overhead(probe)
        self.send_forward(probe)
        self.obs_probes_sent.inc()
        entry["handle"] = self.timer_with_slack(
            self.params.r0, lambda: self._on_report_timeout(identifier)
        )

    def _on_report(self, ack: AckPacket) -> None:
        entry = self.pending.get(ack.identifier)
        if entry is None or not entry["probed"]:
            return
        entry["handle"].cancel()
        self.pending.pop(ack.identifier)
        depth = effective_onion_depth(self.verifier, ack.report, ack.identifier)
        if depth < self.params.path_length:
            self.board.add(depth)
        self.board.record_round()
        self.observe_round(entry)

    def _on_report_timeout(self, identifier: bytes) -> None:
        entry = self.pending.pop(identifier, None)
        if entry is None:
            return
        self.obs_report_timeouts.inc()
        self.board.add(0)
        self.board.record_round()
        self.observe_round(entry)

    # -- verdicts --------------------------------------------------------------

    def estimates(self) -> List[float]:
        return self._estimator.estimates()


class Combination1Protocol(WireProtocol):
    """Wire instance of §10's Combination 1."""

    name = "combo1"

    def _build_nodes(self):
        params = self.params
        source = Combo1Source(self)
        # Nodes hold every packet: r0/2 base window plus the extra r0 the
        # source spends waiting for D's ack before probing.
        hold = params.r0 / 2.0 + params.r0
        forwarders = [
            OnionForwarder(self, position, hold=hold, e2e_policy="keep")
            for position in range(1, params.path_length)
        ]
        dest_sampler = SecureSampler(
            derive_key(self.keys.master_key(params.path_length), SAMPLING_ROLE),
            params.probe_frequency,
        )
        destination = OnionDestination(
            self,
            hold=hold,
            ack_predicate=lambda packet: dest_sampler.is_sampled(packet.identifier),
        )
        return [source, *forwarders, destination]
