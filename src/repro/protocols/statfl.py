"""The statistical fault-localization baseline (Barak, Goldberg & Xiao,
EUROCRYPT 2008), as the paper compares against in Tables 1-2.

Design (symmetric-key statistical FL, reimplemented in spirit):

* each node ``F_i`` keeps a single **cumulative counter** of the data
  packets it has seen whose identifier its private PRF (keyed by the
  pairwise key with S) samples with probability ``p_fl``. A compromised
  node cannot tell which packets *honest* nodes count, so it cannot drop
  selectively around the sketch;
* every ``interval_length`` data packets the source collects the counters
  through an onion-authenticated report request (constant-size request,
  O(d)-size report — amortized to near-zero overhead per data packet);
* counter ``c_i`` estimates arrivals at ``F_i`` as ``c_i / p_fl``; the
  survival-ratio drops between adjacent nodes estimate per-link loss.

Because counters are cumulative, lost or truncated reports cost only
staleness, never consistency. The price of the tiny overhead is sampling
noise ``~ 1/sqrt(p_fl * N)``: with the paper's translated parameters the
scheme needs on the order of 10^7 packets to separate ``alpha`` from
``rho`` — the "50 hours" detection rate of Table 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.monitor import EndToEndMonitor
from repro.crypto.hashing import hash_bytes
from repro.crypto.onion import OnionReport, OnionVerifier
from repro.crypto.prf import PRF
from repro.exceptions import ConfigurationError
from repro.net.packets import (
    AckPacket,
    DataPacket,
    Direction,
    Packet,
    PacketKind,
    ProbePacket,
)
from repro.protocols.base import (
    DestinationAgent,
    ForwarderAgent,
    SourceAgent,
    WireProtocol,
    is_report_ack,
)

#: Default sketch sampling probability (``p`` in the translated formulas).
DEFAULT_FL_SAMPLING = 0.01

#: Default packets per report-collection interval.
DEFAULT_INTERVAL = 1000

_COUNT_BYTES = 8


def _count_payload(count: int, identifier: bytes) -> bytes:
    return count.to_bytes(_COUNT_BYTES, "big") + identifier


def _parse_count(payload: bytes, identifier: bytes) -> Optional[int]:
    if len(payload) != _COUNT_BYTES + len(identifier):
        return None
    if payload[_COUNT_BYTES:] != identifier:
        return None
    return int.from_bytes(payload[:_COUNT_BYTES], "big")


class _SketchMixin:
    """Shared counting logic for forwarders and the destination."""

    def _init_sketch(self, protocol, position: int) -> None:
        self._sampler_prf = PRF(
            protocol.keys.master_key(position), label="statfl-sketch"
        )
        self._fl_sampling = protocol.fl_sampling
        #: Cumulative count of sampled data packets seen.
        self.sketch_count = 0

    def _count_data(self, packet: DataPacket) -> None:
        if self._sampler_prf.bernoulli(packet.identifier, self._fl_sampling):
            self.sketch_count += 1


class StatFLForwarder(ForwarderAgent, _SketchMixin):
    """Forwarder: count sampled packets, answer interval report requests."""

    def __init__(self, protocol: "StatisticalFLProtocol", position: int) -> None:
        super().__init__(protocol, position)
        self._init_sketch(protocol, position)

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if direction is Direction.FORWARD and packet.kind is PacketKind.DATA:
            self._count_data(packet)
            self.send_forward(packet)
        elif direction is Direction.FORWARD and packet.kind is PacketKind.PROBE:
            self._on_request(packet)
        elif is_report_ack(packet, direction):
            self._on_report(packet)

    def _on_request(self, request: ProbePacket) -> None:
        identifier = request.identifier
        entry = self.store.add(identifier, self.now, count=self.sketch_count)
        entry["handle"] = self.timer_with_slack(
            self.rtt_to_destination(), lambda: self._report_timeout(identifier)
        )
        self.send_forward(request)

    def _on_report(self, ack: AckPacket) -> None:
        entry = self.store.get(ack.identifier)
        if entry is None:
            return
        entry["handle"].cancel()
        wrapped = OnionReport.wrap(
            self.position,
            _count_payload(entry["count"], ack.identifier),
            ack.report,
            self.mac_key,
        )
        self.store.pop(ack.identifier, self.now)
        self.send_backward(
            AckPacket.create(
                ack.identifier, report=wrapped, origin=self.position, is_report=True
            )
        )

    def _report_timeout(self, identifier: bytes) -> None:
        entry = self.store.get(identifier)
        if entry is None:
            return
        report = OnionReport.originate(
            self.position, _count_payload(entry["count"], identifier), self.mac_key
        )
        self.store.pop(identifier, self.now)
        self.send_backward(
            AckPacket.create(
                identifier, report=report, origin=self.position, is_report=True
            )
        )


class StatFLDestination(DestinationAgent, _SketchMixin):
    """Destination: count sampled packets, originate interval reports."""

    def __init__(self, protocol: "StatisticalFLProtocol") -> None:
        super().__init__(protocol)
        self._init_sketch(protocol, self.position)

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if direction is Direction.FORWARD and packet.kind is PacketKind.DATA:
            self.path.stats.record_data_delivered()
            self._count_data(packet)
        elif direction is Direction.FORWARD and packet.kind is PacketKind.PROBE:
            report = OnionReport.originate(
                self.position,
                _count_payload(self.sketch_count, packet.identifier),
                self.mac_key,
            )
            self.send_backward(
                AckPacket.create(
                    packet.identifier, report=report, origin=self.position,
                    is_report=True,
                )
            )


class StatFLSource(SourceAgent):
    """Source: drive intervals, collect counters, estimate per-link loss."""

    #: Retransmissions of a lost report request before giving up on it.
    MAX_ATTEMPTS = 3

    def __init__(self, protocol: "StatisticalFLProtocol") -> None:
        super().__init__(protocol)
        self.verifier = OnionVerifier(self.keys.all_mac_keys())
        self.monitor = EndToEndMonitor(self.params.psi_threshold)
        self._fl_sampling = protocol.fl_sampling
        self._interval = protocol.interval_length
        self._interval_index = 0
        #: Latest cumulative counter per node (1..d) and the sent-packet
        #: snapshot it corresponds to.
        self.latest_counts: Dict[int, int] = {}
        self.latest_snapshot: Dict[int, int] = {}
        self._requests: Dict[bytes, Dict] = {}
        #: Requests that completed (answered, or given up after retries).
        self._resolved_requests = 0

    # -- sending --------------------------------------------------------------

    def _after_send(self, packet: DataPacket) -> None:
        self.monitor.record_sent()
        self.board.record_round()
        if self._sequence % self._interval == 0:
            # Let in-flight data settle before reading the counters.
            self.timer_with_slack(self.params.r0, self._send_request)

    def _send_request(self) -> None:
        self._interval_index += 1
        identifier = hash_bytes(b"statfl-request-%d" % self._interval_index)
        self._requests[identifier] = {
            "attempts": 0,
            "snapshot": self._sequence,
        }
        self._transmit_request(identifier)

    def _transmit_request(self, identifier: bytes) -> None:
        entry = self._requests[identifier]
        entry["attempts"] += 1
        request = ProbePacket.create(identifier)
        self.path.stats.record_overhead(request)
        self.send_forward(request)
        self.obs_probes_sent.inc()
        entry["handle"] = self.timer_with_slack(
            self.params.r0, lambda: self._on_request_timeout(identifier)
        )

    def _on_request_timeout(self, identifier: bytes) -> None:
        entry = self._requests.get(identifier)
        if entry is None:
            return
        if entry["attempts"] >= self.MAX_ATTEMPTS:
            self._requests.pop(identifier)
            self._resolved_requests += 1
            self.obs_report_timeouts.inc()
            return
        self._transmit_request(identifier)

    # -- receiving --------------------------------------------------------------

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if is_report_ack(packet, direction):
            self._on_report(packet)

    def _on_report(self, ack: AckPacket) -> None:
        entry = self._requests.get(ack.identifier)
        if entry is None:
            return
        verdict = self.verifier.verify(ack.report)
        accepted = False
        for layer in verdict.layers:
            count = _parse_count(layer.payload, ack.identifier)
            if count is None:
                self.record_fault("malformed_count_payload")
                break
            self.latest_counts[layer.position] = count
            self.latest_snapshot[layer.position] = entry["snapshot"]
            accepted = True
        if accepted:
            entry["handle"].cancel()
            self._requests.pop(ack.identifier)
            self._resolved_requests += 1
            self.obs_acks_verified.inc()

    # -- verdicts --------------------------------------------------------------

    def survival_fractions(self) -> List[float]:
        """Estimated fraction of sent packets surviving to each node 0..d."""
        d = self.params.path_length
        fractions = [1.0]  # F_0 = S sees everything it sends
        for position in range(1, d + 1):
            count = self.latest_counts.get(position)
            snapshot = self.latest_snapshot.get(position, 0)
            if count is None or snapshot == 0:
                fractions.append(float("nan"))
                continue
            fractions.append(count / (self._fl_sampling * snapshot))
        return fractions

    def estimates(self) -> List[float]:
        fractions = self.survival_fractions()
        estimates = []
        for link in range(self.params.path_length):
            upstream, downstream = fractions[link], fractions[link + 1]
            if upstream != upstream or upstream <= 0.0:  # NaN or dead above
                estimates.append(0.0)
                continue
            if downstream != downstream:  # NaN: node never reported
                # A node that has answered no resolved request while its
                # upstream neighbor has is unreachable: survival ~ 0 and
                # the loss concentrates on this link.
                if self._resolved_requests > 0:
                    downstream = 0.0
                else:
                    estimates.append(0.0)
                    continue
            estimates.append(max(0.0, 1.0 - downstream / upstream))
        return estimates


class StatisticalFLProtocol(WireProtocol):
    """Wire instance of the statistical FL baseline.

    Parameters
    ----------
    fl_sampling:
        Sketch sampling probability ``p_fl``.
    interval_length:
        Data packets per report-collection interval.
    """

    name = "statfl"
    #: Sketch-counter + interval-request lifecycle (repro.net.fastpath).
    fastpath_family = "statfl"

    def __init__(
        self,
        *args,
        fl_sampling: float = DEFAULT_FL_SAMPLING,
        interval_length: int = DEFAULT_INTERVAL,
        **kwargs,
    ) -> None:
        if not 0.0 < fl_sampling <= 1.0:
            raise ConfigurationError("fl_sampling must be in (0, 1]")
        if interval_length <= 0:
            raise ConfigurationError("interval_length must be positive")
        self.fl_sampling = fl_sampling
        self.interval_length = interval_length
        super().__init__(*args, **kwargs)

    def _build_nodes(self):
        source = StatFLSource(self)
        forwarders = [
            StatFLForwarder(self, position)
            for position in range(1, self.params.path_length)
        ]
        destination = StatFLDestination(self)
        return [source, *forwarders, destination]
