"""PAAI-2: oblivious single-node selection (§6.2).

Every data packet is end-to-end acknowledged; a missing ack triggers a
probe carrying a random challenge ``Z``. Each node evaluates a keyed
predicate ``T_i`` on ``Z`` (true with probability ``1/(d-i+1)``), making
the *first sampled* node the uniformly-selected reporter. On the way back
every node either overwrites (if sampled) or re-encrypts the constant-size
report, so traffic analysis cannot tell where the report originated — the
property that defeats footnote 6's incrimination attack.

Scoring (§6.2 phases 4-5, with the resolutions documented in DESIGN.md):
the source, which can recompute the selected node ``F_e``, strips the
``e`` encryption layers and checks the inner report. A match clears the
round; a mismatch adds +1 to every link in ``[l_0, l_{e-1}]``. Per-link
rates come out of the score-difference estimator
(:class:`repro.core.estimators.DifferenceEstimator`).
"""

from __future__ import annotations

from typing import List

from repro.core.estimators import DifferenceEstimator
from repro.core.monitor import EndToEndMonitor
from repro.crypto.mac import mac, verify_mac
from repro.crypto.oblivious import ObliviousDecoder, ObliviousReport
from repro.crypto.sampling import SelectionPredicate, selected_node
from repro.net.packets import (
    AckPacket,
    DataPacket,
    Direction,
    Packet,
    PacketKind,
    ProbePacket,
)
from repro.protocols.base import (
    DestinationAgent,
    ForwarderAgent,
    SourceAgent,
    WireProtocol,
    is_e2e_ack,
    is_report_ack,
)

#: Length of the random challenge Z carried by PAAI-2 probes.
CHALLENGE_SIZE = 16


def _report_challenge(identifier: bytes, z: bytes) -> bytes:
    """The value nodes embed in their reports: binds packet and probe."""
    return identifier + z


class Paai2Source(SourceAgent):
    """Source agent for PAAI-2."""

    def __init__(self, protocol: "Paai2Protocol") -> None:
        super().__init__(protocol)
        d = self.params.path_length
        self.monitor = EndToEndMonitor(self.params.psi_threshold)
        self.decoder = ObliviousDecoder(
            [self.keys.encryption_key(i) for i in range(1, d + 1)],
            [self.keys.mac_key(i) for i in range(1, d + 1)],
        )
        self._selection_keys = self.keys.all_selection_keys()
        self._dest_mac_key = self.keys.mac_key(d)
        self._estimator = DifferenceEstimator(self.board)
        self._challenge_rng = protocol.simulator.rng.stream("paai2-challenge")
        #: Count of probe rounds that decoded to a match (diagnostics).
        self.matches = 0
        self.mismatches = 0

    # -- sending --------------------------------------------------------------

    def _after_send(self, packet: DataPacket) -> None:
        identifier = packet.identifier
        self.monitor.record_sent()
        self.board.record_round()  # every data packet is an observation
        self.pending[identifier] = {
            "sequence": packet.sequence,
            "probed": False,
            "handle": self.timer_with_slack(
                self.params.r0, lambda: self._on_e2e_timeout(identifier)
            ),
        }

    # -- receiving --------------------------------------------------------------

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if is_e2e_ack(packet, direction):
            self._on_e2e_ack(packet)
        elif is_report_ack(packet, direction):
            self._on_report(packet)

    def _on_e2e_ack(self, ack: AckPacket) -> None:
        entry = self.pending.get(ack.identifier)
        if entry is None or entry["probed"]:
            return
        if not verify_mac(self._dest_mac_key, ack.identifier, ack.report):
            self.obs_mac_failures.inc()
            self.record_fault("ack_mac_failure")
            return
        entry["handle"].cancel()
        self.pending.pop(ack.identifier)
        self.monitor.record_acknowledged()
        self.obs_acks_verified.inc()
        self.observe_round(entry)

    def _on_e2e_timeout(self, identifier: bytes) -> None:
        entry = self.pending.get(identifier)
        if entry is None:
            return
        entry["probed"] = True
        entry["probe_attempts"] = 0
        z = bytes(
            self._challenge_rng.getrandbits(8) for _ in range(CHALLENGE_SIZE)
        )
        entry["z"] = z
        entry["selected"] = selected_node(self._selection_keys, z)
        self._probe(identifier, entry)

    def _probe(self, identifier: bytes, entry: dict) -> None:
        # Retransmissions reuse the original challenge Z: the selected
        # node is a pure function of Z, so the round's reporter (and the
        # scoring interval) stays fixed across attempts.
        probe = ProbePacket.create(
            identifier, sequence=entry["sequence"], challenge=entry["z"]
        )
        self.path.stats.record_overhead(probe)
        self.send_forward(probe)
        self.obs_probes_sent.inc()
        entry["handle"] = self.timer_with_slack(
            self.params.r0, lambda: self._on_report_timeout(identifier)
        )

    def _on_report(self, ack: AckPacket) -> None:
        entry = self.pending.get(ack.identifier)
        if entry is None or not entry["probed"]:
            return
        entry["handle"].cancel()
        self.pending.pop(ack.identifier)
        decoded = self.decoder.decode(
            ack.report,
            selected=entry["selected"],
            challenge=_report_challenge(ack.identifier, entry["z"]),
        )
        self._score(decoded.matches, entry["selected"])
        self.observe_round(entry)

    def _on_report_timeout(self, identifier: bytes) -> None:
        entry = self.pending.get(identifier)
        if entry is None:
            return
        # Degraded mode (probe_retries > 0): bounded retransmission
        # before the round is scored as a mismatch.
        if entry["probe_attempts"] < self.params.probe_retries:
            entry["probe_attempts"] += 1
            self._probe(identifier, entry)
            return
        self.pending.pop(identifier)
        self.obs_report_timeouts.inc()
        self._score(False, entry["selected"])
        self.observe_round(entry)

    def _score(self, matches: bool, selected: int) -> None:
        if matches:
            self.matches += 1
            return
        self.mismatches += 1
        self.board.add_upstream_interval(selected)

    # -- verdicts --------------------------------------------------------------

    def estimates(self) -> List[float]:
        return self._estimator.estimates()


class Paai2Forwarder(ForwarderAgent):
    """Intermediate node for PAAI-2."""

    def __init__(self, protocol: "Paai2Protocol", position: int) -> None:
        super().__init__(protocol, position)
        self.enc_key = protocol.keys.encryption_key(position)
        self._predicate = SelectionPredicate(
            protocol.keys.selection_key(position),
            position=position,
            path_length=protocol.params.path_length,
        )
        self._nonce_rng = protocol.simulator.rng.nonce_source(f"node-{position}")
        # Probe may arrive up to ~1.5 r0 after the data packet (source
        # e2e-timeout plus probe transit); §7.4's worst-case accounting
        # (2 r0) covers this hold plus the report wait.
        self._hold = 1.5 * protocol.params.r0

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if direction is Direction.FORWARD and packet.kind is PacketKind.DATA:
            self._on_data(packet)
        elif direction is Direction.FORWARD and packet.kind is PacketKind.PROBE:
            self._on_probe(packet)
        elif is_e2e_ack(packet, direction):
            self._on_e2e_ack(packet)
        elif is_report_ack(packet, direction):
            self._on_report(packet)

    def _on_data(self, packet: DataPacket) -> None:
        if not self.is_fresh(packet):
            return
        identifier = packet.identifier
        entry = self.store.add(
            identifier, self.now, probed=False, dest_ack=None
        )
        entry["hold_handle"] = self.timer_with_slack(
            self._hold, lambda: self._expire_hold(identifier)
        )
        self.send_forward(packet)

    def _on_e2e_ack(self, ack: AckPacket) -> None:
        entry = self.store.get(ack.identifier)
        if entry is None or entry["probed"]:
            return
        # Phase 1: store a copy of D's ack, forward it toward S.
        entry["dest_ack"] = ack.report
        self.send_backward(ack)

    def _on_probe(self, probe: ProbePacket) -> None:
        entry = self.store.get(probe.identifier)
        if entry is None or entry["probed"]:
            return
        entry["probed"] = True
        entry["z"] = probe.challenge
        entry["sampled"] = self._predicate.is_sampled(probe.challenge)
        entry["hold_handle"].cancel()
        identifier = probe.identifier
        entry["report_handle"] = self.timer_with_slack(
            self.rtt_to_destination(), lambda: self._report_timeout(identifier)
        )
        self.send_forward(probe)

    def _on_report(self, ack: AckPacket) -> None:
        entry = self.store.get(ack.identifier)
        if entry is None or not entry["probed"]:
            return
        entry["report_handle"].cancel()
        if entry["sampled"]:
            report = self._originate(ack.identifier, entry)
        else:
            report = ObliviousReport.reencrypt(
                ack.report, self.enc_key, rng=self._nonce_rng
            )
        self.store.pop(ack.identifier, self.now)
        self.send_backward(
            AckPacket.create(
                ack.identifier,
                report=report,
                origin=self.position,
                sequence=ack.sequence,
                is_report=True,
            )
        )

    def _report_timeout(self, identifier: bytes) -> None:
        entry = self.store.get(identifier)
        if entry is None:
            return
        # Rule (a): no downstream ack -> originate own encrypted report.
        report = self._originate(identifier, entry)
        self.store.pop(identifier, self.now)
        self.send_backward(
            AckPacket.create(
                identifier, report=report, origin=self.position, is_report=True
            )
        )

    def _originate(self, identifier: bytes, entry: dict) -> bytes:
        return ObliviousReport.originate(
            self.position,
            _report_challenge(identifier, entry["z"]),
            entry["dest_ack"],
            mac_key=self.mac_key,
            enc_key=self.enc_key,
            rng=self._nonce_rng,
        )

    def _expire_hold(self, identifier: bytes) -> None:
        entry = self.store.get(identifier)
        if entry is not None and not entry["probed"]:
            self.store.pop(identifier, self.now)


class Paai2Destination(DestinationAgent):
    """Destination for PAAI-2: always acks, always answers probes."""

    def __init__(self, protocol: "Paai2Protocol") -> None:
        super().__init__(protocol)
        self.enc_key = protocol.keys.encryption_key(self.position)
        self._nonce_rng = protocol.simulator.rng.nonce_source("node-dest")
        self._hold = 1.5 * protocol.params.r0

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if direction is Direction.FORWARD and packet.kind is PacketKind.DATA:
            self._on_data(packet)
        elif direction is Direction.FORWARD and packet.kind is PacketKind.PROBE:
            self._on_probe(packet)

    def _on_data(self, packet: DataPacket) -> None:
        if not self.is_fresh(packet):
            return
        identifier = packet.identifier
        tag = mac(self.mac_key, identifier)
        entry = self.store.add(identifier, self.now, dest_ack=tag)
        entry["hold_handle"] = self.timer_with_slack(
            self._hold, lambda: self._expire_hold(identifier)
        )
        self.path.stats.record_data_delivered()
        self.send_backward(
            AckPacket.create(
                identifier, report=tag, origin=self.position,
                sequence=packet.sequence, is_report=False,
            )
        )

    def _on_probe(self, probe: ProbePacket) -> None:
        entry = self.store.get(probe.identifier)
        if entry is None:
            return
        entry["hold_handle"].cancel()
        # T_d is true with probability 1: D is the selection backstop and
        # always originates a report when probed.
        report = ObliviousReport.originate(
            self.position,
            _report_challenge(probe.identifier, probe.challenge),
            entry["dest_ack"],
            mac_key=self.mac_key,
            enc_key=self.enc_key,
            rng=self._nonce_rng,
        )
        self.store.pop(probe.identifier, self.now)
        self.send_backward(
            AckPacket.create(
                probe.identifier, report=report, origin=self.position,
                is_report=True,
            )
        )

    def _expire_hold(self, identifier: bytes) -> None:
        if identifier in self.store:
            self.store.pop(identifier, self.now)


class Paai2Protocol(WireProtocol):
    """Wire instance of PAAI-2."""

    name = "paai2"
    confidence_variance_scale = staticmethod(
        lambda params: 2.0 * params.path_length
    )

    def _build_nodes(self):
        source = Paai2Source(self)
        forwarders = [
            Paai2Forwarder(self, position)
            for position in range(1, self.params.path_length)
        ]
        destination = Paai2Destination(self)
        return [source, *forwarders, destination]
