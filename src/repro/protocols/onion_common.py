"""Shared agents for the onion-report protocols (full-ack, PAAI-1, §10
Combination 1).

All three protocols use the same probe/onion machinery on intermediate
nodes and the destination; they differ only in *when* the source probes
and how long nodes hold per-packet state. The forwarder implements the
paper's phase-3 rules, including report *regeneration*: a node whose
report wait-timer expires without a downstream ack originates its own
onion layer — this is what pins a report dropped on link ``l_i`` to depth
``i`` instead of silently blaming ``l_0``.

The forwarder's handling of end-to-end acks is a policy knob:

* ``"none"`` — the protocol has no per-packet e2e acks (PAAI-1);
* ``"pop"`` — relay the ack and release the packet state (full-ack: once
  the destination's ack has passed, this node can no longer be asked to
  report, giving the ideal-case ``O(r_i ν)`` storage of Table 1 — and
  making a later probe stop exactly at the link where the ack was lost);
* ``"keep"`` — relay but keep state until the hold timer (Combination 1,
  where a probe may follow a lost ack and every node must still answer).
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.mac import mac, verify_mac
from repro.crypto.onion import OnionReport, OnionVerifier
from repro.exceptions import ConfigurationError
from repro.net.packets import (
    AckPacket,
    DataPacket,
    Direction,
    Packet,
    PacketKind,
    ProbePacket,
)
from repro.protocols.base import (
    DestinationAgent,
    ForwarderAgent,
    is_e2e_ack,
    is_report_ack,
)


def build_probe(protocol, identifier: bytes, sequence: int) -> ProbePacket:
    """Build a probe, optionally with footnote 7's per-hop MAC chain."""
    hop_macs = ()
    if protocol.params.authenticated_probes:
        hop_macs = tuple(
            mac(protocol.keys.mac_key(i), b"probe" + identifier)
            for i in range(1, protocol.params.path_length + 1)
        )
    return ProbePacket.create(identifier, sequence=sequence, hop_macs=hop_macs)


def probe_hop_valid(agent, probe: ProbePacket) -> bool:
    """Verify this hop's MAC on an authenticated probe."""
    if not agent.params.authenticated_probes:
        return True
    if len(probe.hop_macs) < agent.position:
        return False
    return verify_mac(
        agent.mac_key, b"probe" + probe.identifier, probe.hop_macs[agent.position - 1]
    )


def effective_onion_depth(verifier: OnionVerifier, report: Optional[bytes],
                          identifier: bytes) -> int:
    """Verify an onion report and return its effective depth.

    Beyond MAC validity, every layer must carry the packet identifier as
    its payload — this binds the report to the probed packet and stops an
    adversary splicing in a (valid) onion recorded for a different packet.
    """
    verdict = verifier.verify(report)
    depth = 0
    for layer in verdict.layers:
        if layer.payload != identifier:
            break
        depth = layer.position
    return depth


class OnionForwarder(ForwarderAgent):
    """Intermediate node for onion-report protocols.

    Parameters
    ----------
    hold:
        Seconds to keep per-packet state while waiting for a probe.
    e2e_policy:
        One of ``"none"``, ``"pop"``, ``"keep"`` (see module docstring).
    """

    def __init__(self, protocol, position: int, hold: float, e2e_policy: str) -> None:
        super().__init__(protocol, position)
        if e2e_policy not in ("none", "pop", "keep"):
            raise ConfigurationError(f"unknown e2e policy {e2e_policy!r}")
        self._hold = hold
        self._e2e_policy = e2e_policy

    # -- packet handling ---------------------------------------------------

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if direction is Direction.FORWARD and packet.kind is PacketKind.DATA:
            self._on_data(packet)
        elif direction is Direction.FORWARD and packet.kind is PacketKind.PROBE:
            self._on_probe(packet)
        elif is_e2e_ack(packet, direction):
            self._on_e2e_ack(packet)
        elif is_report_ack(packet, direction):
            self._on_report(packet)
        # Anything else is silently discarded (unknown identifier rule).

    def _on_data(self, packet: DataPacket) -> None:
        if not self.is_fresh(packet):
            return  # expired timestamp: discard (anti-withholding)
        identifier = packet.identifier
        entry = self.store.add(identifier, self.now, probed=False)
        entry["hold_handle"] = self.timer_with_slack(
            self._hold, lambda: self._expire_hold(identifier)
        )
        self.send_forward(packet)

    def _on_probe(self, probe: ProbePacket) -> None:
        entry = self.store.get(probe.identifier)
        if entry is None or entry["probed"]:
            return
        if not probe_hop_valid(self, probe):
            self.obs_mac_failures.inc()
            self.record_fault("probe_mac_failure")
            return
        entry["probed"] = True
        entry["hold_handle"].cancel()
        identifier = probe.identifier
        entry["report_handle"] = self.timer_with_slack(
            self.rtt_to_destination(), lambda: self._report_timeout(identifier)
        )
        self.send_forward(probe)

    def _on_e2e_ack(self, ack: AckPacket) -> None:
        if self._e2e_policy == "none":
            return
        entry = self.store.get(ack.identifier)
        if entry is None or entry["probed"]:
            return
        if self._e2e_policy == "pop":
            entry["hold_handle"].cancel()
            self.store.pop(ack.identifier, self.now)
        self.send_backward(ack)

    def _on_report(self, ack: AckPacket) -> None:
        entry = self.store.get(ack.identifier)
        if entry is None or not entry["probed"]:
            return
        entry["report_handle"].cancel()
        wrapped = OnionReport.wrap(
            self.position, ack.identifier, ack.report, self.mac_key
        )
        self.store.pop(ack.identifier, self.now)
        self.send_backward(
            AckPacket.create(
                ack.identifier,
                report=wrapped,
                origin=self.position,
                sequence=ack.sequence,
                is_report=True,
            )
        )

    # -- timers -------------------------------------------------------------

    def _expire_hold(self, identifier: bytes) -> None:
        entry = self.store.get(identifier)
        if entry is not None and not entry["probed"]:
            self.store.pop(identifier, self.now)

    def _report_timeout(self, identifier: bytes) -> None:
        entry = self.store.get(identifier)
        if entry is None:
            return
        # Rule (a): no downstream ack in time -> originate an onion report.
        report = OnionReport.originate(self.position, identifier, self.mac_key)
        self.store.pop(identifier, self.now)
        self.send_backward(
            AckPacket.create(
                identifier, report=report, origin=self.position, is_report=True
            )
        )


class OnionDestination(DestinationAgent):
    """Destination for onion-report protocols.

    Parameters
    ----------
    hold:
        Seconds to keep state while a probe may still arrive.
    ack_predicate:
        Decides whether a freshly received data packet triggers an
        immediate end-to-end ack: always for full-ack, never for PAAI-1,
        "if sampled under the shared K_d sampler" for Combination 1.
    """

    def __init__(self, protocol, hold: float, ack_predicate) -> None:
        super().__init__(protocol)
        self._hold = hold
        self._ack_predicate = ack_predicate

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if direction is Direction.FORWARD and packet.kind is PacketKind.DATA:
            self._on_data(packet)
        elif direction is Direction.FORWARD and packet.kind is PacketKind.PROBE:
            self._on_probe(packet)

    def _on_data(self, packet: DataPacket) -> None:
        if not self.is_fresh(packet):
            return
        identifier = packet.identifier
        entry = self.store.add(identifier, self.now)
        entry["hold_handle"] = self.timer_with_slack(
            self._hold, lambda: self._expire_hold(identifier)
        )
        self.path.stats.record_data_delivered()
        if self._ack_predicate(packet):
            tag = mac(self.mac_key, identifier)
            self.send_backward(
                AckPacket.create(
                    identifier, report=tag, origin=self.position,
                    sequence=packet.sequence, is_report=False,
                )
            )

    def _on_probe(self, probe: ProbePacket) -> None:
        entry = self.store.get(probe.identifier)
        if entry is None:
            return
        if not probe_hop_valid(self, probe):
            self.obs_mac_failures.inc()
            self.record_fault("probe_mac_failure")
            return
        entry["hold_handle"].cancel()
        self.store.pop(probe.identifier, self.now)
        report = OnionReport.originate(self.position, probe.identifier, self.mac_key)
        self.send_backward(
            AckPacket.create(
                probe.identifier, report=report, origin=self.position, is_report=True
            )
        )

    def _expire_hold(self, identifier: bytes) -> None:
        if identifier in self.store:
            self.store.pop(identifier, self.now)
