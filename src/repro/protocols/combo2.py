"""§10 Combination 2: one selected node acknowledges a selected fraction of
data packets.

PAAI-2's machinery with Combination 1's destination-keyed sampling: D
independently acks sampled packets; the source probes (with a PAAI-2
challenge, selection, and oblivious reports) only for sampled packets
whose ack is missing. Communication drops to ``O(p)`` per data packet —
the lowest of the family — at the price of PAAI-2's already-slow detection
degraded by a further ``1/p`` (Table 1's Combination 2 row).

Implementation-wise this is PAAI-2 with (a) the source monitoring only
sampled packets and (b) the destination acking only sampled packets;
forwarders are unchanged (they cannot tell sampled packets apart and hold
state for every packet).
"""

from __future__ import annotations

from repro.crypto.keys import derive_key
from repro.crypto.mac import mac
from repro.crypto.sampling import SecureSampler
from repro.net.packets import AckPacket, DataPacket
from repro.protocols.base import WireProtocol
from repro.protocols.combo1 import SAMPLING_ROLE
from repro.protocols.paai2 import (
    Paai2Destination,
    Paai2Forwarder,
    Paai2Source,
)


class Combo2Source(Paai2Source):
    """PAAI-2 source that only monitors sampled packets."""

    def __init__(self, protocol: "Combination2Protocol") -> None:
        super().__init__(protocol)
        self.sampler = SecureSampler(
            derive_key(self.keys.master_key(self.params.path_length), SAMPLING_ROLE),
            self.params.probe_frequency,
        )

    def _after_send(self, packet: DataPacket) -> None:
        if not self.sampler.is_sampled(packet.identifier):
            return
        self.obs_sampling_hits.inc()
        super()._after_send(packet)


class Combo2Destination(Paai2Destination):
    """PAAI-2 destination that only acks sampled packets."""

    def __init__(self, protocol: "Combination2Protocol") -> None:
        super().__init__(protocol)
        self._sampler = SecureSampler(
            derive_key(
                protocol.keys.master_key(protocol.params.path_length), SAMPLING_ROLE
            ),
            protocol.params.probe_frequency,
        )

    def _on_data(self, packet: DataPacket) -> None:
        if not self.is_fresh(packet):
            return
        identifier = packet.identifier
        tag = mac(self.mac_key, identifier)
        entry = self.store.add(identifier, self.now, dest_ack=tag)
        entry["hold_handle"] = self.timer_with_slack(
            self._hold, lambda: self._expire_hold(identifier)
        )
        self.path.stats.record_data_delivered()
        if self._sampler.is_sampled(identifier):
            self.send_backward(
                AckPacket.create(
                    identifier, report=tag, origin=self.position,
                    sequence=packet.sequence, is_report=False,
                )
            )


class Combination2Protocol(WireProtocol):
    """Wire instance of §10's Combination 2."""

    name = "combo2"
    confidence_variance_scale = staticmethod(
        lambda params: 2.0 * params.path_length
    )

    def _build_nodes(self):
        source = Combo2Source(self)
        forwarders = [
            Paai2Forwarder(self, position)
            for position in range(1, self.params.path_length)
        ]
        destination = Combo2Destination(self)
        return [source, *forwarders, destination]
