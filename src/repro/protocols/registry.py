"""Name-based protocol lookup.

The experiment harness, CLI, and benches refer to protocols by the names
used in the paper's tables: ``full-ack``, ``paai1``, ``paai2``,
``statfl``, ``combo1``, ``combo2``.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.exceptions import ConfigurationError
from repro.protocols.base import WireProtocol


def _registry() -> Dict[str, Type[WireProtocol]]:
    # Imported lazily to avoid circular imports at package init.
    from repro.protocols.combo1 import Combination1Protocol
    from repro.protocols.combo2 import Combination2Protocol
    from repro.protocols.fullack import FullAckProtocol
    from repro.protocols.paai1 import Paai1Protocol
    from repro.protocols.paai2 import Paai2Protocol
    from repro.protocols.sigack import SigAckProtocol
    from repro.protocols.statfl import StatisticalFLProtocol

    return {
        cls.name: cls
        for cls in (
            FullAckProtocol,
            Paai1Protocol,
            Paai2Protocol,
            StatisticalFLProtocol,
            Combination1Protocol,
            Combination2Protocol,
            SigAckProtocol,
        )
    }


def available_protocols() -> List[str]:
    """Names of all registered protocols, in the paper's table order."""
    return list(_registry())


def protocol_class(name: str) -> Type[WireProtocol]:
    """Look up a protocol class by its registry name."""
    registry = _registry()
    try:
        return registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(registry)}"
        ) from None


def make_protocol(name: str, simulator, params, **kwargs) -> WireProtocol:
    """Instantiate a protocol by name."""
    return protocol_class(name)(simulator, params, **kwargs)
