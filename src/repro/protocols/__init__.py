"""The AAI protocol family.

One module per protocol, each with wire-level agents running on the
discrete-event substrate:

* :mod:`repro.protocols.fullack` — the strawman full-ack scheme (§4);
* :mod:`repro.protocols.paai1` — PAAI-1, probabilistic packet sampling
  with onion reports (§6.1), the paper's recommended protocol;
* :mod:`repro.protocols.paai2` — PAAI-2, oblivious single-node selection
  (§6.2);
* :mod:`repro.protocols.statfl` — the statistical fault-localization
  baseline of Barak, Goldberg & Xiao (EUROCRYPT 2008), the paper's main
  comparison point;
* :mod:`repro.protocols.combo1` / :mod:`repro.protocols.combo2` — the two
  §10 combinations;
* :mod:`repro.protocols.models` — closed-form per-packet outcome
  distributions used by the fast Monte-Carlo engine;
* :mod:`repro.protocols.registry` — name-based protocol lookup.
"""

from repro.protocols.base import WireProtocol
from repro.protocols.combo1 import Combination1Protocol
from repro.protocols.combo2 import Combination2Protocol
from repro.protocols.fullack import FullAckProtocol
from repro.protocols.paai1 import Paai1Protocol
from repro.protocols.paai2 import Paai2Protocol
from repro.protocols.registry import available_protocols, make_protocol
from repro.protocols.statfl import StatisticalFLProtocol

__all__ = [
    "WireProtocol",
    "FullAckProtocol",
    "Paai1Protocol",
    "Paai2Protocol",
    "StatisticalFLProtocol",
    "Combination1Protocol",
    "Combination2Protocol",
    "available_protocols",
    "make_protocol",
]
