"""Shared wire-protocol scaffolding.

Every protocol instantiates the same cast — a source agent at ``F_0``,
forwarder agents at ``F_1 .. F_{d-1}``, a destination agent at ``F_d`` —
wired onto a :class:`~repro.net.path.Path`. This module provides the
constructor plumbing (key manager, path, adversary installation), the
traffic driver, and the agent base classes with the bookkeeping all
protocols share (pending tables, timers with slack, freshness checks,
overhead accounting).

Timer sizing: the paper's wait-times are expressed in worst-case round
trips (``r_i``). With uniform per-hop latency the bounds are exact, so we
add a small multiplicative slack to every timer to keep boundary events
(a packet arriving exactly at its deadline) deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.identification import IdentificationResult, identify_links
from repro.core.params import ProtocolParams
from repro.core.scoring import ScoreBoard
from repro.crypto.keys import KeyManager
from repro.exceptions import ConfigurationError
from repro.net.node import Node
from repro.net.packets import DataPacket, Direction, Packet, PacketKind
from repro.net.path import Path
from repro.net.simulator import Simulator
from repro.obs.registry import SIM_LATENCY_BUCKETS, get_registry

#: Fractional slack added to worst-case wait-timers.
TIMER_SLACK = 0.05


class SourceAgent(Node):
    """Base source ``F_0 = S``: sends data, drives scoring."""

    def __init__(self, protocol: "WireProtocol") -> None:
        super().__init__(position=0)
        self.protocol = protocol
        self.params = protocol.params
        self.keys = protocol.keys
        if self.params.score_window is not None:
            from repro.core.windows import WindowedScoreBoard

            self.board = WindowedScoreBoard(
                self.params.path_length, window=self.params.score_window
            )
        else:
            self.board = ScoreBoard(self.params.path_length)
        self._sequence = 0
        #: per-identifier in-flight state
        self.pending: Dict[bytes, Dict] = {}
        # Observability instruments, labeled by protocol *and* path: two
        # instances of the same protocol sharing a simulator (a mesh)
        # must never merge their counters. With metrics disabled these
        # are shared no-op singletons and the hot paths are additionally
        # gated on _obs_enabled.
        registry = get_registry()
        self._obs_enabled = registry.enabled
        name = protocol.name
        path = str(protocol.path.path_id)
        self.obs_rounds = registry.counter(
            "protocol.rounds", protocol=name, path=path
        )
        self.obs_probes_sent = registry.counter(
            "protocol.probes_sent", protocol=name, path=path
        )
        self.obs_acks_verified = registry.counter(
            "protocol.acks_verified", protocol=name, path=path
        )
        self.obs_mac_failures = registry.counter(
            "protocol.mac_failures", protocol=name, path=path
        )
        self.obs_sampling_hits = registry.counter(
            "protocol.sampling_hits", protocol=name, path=path
        )
        self.obs_report_timeouts = registry.counter(
            "protocol.report_timeouts", protocol=name, path=path
        )
        self.obs_round_latency = registry.histogram(
            "protocol.round_latency_seconds",
            buckets=SIM_LATENCY_BUCKETS,
            protocol=name,
            path=path,
        )

    # -- traffic -----------------------------------------------------------

    def send_data(self, payload: Optional[bytes] = None) -> DataPacket:
        """Send the next data packet and run protocol-specific follow-up."""
        if payload is None:
            payload = b"data-%016d" % self._sequence
        packet = DataPacket.create(
            payload=payload,
            timestamp=self.now,
            sequence=self._sequence,
            size=self.params.data_packet_size,
        )
        self._sequence += 1
        self.path.stats.record_data_sent(packet.size)
        self.send_forward(packet)
        self._after_send(packet)
        if self._obs_enabled:
            entry = self.pending.get(packet.identifier)
            if entry is not None:
                entry.setdefault("sent_at", packet.timestamp)
        return packet

    def _after_send(self, packet: DataPacket) -> None:
        """Protocol hook: arm timers / sampling for the packet just sent."""
        raise NotImplementedError

    # -- verdicts ----------------------------------------------------------

    def estimates(self) -> List[float]:
        """Per-link drop-rate estimates (protocol-specific estimator)."""
        raise NotImplementedError

    def identify(self) -> IdentificationResult:
        """Run the identify phase against the decision thresholds."""
        return identify_links(
            self.estimates(),
            threshold=self.protocol.decision_thresholds(),
            rounds=self.board.rounds,
        )

    # -- helpers -----------------------------------------------------------

    def timer_with_slack(self, base: float, action) -> object:
        return self.set_timer(base * (1.0 + TIMER_SLACK), action)

    def observe_round(self, entry: Optional[Dict] = None) -> None:
        """Count a resolved observation round for the metrics registry.

        When ``entry`` (the packet's popped ``pending`` record) carries a
        ``sent_at`` stamp, the round's wall-to-resolution latency in
        simulated seconds is recorded as well.
        """
        if not self._obs_enabled:
            return
        self.obs_rounds.inc()
        if entry:
            sent_at = entry.get("sent_at")
            if sent_at is not None:
                self.obs_round_latency.observe(self.now - sent_at)


class ForwarderAgent(Node):
    """Base intermediate node ``F_i``."""

    def __init__(self, protocol: "WireProtocol", position: int) -> None:
        if position <= 0:
            raise ConfigurationError("forwarder positions start at 1")
        super().__init__(position=position)
        self.protocol = protocol
        self.params = protocol.params
        #: MAC key shared with the source.
        self.mac_key = protocol.keys.mac_key(position)
        #: Authenticated-probe MAC failures observed at this node.
        self.obs_mac_failures = get_registry().counter(
            "protocol.node_mac_failures",
            protocol=protocol.name,
            node=str(position),
            path=str(protocol.path.path_id),
        )

    def is_fresh(self, packet: DataPacket) -> bool:
        """Phase-1 timestamp check against this node's (skewed) clock."""
        return self.clock.is_fresh(packet.timestamp, self.params.freshness_window)

    def rtt_to_destination(self) -> float:
        """Worst-case ``r_i`` from here to the destination."""
        return self.params.rtt_bound(self.position)

    def timer_with_slack(self, base: float, action) -> object:
        return self.set_timer(base * (1.0 + TIMER_SLACK), action)


class DestinationAgent(Node):
    """Base destination ``F_d = D``."""

    def __init__(self, protocol: "WireProtocol") -> None:
        super().__init__(position=protocol.params.path_length)
        self.protocol = protocol
        self.params = protocol.params
        self.mac_key = protocol.keys.mac_key(self.position)
        self.obs_mac_failures = get_registry().counter(
            "protocol.node_mac_failures",
            protocol=protocol.name,
            node=str(self.position),
            path=str(protocol.path.path_id),
        )

    def is_fresh(self, packet: DataPacket) -> bool:
        return self.clock.is_fresh(packet.timestamp, self.params.freshness_window)

    def timer_with_slack(self, base: float, action) -> object:
        return self.set_timer(base * (1.0 + TIMER_SLACK), action)


class WireProtocol:
    """A fully wired protocol instance on one simulated path.

    Parameters
    ----------
    simulator:
        Engine to run on.
    params:
        Protocol parameters.
    adversaries:
        Optional mapping ``position -> AdversaryStrategy`` installing
        compromised nodes.
    natural_loss:
        Per-link natural loss specification for the path; defaults to
        ``params.natural_loss`` on every link.
    key_seed:
        Seed for the pairwise-key infrastructure.
    clock_skews:
        Optional per-node clock offsets (loose synchronization).
    path:
        Optional pre-built path-like object to run over instead of
        constructing a fresh linear :class:`~repro.net.path.Path` —
        the seam mesh topologies use to run many protocol instances
        over routes that physically share links
        (:class:`repro.topology.mesh.RoutePath`). Mutually exclusive
        with ``natural_loss`` and ``clock_skews`` (those describe the
        path this constructor would otherwise build).
    """

    #: Registry name; subclasses override.
    name = "abstract"

    #: Vectorized round-model family implemented by
    #: ``repro.net.fastpath`` (``"onion-ack"``, ``"paai1"``,
    #: ``"statfl"``), or ``None`` when the protocol has no batched round
    #: model. ``None`` is the safe default: the backend seam
    #: (``repro.net.backend``) falls back to per-packet execution on the
    #: event engine, so unported protocols keep working unmodified.
    fastpath_family: Optional[str] = None

    def __init__(
        self,
        simulator: Simulator,
        params: ProtocolParams,
        adversaries: Optional[Dict[int, object]] = None,
        natural_loss=None,
        key_seed: bytes = b"repro-key-seed",
        clock_skews: Optional[Sequence[float]] = None,
        path=None,
    ) -> None:
        self.simulator = simulator
        self.params = params
        self.keys = KeyManager(params.path_length, seed=key_seed)
        if path is not None:
            if natural_loss is not None or clock_skews is not None:
                raise ConfigurationError(
                    "an injected path already fixes loss models and "
                    "clocks; natural_loss/clock_skews must be None"
                )
            if path.length != params.path_length:
                raise ConfigurationError(
                    f"injected path has {path.length} links but params "
                    f"expect {params.path_length}"
                )
            self.path = path
        else:
            if natural_loss is None:
                natural_loss = params.natural_loss
            self.path = Path(
                simulator,
                length=params.path_length,
                natural_loss=natural_loss,
                max_latency=params.max_link_latency,
                clock_skews=clock_skews,
            )
        self._thresholds: Optional[List[float]] = None
        nodes = self._build_nodes()
        if adversaries:
            for position, strategy in adversaries.items():
                if not 0 < position < params.path_length:
                    raise ConfigurationError(
                        f"adversaries must sit on intermediate nodes, got {position}"
                    )
                nodes[position].adversary = strategy
        self.path.attach_nodes(nodes)

    # -- construction -------------------------------------------------------

    def _build_nodes(self) -> List[Node]:
        """Create the agents ``[source, forwarders..., destination]``."""
        raise NotImplementedError

    @property
    def source(self) -> SourceAgent:
        return self.path.nodes[0]

    @property
    def destination(self) -> DestinationAgent:
        return self.path.nodes[-1]

    @property
    def forwarders(self) -> List[ForwarderAgent]:
        return self.path.nodes[1:-1]

    # -- driving -------------------------------------------------------------

    def run_traffic(
        self,
        count: int,
        rate: float,
        drain: Optional[float] = None,
    ) -> None:
        """Send ``count`` data packets at ``rate`` packets/second, then let
        the network drain.

        ``drain`` defaults to several worst-case round trips so every
        timer and in-flight report resolves before the call returns.
        """
        if count <= 0:
            raise ConfigurationError("count must be positive")
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        interval = 1.0 / rate
        start = self.simulator.now
        for index in range(count):
            self.simulator.schedule_at(
                start + index * interval, self.source.send_data
            )
        if drain is None:
            drain = 4.0 * self.params.r0
        self.simulator.run(until=start + count * interval + drain)

    # -- verdicts -------------------------------------------------------------

    def decision_thresholds(self) -> List[float]:
        """Per-link conviction thresholds for this protocol's estimator.

        An explicit ``params.decision_threshold`` wins (applied to every
        link). Otherwise thresholds are *calibrated*: the source knows the
        natural loss rate ρ and its own observation process, so it places
        each link's threshold at that link's expected natural blame rate
        plus the Hoeffding midpoint margin ``epsilon/2`` (see
        :mod:`repro.protocols.models`).
        """
        if self.params.decision_threshold is not None:
            return [self.params.decision_threshold] * self.params.path_length
        if self._thresholds is None:
            from repro.protocols.models import calibrated_thresholds

            self._thresholds = calibrated_thresholds(self.name, self.params)
        return self._thresholds

    #: Variance correction for confidence intervals: 1 for direct blame
    #: frequencies; interval-scoring protocols override (their estimator
    #: differences ~2d counts per link).
    confidence_variance_scale = 1.0

    def estimates(self) -> List[float]:
        return self.source.estimates()

    def identify(self) -> IdentificationResult:
        return self.source.identify()

    def windowed_identify(self) -> IdentificationResult:
        """Identify using the sliding-window estimates (requires
        ``params.score_window``); reacts to *current* behavior, catching
        intermittent adversaries that cumulative scoring dilutes."""
        board = self.board
        if not hasattr(board, "window_estimates"):
            raise ConfigurationError(
                "windowed_identify requires params.score_window"
            )
        from repro.core.identification import identify_links

        return identify_links(
            board.window_estimates(),
            threshold=self.decision_thresholds(),
            rounds=board.window_rounds,
        )

    def confident_identify(self):
        """Confidence-aware verdict (see :mod:`repro.core.confidence`):
        convicts/clears a link only once its Hoeffding interval at the
        deployment's ``sigma`` is clear of the threshold."""
        from repro.core.confidence import confident_identify

        scale = self.confidence_variance_scale
        if callable(scale):
            scale = scale(self.params)
        return confident_identify(
            self.estimates(),
            self.decision_thresholds(),
            rounds=self.board.rounds,
            sigma=self.params.sigma,
            variance_scale=scale,
        )

    @property
    def board(self) -> ScoreBoard:
        return self.source.board


def is_e2e_ack(packet: Packet, direction: Direction) -> bool:
    """True for a plain end-to-end ack traveling toward the source."""
    return (
        packet.kind is PacketKind.ACK
        and direction is Direction.REVERSE
        and not getattr(packet, "is_report", False)
    )


def is_report_ack(packet: Packet, direction: Direction) -> bool:
    """True for a report-carrying ack traveling toward the source."""
    return (
        packet.kind is PacketKind.ACK
        and direction is Direction.REVERSE
        and getattr(packet, "is_report", False)
    )
