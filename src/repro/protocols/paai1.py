"""PAAI-1: probabilistic packet sampling with onion reports (§6.1).

The source's secure-sampling algorithm selects each data packet with
probability ``p`` (a PRF under a key *only the source holds*, so nobody on
the path can tell monitored from unmonitored traffic). For every sampled
packet the source sends a probe; every node holding the packet identifier
answers with an onion report exactly as in full-ack. Amortized
communication overhead is ``O(p d)`` — ``O(1/d)`` at the paper's
``p = 1/d²`` — while the detection rate only degrades by the factor
``1/p`` (Theorem 2).

Observation rounds are *probed* packets: per probe the source either sees
a complete onion from D (no blame), a truncated onion blaming its cutoff
link, or nothing (blame ``l_0``, footnote 8).
"""

from __future__ import annotations

from typing import List

from repro.core.estimators import DirectEstimator
from repro.core.monitor import EndToEndMonitor
from repro.crypto.onion import OnionVerifier
from repro.crypto.sampling import SecureSampler
from repro.net.packets import AckPacket, DataPacket, Direction, Packet
from repro.protocols.base import SourceAgent, WireProtocol, is_report_ack
from repro.protocols.onion_common import (
    OnionDestination,
    OnionForwarder,
    build_probe,
    effective_onion_depth,
)


class Paai1Source(SourceAgent):
    """Source agent for PAAI-1."""

    def __init__(self, protocol: "Paai1Protocol") -> None:
        super().__init__(protocol)
        self.verifier = OnionVerifier(self.keys.all_mac_keys())
        self.monitor = EndToEndMonitor(self.params.psi_threshold)
        self.sampler = SecureSampler(
            self.keys.source_sampling_key, self.params.probe_frequency
        )
        self._estimator = DirectEstimator(self.board)

    # -- sending --------------------------------------------------------------

    def _after_send(self, packet: DataPacket) -> None:
        if not self.sampler.is_sampled(packet.identifier):
            return
        identifier = packet.identifier
        sequence = packet.sequence
        self.monitor.record_sent()
        self.obs_sampling_hits.inc()
        if self.params.probe_delay > 0:
            # Delayed sampling (§5): the probe trails the data packet by a
            # gap long enough that a withheld packet's timestamp expires
            # before a withholder can usefully release it.
            self.pending[identifier] = {
                "handle": self.set_timer(
                    self.params.probe_delay,
                    lambda: self._send_probe(identifier, sequence),
                )
            }
        else:
            self.pending[identifier] = {}
            self._send_probe(identifier, sequence)

    def _send_probe(self, identifier: bytes, sequence: int) -> None:
        entry = self.pending.get(identifier)
        if entry is None:
            return
        entry["sequence"] = sequence
        entry.setdefault("probe_attempts", 0)
        probe = build_probe(self.protocol, identifier, sequence)
        self.path.stats.record_overhead(probe)
        self.send_forward(probe)
        self.obs_probes_sent.inc()
        entry["handle"] = self.timer_with_slack(
            self.params.r0, lambda: self._on_report_timeout(identifier)
        )

    # -- receiving --------------------------------------------------------------

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        if is_report_ack(packet, direction):
            self._on_report(packet)

    def _on_report(self, ack: AckPacket) -> None:
        entry = self.pending.get(ack.identifier)
        if entry is None:
            return
        entry["handle"].cancel()
        self.pending.pop(ack.identifier)
        depth = effective_onion_depth(self.verifier, ack.report, ack.identifier)
        if depth == self.params.path_length:
            # Complete onion from D: the sampled packet was delivered.
            self.monitor.record_acknowledged()
            self.obs_acks_verified.inc()
        else:
            self.board.add(depth)
        self.board.record_round()
        self.observe_round(entry)

    def _on_report_timeout(self, identifier: bytes) -> None:
        entry = self.pending.get(identifier)
        if entry is None:
            return
        # Degraded mode (probe_retries > 0): bounded retransmission
        # before the round is scored as lost.
        if entry["probe_attempts"] < self.params.probe_retries:
            entry["probe_attempts"] += 1
            self._send_probe(identifier, entry["sequence"])
            return
        self.pending.pop(identifier)
        self.obs_report_timeouts.inc()
        self.board.add(0)  # footnote 8
        self.board.record_round()
        self.observe_round(entry)

    # -- verdicts --------------------------------------------------------------

    def estimates(self) -> List[float]:
        return self._estimator.estimates()


class Paai1Protocol(WireProtocol):
    """Wire instance of PAAI-1."""

    name = "paai1"
    #: Sampled onion-probe lifecycle, replayable by repro.net.fastpath.
    fastpath_family = "paai1"

    def _build_nodes(self):
        params = self.params
        source = Paai1Source(self)
        # Nodes hold state for r0/2 awaiting a probe (§6.1 phase 1),
        # extended by the configured probe delay when delayed sampling is
        # hardened against withholding; a probed packet's state then lives
        # until the report is produced.
        hold = params.r0 / 2.0 + params.probe_delay
        forwarders = [
            OnionForwarder(self, position, hold=hold, e2e_policy="none")
            for position in range(1, params.path_length)
        ]
        destination = OnionDestination(
            self, hold=hold, ack_predicate=lambda packet: False
        )
        return [source, *forwarders, destination]
