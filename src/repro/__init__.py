"""repro — reproduction of "Packet-dropping Adversary Identification for
Data Plane Security" (Zhang, Jain & Perrig, ACM CoNEXT 2008).

Top-level convenience exports cover the everyday workflow: describe a
scenario, build a protocol on a simulator, drive traffic, read the
verdict. The subpackages hold the full system — see the package map in
README.md and the per-experiment index in DESIGN.md.

>>> from repro import ProtocolParams, Simulator, paper_scenario
>>> scenario = paper_scenario(params=ProtocolParams(probe_frequency=0.5))
>>> protocol = scenario.build_protocol("paai1", Simulator(seed=1))
>>> protocol.run_traffic(count=5000, rate=2000.0)
>>> sorted(protocol.identify().convicted)
[4]
"""

from repro.core.identification import IdentificationResult, identify_links
from repro.core.params import ProtocolParams
from repro.net.simulator import Simulator
from repro.protocols.registry import available_protocols, make_protocol
from repro.workloads.scenarios import Scenario, paper_scenario

__version__ = "1.0.0"

__all__ = [
    "ProtocolParams",
    "IdentificationResult",
    "identify_links",
    "Simulator",
    "available_protocols",
    "make_protocol",
    "Scenario",
    "paper_scenario",
    "__version__",
]
