"""ASCII chart rendering for figure outputs.

The offline environment has no plotting stack, but the paper's figures are
log-scale decay curves and step functions whose *shape* is the result. This
module renders data series as terminal charts so `figure2`/`figure3` output
reads like a figure, not just a table: a fixed character grid, optional
log axes, multiple series overlaid with distinct glyphs.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Glyphs assigned to successive series.
GLYPHS = "ox+*#@"


def _log_safe(value: float, floor: float) -> float:
    return math.log10(max(value, floor))


def render_chart(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    title: Optional[str] = None,
    y_floor: float = 1e-4,
) -> str:
    """Render ``[(label, [(x, y), ...]), ...]`` as an ASCII chart.

    ``log_y`` plots y on a log axis with values below ``y_floor`` clamped
    (Figure 2's FP/FN curves hit exact zero once converged).
    """
    if width < 16 or height < 4:
        raise ConfigurationError("chart too small to be legible")
    points_by_series = [(label, list(points)) for label, points in series]
    all_points = [p for _, points in points_by_series for p in points]
    if not all_points:
        return f"{title or 'chart'}: (no data)"

    def x_of(value: float) -> float:
        return _log_safe(value, 1e-12) if log_x else value

    def y_of(value: float) -> float:
        return _log_safe(value, y_floor) if log_y else value

    xs = [x_of(x) for x, _ in all_points]
    ys = [y_of(y) for _, y in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (_, points) in enumerate(points_by_series):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in points:
            column = int(
                (x_of(x) - x_low) / (x_high - x_low) * (width - 1)
            )
            row = int(
                (y_of(y) - y_low) / (y_high - y_low) * (height - 1)
            )
            grid[height - 1 - row][column] = glyph

    def y_tick(row: int) -> str:
        value = y_low + (y_high - y_low) * (height - 1 - row) / (height - 1)
        if log_y:
            value = 10 ** value
        return f"{value:8.3g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height):
        prefix = y_tick(row) if row % 4 == 0 or row == height - 1 else " " * 8
        lines.append(f"{prefix} |{''.join(grid[row])}")
    lines.append(" " * 9 + "+" + "-" * width)
    left = 10 ** x_low if log_x else x_low
    right = 10 ** x_high if log_x else x_high
    axis = f"{left:<10.4g}"
    axis += " " * max(0, width - len(axis) - 1)
    axis += f"{right:>10.4g}"
    lines.append(" " * 10 + axis)
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {label}"
        for i, (label, _) in enumerate(points_by_series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def fpfn_chart(curve, title: str) -> str:
    """Figure 2-style chart: FP and FN vs packets, log-log."""
    fp = [(cp, rate) for cp, rate in zip(curve.checkpoints, curve.fp_rates)]
    fn = [(cp, rate) for cp, rate in zip(curve.checkpoints, curve.fn_rates)]
    return render_chart(
        [("false positive", fp), ("false negative", fn)],
        log_x=True,
        log_y=True,
        title=title,
    )


def storage_chart(series_list, title: str) -> str:
    """Figure 3-style chart: storage occupancy vs time, linear axes."""
    series = [
        (s.label, [(t, occ) for t, occ in s.samples]) for s in series_list
    ]
    return render_chart(series, title=title)
