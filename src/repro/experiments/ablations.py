"""Ablation experiments backing the paper's corollaries and security
arguments.

* E-A1 — Corollary 1: an adversary splitting its drop budget across
  packet types achieves the same end-to-end damage and the same per-link
  blame as the uniform strategy.
* E-A2 — Corollary 3: sensitivity of the detection rate to sigma, rho and
  d (analytic sweep).
* E-A3 — footnote 6's incrimination attack: against a *leaky* selection
  scheme (the attacker can see who was selected) an honest link gets
  framed; against PAAI-2's oblivious acks the attacker is reduced to
  blind guessing, which Theorem 1 charges to its own links.
* E-A4 — burst loss: the protocols' behavior when the i.i.d. loss
  assumption is replaced by a Gilbert-Elliott channel of the same average
  rate (robustness probe beyond the paper).
* E-A5 — Corollary 2: a stealthy adversary (per-link rate below the
  conviction margin) deployed concentrated on one path vs. spread one
  link per path; total network damage grows linearly with z under the
  spread deployment and is never worse than the concentrated one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.adversary.incriminate import IncriminationAttacker
from repro.adversary.selective import SelectiveDropper
from repro.adversary.uniform import UniformDropper
from repro.analysis.detection import detection_packets
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.experiments.report import render_table
from repro.net.loss import BernoulliLoss, GilbertElliottLoss
from repro.net.packets import Direction, PacketKind
from repro.net.simulator import Simulator
from repro.protocols.registry import make_protocol


# ---------------------------------------------------------------------------
# E-A1: Corollary 1
# ---------------------------------------------------------------------------


@dataclass
class Corollary1Result:
    uniform_psi: float
    selective_psi: float
    uniform_blame: List[int]
    selective_blame: List[int]
    packets: int

    def render(self) -> str:
        return render_table(
            headers=["strategy", "end-to-end drop rate", "blame profile"],
            rows=[
                ["uniform (all kinds)", round(self.uniform_psi, 4), str(self.uniform_blame)],
                ["selective (data-heavy)", round(self.selective_psi, 4), str(self.selective_blame)],
            ],
            title=(
                "Corollary 1: per-type drop rates give the adversary no "
                f"advantage ({self.packets} packets, full-ack observer)"
            ),
        )


def run_corollary1(
    packets: int = 4000,
    rate: float = 2000.0,
    seed: int = 0,
    params: Optional[ProtocolParams] = None,
) -> Corollary1Result:
    """Compare a uniform dropper against a selective dropper with the same
    total budget, under the full-ack observer."""
    if params is None:
        params = ProtocolParams()

    def run_with(strategy_factory):
        simulator = Simulator(seed=seed)
        strategy = strategy_factory(simulator.rng.stream("adversary"))
        protocol = make_protocol(
            "full-ack", simulator, params, adversaries={4: strategy}
        )
        protocol.run_traffic(count=packets, rate=rate)
        return protocol

    uniform = run_with(lambda rng: UniformDropper(0.02, rng))
    # Same per-round budget concentrated on data packets (the probability
    # that *some* packet of the round is dropped matches ~0.02 per
    # traversal pair).
    selective = run_with(
        lambda rng: SelectiveDropper(
            {
                (PacketKind.DATA, Direction.FORWARD): 0.0396,
                (PacketKind.ACK, Direction.REVERSE): 0.0,
            },
            rng,
        )
    )
    return Corollary1Result(
        uniform_psi=uniform.source.monitor.psi,
        selective_psi=selective.source.monitor.psi,
        uniform_blame=uniform.board.scores,
        selective_blame=selective.board.scores,
        packets=packets,
    )


# ---------------------------------------------------------------------------
# E-A2: Corollary 3 sensitivity sweep
# ---------------------------------------------------------------------------


@dataclass
class Corollary3Result:
    rows: List[list]

    def render(self) -> str:
        return render_table(
            headers=["parameter", "value", "full-ack", "PAAI-1", "PAAI-2"],
            rows=self.rows,
            title="Corollary 3: detection-rate sensitivity (packets)",
        )


def run_corollary3(params: Optional[ProtocolParams] = None) -> Corollary3Result:
    """Analytic sweep of sigma, rho (epsilon fixed), and d."""
    if params is None:
        params = ProtocolParams()
    rows = []
    for sigma in (0.1, 0.03, 0.003):
        local = params.replace(sigma=sigma)
        rows.append(
            [
                "sigma",
                sigma,
                detection_packets("full-ack", local),
                detection_packets("paai1", local),
                detection_packets("paai2", local),
            ]
        )
    for rho in (0.005, 0.01, 0.02):
        local = params.replace(natural_loss=rho, alpha=rho + params.epsilon)
        rows.append(
            [
                "rho (eps fixed)",
                rho,
                detection_packets("full-ack", local),
                detection_packets("paai1", local),
                detection_packets("paai2", local),
            ]
        )
    for d in (4, 6, 8, 10):
        local = params.replace(
            path_length=d, probe_frequency=1.0 / d ** 2
        )
        rows.append(
            [
                "d (p=1/d^2)",
                d,
                detection_packets("full-ack", local),
                detection_packets("paai1", local),
                detection_packets("paai2", local),
            ]
        )
    return Corollary3Result(rows=rows)


# ---------------------------------------------------------------------------
# E-A3: incrimination attack
# ---------------------------------------------------------------------------


@dataclass
class IncriminationResult:
    leaky_estimates: List[float]
    oblivious_estimates: List[float]
    target_link: int
    leaky_convicts_honest: bool
    oblivious_convicts_honest: bool

    def render(self) -> str:
        return render_table(
            headers=["setting", "estimates", "honest link framed?"],
            rows=[
                [
                    "leaky selection (oracle)",
                    str([round(e, 4) for e in self.leaky_estimates]),
                    self.leaky_convicts_honest,
                ],
                [
                    "PAAI-2 oblivious acks",
                    str([round(e, 4) for e in self.oblivious_estimates]),
                    self.oblivious_convicts_honest,
                ],
            ],
            title=(
                "Footnote 6 incrimination attack against honest link "
                f"l{self.target_link}"
            ),
        )


def run_incrimination(
    target_link: int = 2,
    packets: int = 30_000,
    rate: float = 5000.0,
    seed: int = 0,
    params: Optional[ProtocolParams] = None,
) -> IncriminationResult:
    """Run the footnote 6 attack against PAAI-2, with and without a
    selection oracle (the oracle models a broken, non-oblivious scheme)."""
    if params is None:
        params = ProtocolParams()

    if target_link < 1:
        raise ConfigurationError("target link must be downstream of F_1")

    def run_with(oracle_from_protocol, guess_rate):
        simulator = Simulator(seed=seed)
        protocol = make_protocol("paai2", simulator, params)
        # The attacker must sit upstream of the framed node so the reports
        # it wants to drop pass through it; F_1 sees them all.
        attacker_position = 1
        oracle = oracle_from_protocol(protocol)
        attacker = IncriminationAttacker(
            target_link=target_link,
            selection_oracle=oracle,
            rng=simulator.rng.stream("incriminator"),
            guess_rate=guess_rate,
        )
        protocol.path.nodes[attacker_position].adversary = attacker
        protocol.run_traffic(count=packets, rate=rate)
        return protocol

    # Leaky scheme: the attacker can recompute the selection — a stand-in
    # for any subset-ack protocol whose acks reveal their origin.
    def leaky_oracle(protocol):
        def oracle(identifier):
            entry = protocol.source.pending.get(identifier)
            if entry is None or "selected" not in entry:
                return -1
            return entry["selected"]

        return oracle

    leaky = run_with(leaky_oracle, guess_rate=0.0)
    # PAAI-2's actual guarantee: no oracle exists; the best the attacker
    # can do is drop report acks blindly, which lands on its own link l_0.
    oblivious = run_with(lambda protocol: None, guess_rate=0.5)

    threshold = leaky.decision_thresholds()[target_link]
    leaky_estimates = leaky.estimates()
    oblivious_estimates = oblivious.estimates()
    return IncriminationResult(
        leaky_estimates=leaky_estimates,
        oblivious_estimates=oblivious_estimates,
        target_link=target_link,
        leaky_convicts_honest=leaky_estimates[target_link] > threshold,
        oblivious_convicts_honest=oblivious_estimates[target_link] > threshold,
    )


# ---------------------------------------------------------------------------
# E-A5: Corollary 2 — deploying z malicious links across paths
# ---------------------------------------------------------------------------


@dataclass
class Corollary2Result:
    """Concentrated vs. spread deployment of z stealthy malicious links."""

    z: int
    node_rate: float
    concentrated_damage: float
    concentrated_convictions: int
    spread_damage: float
    spread_convictions: int
    spread_damage_by_z: List[float]
    packets_per_path: int

    def render(self) -> str:
        deployment_table = render_table(
            headers=[
                "deployment",
                "total malicious drop mass",
                "links convicted",
            ],
            rows=[
                [
                    f"all {self.z} on one path",
                    round(self.concentrated_damage, 4),
                    self.concentrated_convictions,
                ],
                [
                    f"one per path ({self.z} paths)",
                    round(self.spread_damage, 4),
                    self.spread_convictions,
                ],
            ],
            title=(
                "Corollary 2: stealthy adversary deployment "
                f"(z={self.z}, per-node rate {self.node_rate}, "
                f"{self.packets_per_path} packets/path)"
            ),
        )
        linearity = render_table(
            headers=["z (spread)", "cumulative damage"],
            rows=[
                [index + 1, round(value, 4)]
                for index, value in enumerate(self.spread_damage_by_z)
            ],
            title="\nSpread damage grows ~linearly with z",
        )
        return deployment_table + "\n" + linearity


def run_corollary2(
    z: int = 3,
    node_rate: float = 0.008,
    packets: int = 8000,
    rate: float = 4000.0,
    seed: int = 0,
    params: Optional[ProtocolParams] = None,
) -> Corollary2Result:
    """Compare the total network damage of z stealthy malicious nodes
    deployed on one path vs. one per path, under PAAI-1 monitoring.

    ``node_rate`` is chosen below the conviction margin (ε = 0.02 by
    default), so a correctly-spread adversary stays undetected on every
    path. The measured quantity is Corollary 2's "total malicious drop
    rate across all paths containing compromised links": the sum over
    paths of the malicious component of the end-to-end drop rate.
    """
    from repro.workloads.scenarios import Scenario

    if params is None:
        params = ProtocolParams(probe_frequency=0.25)
    if not 1 <= z <= params.path_length - 2:
        raise ConfigurationError("z must leave room on the path")

    def run_path(malicious_nodes, seed_offset):
        from repro.net.packets import Direction, PacketKind

        scenario = Scenario(params=params, malicious_nodes=malicious_nodes)
        simulator = Simulator(seed=seed + seed_offset)
        protocol = scenario.build_protocol("paai1", simulator)
        protocol.run_traffic(count=packets, rate=rate)
        stats = protocol.path.stats
        # Damage = data packets the adversary itself destroyed (ground
        # truth), as a fraction of the path's traffic — Corollary 2's
        # "malicious drop rate" without the natural-loss noise floor.
        malicious_data_drops = sum(
            node.drops.get((PacketKind.DATA, Direction.FORWARD), 0)
            for _, node in sorted(stats.node_drops.items())
        )
        damage = malicious_data_drops / packets
        convictions = len(protocol.identify().convicted)
        return damage, convictions

    # Concentrated: nodes F2 .. F_{2+z-1} on one path.
    concentrated_nodes = {2 + index: node_rate for index in range(z)}
    concentrated_damage, concentrated_convictions = run_path(
        concentrated_nodes, seed_offset=0
    )

    # Spread: one malicious node (F4) on each of z independent paths.
    spread_damage = 0.0
    spread_convictions = 0
    spread_damage_by_z = []
    for index in range(z):
        damage, convictions = run_path({4: node_rate}, seed_offset=100 + index)
        spread_damage += damage
        spread_convictions += convictions
        spread_damage_by_z.append(spread_damage)

    return Corollary2Result(
        z=z,
        node_rate=node_rate,
        concentrated_damage=concentrated_damage,
        concentrated_convictions=concentrated_convictions,
        spread_damage=spread_damage,
        spread_convictions=spread_convictions,
        spread_damage_by_z=spread_damage_by_z,
        packets_per_path=packets,
    )


# ---------------------------------------------------------------------------
# E-A4: burst loss
# ---------------------------------------------------------------------------


@dataclass
class BurstLossResult:
    bernoulli_estimates: List[float]
    burst_estimates: List[float]
    average_rate: float

    def render(self) -> str:
        return render_table(
            headers=["loss model", "estimates (full-ack)"],
            rows=[
                ["Bernoulli (i.i.d.)", str([round(e, 4) for e in self.bernoulli_estimates])],
                ["Gilbert-Elliott (bursty)", str([round(e, 4) for e in self.burst_estimates])],
            ],
            title=(
                "Burst-loss ablation: same average rate "
                f"({self.average_rate:.3f}), different correlation"
            ),
        )


def run_burst_loss(
    packets: int = 5000,
    rate: float = 2000.0,
    seed: int = 0,
    params: Optional[ProtocolParams] = None,
) -> BurstLossResult:
    """Compare full-ack estimates under i.i.d. vs Gilbert-Elliott loss of
    the same average rate (no adversary)."""
    if params is None:
        params = ProtocolParams()
    burst = GilbertElliottLoss(good_loss=0.001, bad_loss=0.1, p_gb=0.01, p_bg=0.09)
    average = burst.average_rate

    def run_with(loss_factory):
        simulator = Simulator(seed=seed)
        protocol = make_protocol(
            "full-ack", simulator, params, natural_loss=loss_factory
        )
        protocol.run_traffic(count=packets, rate=rate)
        return protocol.estimates()

    bernoulli_estimates = run_with(
        lambda index, direction: BernoulliLoss(average)
    )
    burst_estimates = run_with(
        lambda index, direction: GilbertElliottLoss(
            good_loss=0.001, bad_loss=0.1, p_gb=0.01, p_bg=0.09
        )
    )
    return BurstLossResult(
        bernoulli_estimates=bernoulli_estimates,
        burst_estimates=burst_estimates,
        average_rate=average,
    )


# ---------------------------------------------------------------------------
# E-A6: windowed scoring vs intermittent adversaries
# ---------------------------------------------------------------------------


@dataclass
class WindowAblationResult:
    """Sliding-window scoring against an on/off adversary."""

    rows: List[list]
    burst_rate: float
    duty_cycle: str

    def render(self) -> str:
        return render_table(
            headers=[
                "window (rounds)",
                "peak windowed estimate at lM",
                "windowed verdict (ever)",
                "final cumulative estimate",
                "cumulative verdict",
            ],
            rows=self.rows,
            title=(
                "Windowed scoring vs an intermittent adversary "
                f"(burst rate {self.burst_rate}, duty {self.duty_cycle})"
            ),
        )


def run_window_ablation(
    windows=(200, 1000, 4000),
    packets: int = 7400,
    rate: float = 4000.0,
    seed: int = 0,
    params: Optional[ProtocolParams] = None,
) -> WindowAblationResult:
    """Quantify the windowed-scoring extension (repro.core.windows).

    An adversary at F4 is honest for 6400 packets, then drops a quarter of
    the traffic (data and probes) for a 200-packet burst. The duty cycle
    is tuned so the *cumulative* estimate never crosses the conviction
    threshold — an attack the paper's scoring cannot see. A periodic
    sampler records the windowed verdict throughout the run: a
    burst-sized window convicts during the burst; oversized windows
    dilute back toward the cumulative blind spot.
    """
    from repro.adversary.timing import IntermittentDropper

    base = params if params is not None else ProtocolParams(probe_frequency=1.0)
    rows = []
    burst_rate = 0.25
    malicious_link = 4
    for window in windows:
        local = base.replace(score_window=window)
        simulator = Simulator(seed=seed)
        protocol = make_protocol("paai1", simulator, local)
        protocol.path.nodes[malicious_link].adversary = IntermittentDropper(
            rate=burst_rate,
            off_packets=6400,
            on_packets=200,
            rng=simulator.rng.stream("intermittent"),
        )

        peak = {"estimate": 0.0, "convicted": False}

        def sample(peak=peak, protocol=protocol):
            verdict = protocol.windowed_identify()
            estimate = verdict.estimates[malicious_link]
            if estimate > peak["estimate"]:
                peak["estimate"] = estimate
            if malicious_link in verdict.convicted:
                peak["convicted"] = True

        # Sample the windowed verdict every ~100 packets.
        interval = 100.0 / rate
        for index in range(int(packets / 100) + 4):
            simulator.schedule_at(index * interval, sample)

        protocol.run_traffic(count=packets, rate=rate)
        cumulative = protocol.identify()
        rows.append(
            [
                window,
                round(peak["estimate"], 4),
                "CONVICTED" if peak["convicted"] else "-",
                round(cumulative.estimates[malicious_link], 4),
                "CONVICTED" if malicious_link in cumulative.convicted else "-",
            ]
        )
    return WindowAblationResult(
        rows=rows, burst_rate=burst_rate, duty_cycle="6400 off / 200 on"
    )


# ---------------------------------------------------------------------------
# E-A7: Theorem 1 — the detection threshold is sharp
# ---------------------------------------------------------------------------


@dataclass
class Theorem1Result:
    """Conviction probability around the stealth ceiling."""

    rows: List[list]
    ceiling: float
    horizon: int

    def render(self) -> str:
        return render_table(
            headers=[
                "node drop rate (x ceiling)",
                "rate",
                "P(convict l_M)",
                "undetected damage/pkt",
            ],
            rows=self.rows,
            title=(
                "Theorem 1 sharpness (PAAI-1): conviction probability vs "
                f"drop rate; stealth ceiling ~{self.ceiling} "
                f"({self.horizon} packets)"
            ),
        )


def run_theorem1_sharpness(
    factors=(0.5, 0.9, 1.25, 2.0),
    runs: int = 1500,
    horizon: int = 200_000,
    seed: int = 0,
    params: Optional[ProtocolParams] = None,
) -> Theorem1Result:
    """Measure how sharply detection switches on around the per-link
    budget Theorem 1's damage accounting rests on.

    With calibrated thresholds at the midpoint between the honest rate and
    the epsilon-adversary rate, the stealth ceiling for the §8.1 adversary
    is epsilon/2 per crossing: below it the conviction probability must
    stay ~sigma; above it, approach 1. The 'undetected damage' column is
    Theorem 1's quantity: drop mass an adversary at that rate inflicts
    while (if) staying unconvicted.
    """
    from repro.mc.detection import DetectionExperiment
    from repro.workloads.scenarios import Scenario

    if params is None:
        params = ProtocolParams()
    ceiling = params.epsilon / 2.0
    rows = []
    for factor in factors:
        rate = round(factor * ceiling, 6)
        scenario = Scenario(params=params, malicious_nodes={4: rate})
        result = DetectionExperiment(
            "paai1", scenario, runs=runs, horizon=horizon, seed=seed
        ).run()
        convicted = float(result.convictions[-1][:, 4].mean())
        # Damage per data packet the adversary inflicts (data drops only),
        # counted as "undetected" in proportion to unconvicted runs.
        survival = (1.0 - params.natural_loss) ** 4
        damage = rate * survival * (1.0 - convicted)
        rows.append(
            [
                factor,
                rate,
                round(convicted, 4),
                round(damage, 5),
            ]
        )
    return Theorem1Result(rows=rows, ceiling=ceiling, horizon=horizon)
