"""Experiment E-F2: Figure 2's false-positive / false-negative curves.

For each protocol, many independent runs are simulated with the
Monte-Carlo engine and the FP/FN rates are reported on a log-spaced time
axis (packets sent by the source), together with the convergence point
and the corresponding Theorem 2 bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.detection import detection_packets
from repro.exceptions import ConfigurationError
from repro.experiments.report import render_series, render_table
from repro.mc.detection import DetectionExperiment, DetectionResult
from repro.workloads.scenarios import Scenario, paper_scenario

#: Default horizons per protocol: a few multiples of the theory bound so
#: the curves reach (or clearly approach) convergence.
DEFAULT_HORIZONS = {
    "full-ack": 6_000,
    "paai1": 150_000,
    "paai2": 600_000,
    "combo1": 150_000,
    "combo2": 1_000_000,
    "statfl": 1_000_000,
}


@dataclass
class Figure2Result:
    """One protocol's Figure 2 panel."""

    protocol: str
    detection: DetectionResult
    theory_bound_packets: float
    sigma: float

    @property
    def convergence(self) -> Optional[int]:
        return self.detection.convergence_packets(self.sigma)

    @property
    def average_packets(self) -> float:
        return self.detection.average_detection_packets()

    def render(self, per_link: bool = False) -> str:
        from repro.experiments.charts import fpfn_chart

        curve = self.detection.curve
        blocks = [
            fpfn_chart(
                curve,
                f"Figure 2: FP/FN vs packets — {self.protocol} "
                f"({curve.runs} runs, log-log)",
            ),
            "",
            render_series(
                "Underlying series",
                curve.as_rows(),
                x_label="packets",
                y_labels=["false positive", "false negative"],
            ),
        ]
        if per_link:
            errors = self.detection.per_link_error_rates()
            links = errors.shape[1]
            rows = [
                (checkpoint, *[round(float(e), 4) for e in errors[index]])
                for index, checkpoint in enumerate(self.detection.checkpoints)
            ]
            blocks.append(
                render_series(
                    "\nPer-link verdict error rates (FP for honest links, "
                    "FN for malicious)",
                    rows,
                    x_label="packets",
                    y_labels=[f"l{link}" for link in range(links)],
                )
            )
        blocks.append(
            render_table(
                headers=["quantity", "value"],
                rows=[
                    ["theory bound (packets)", self.theory_bound_packets],
                    ["converged at (packets)", self.convergence],
                    ["average exact verdict (packets)", self.average_packets],
                    ["sigma", self.sigma],
                ],
                title="\nSummary",
            )
        )
        return "\n".join(blocks)


def run_figure2(
    protocol: str,
    scenario: Optional[Scenario] = None,
    runs: int = 2000,
    horizon: Optional[int] = None,
    seed: int = 0,
    shards: Optional[int] = None,
    jobs: int = 1,
    backend: str = "model",
) -> Figure2Result:
    """Regenerate one Figure 2 panel (a: full-ack, b: paai1, c: paai2; the
    harness accepts any registry protocol for extension studies).

    ``jobs`` fans the Monte-Carlo shards over a process pool; the panel
    is identical for every ``jobs`` value at the same seed. ``backend``
    selects the execution engine (``model``, the historical default;
    ``fastpath``; or ``event`` — see ``docs/PERFORMANCE.md``).
    """
    if scenario is None:
        scenario = paper_scenario()
    if horizon is None:
        try:
            horizon = DEFAULT_HORIZONS[protocol]
        except KeyError:
            raise ConfigurationError(
                f"no default horizon for {protocol!r}"
            ) from None
    experiment = DetectionExperiment(
        protocol, scenario, runs=runs, horizon=horizon, seed=seed,
        shards=shards, backend=backend,
    )
    return Figure2Result(
        protocol=protocol,
        detection=experiment.run(jobs=jobs),
        theory_bound_packets=detection_packets(protocol, scenario.params),
        sigma=scenario.params.sigma,
    )
