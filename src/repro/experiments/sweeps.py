"""Measured parameter sweeps (E-S1, extension).

Corollary 3 is an *analytic* sensitivity statement; this harness measures
it: sweep one deployment parameter, run the Monte-Carlo detection
experiment at each value, and report the measured convergence point next
to the Theorem 2 bound. Confirms, with simulation rather than formulas,
that sigma dominates full-ack/PAAI-1 detection while path length barely
moves it — and that PAAI-2 degrades with distance/path length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.analysis.detection import detection_packets
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.experiments.report import render_table
from repro.mc.detection import DetectionExperiment
from repro.workloads.scenarios import Scenario

#: Horizon multiplier over the theory bound so convergence is reachable.
HORIZON_FACTOR = 4.0


@dataclass
class SweepPoint:
    value: object
    theory_bound: float
    measured_convergence: Optional[int]
    measured_average: float


@dataclass
class SweepResult:
    protocol: str
    parameter: str
    points: List[SweepPoint]

    def render(self) -> str:
        return render_table(
            headers=[
                self.parameter,
                "theory bound (pkts)",
                "measured convergence (pkts)",
                "measured avg exact (pkts)",
            ],
            rows=[
                [
                    point.value,
                    point.theory_bound,
                    point.measured_convergence,
                    point.measured_average,
                ]
                for point in self.points
            ],
            title=f"Measured sweep: {self.protocol} vs {self.parameter}",
        )


def sweep_detection(
    protocol: str,
    parameter: str,
    values: Sequence,
    make_params: Callable[[object], ProtocolParams],
    malicious_node: Optional[int] = None,
    node_rate: float = 0.02,
    runs: int = 500,
    seed: int = 0,
    max_horizon: int = 2_000_000,
) -> SweepResult:
    """Run the detection experiment across parameter values.

    Parameters
    ----------
    make_params:
        Maps a swept value to a full :class:`ProtocolParams`.
    malicious_node:
        Adversary position; defaults to ``d - 2`` of each setting (keeps
        the target link interior as ``d`` varies).
    """
    if not values:
        raise ConfigurationError("values must be non-empty")
    points: List[SweepPoint] = []
    for value in values:
        params = make_params(value)
        position = (
            malicious_node
            if malicious_node is not None
            else params.path_length - 2
        )
        scenario = Scenario(
            params=params, malicious_nodes={position: node_rate}
        )
        bound = detection_packets(protocol, params)
        horizon = int(min(max_horizon, max(2000, HORIZON_FACTOR * bound)))
        result = DetectionExperiment(
            protocol, scenario, runs=runs, horizon=horizon, seed=seed
        ).run()
        points.append(
            SweepPoint(
                value=value,
                theory_bound=bound,
                measured_convergence=result.convergence_packets(params.sigma),
                measured_average=result.average_detection_packets(),
            )
        )
    return SweepResult(protocol=protocol, parameter=parameter, points=points)


def run_corollary3_measured(
    runs: int = 500, seed: int = 0
) -> List[SweepResult]:
    """The measured version of Corollary 3: sigma, d, and rho sweeps for
    full-ack and PAAI-1, plus PAAI-2's d sweep."""
    results = []
    results.append(
        sweep_detection(
            "full-ack",
            "sigma",
            [0.1, 0.03, 0.01],
            lambda sigma: ProtocolParams(sigma=sigma),
            malicious_node=4,
            runs=runs,
            seed=seed,
        )
    )
    results.append(
        sweep_detection(
            "full-ack",
            "path length d",
            [4, 6, 8],
            lambda d: ProtocolParams(
                path_length=d, probe_frequency=1.0 / d ** 2
            ),
            runs=runs,
            seed=seed,
        )
    )
    results.append(
        sweep_detection(
            "full-ack",
            "rho (eps fixed)",
            [0.005, 0.01, 0.02],
            lambda rho: ProtocolParams(natural_loss=rho, alpha=rho + 0.02),
            malicious_node=4,
            runs=runs,
            seed=seed,
        )
    )
    results.append(
        sweep_detection(
            "paai2",
            "path length d",
            [4, 6, 8],
            lambda d: ProtocolParams(path_length=d),
            runs=max(200, runs // 2),
            seed=seed,
            max_horizon=400_000,
        )
    )
    return results
