"""Run every experiment and assemble a single reproduction report.

``run_all`` regenerates Tables 1-2, the Figure 2 panels, the Figure 3
panels and all ablations at a chosen scale, and returns (and optionally
writes) one consolidated text report — the "reproduce the paper in one
command" entry point behind ``python -m repro.cli report``.

The report decomposes into independent :class:`ExperimentSpec` tasks
(name + module-level callable + fully resolved kwargs), which is what
makes three things possible:

* **parallel execution** — ``jobs > 1`` fans the specs over a process
  pool (:mod:`repro.parallel`); every experiment seeds itself from the
  report seed, so the assembled report is identical for every ``jobs``
  value (only the runtime lines differ);
* **worker telemetry** — with ``collect_metrics=True`` each task runs
  under its own fresh :class:`~repro.obs.registry.MetricsRegistry`
  (in-process or in a worker) and ships the snapshot back; snapshots
  attach to the records and fold into one run-level view via
  :meth:`MetricsRegistry.merge` (:meth:`ReproductionReport.merged_metrics`);
* **checkpoint/resume** — with ``resume_path`` set, finished experiments
  append to a checkpoint JSON as they complete, and a rerun skips every
  experiment already recorded there (``report --resume``).

See ``docs/PARALLEL.md`` for the execution model.
"""

from __future__ import annotations

import hashlib  # repro: allow(CB001) -- checkpoint integrity fingerprint, not crypto
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments.ablations import (
    run_burst_loss,
    run_corollary1,
    run_corollary2,
    run_corollary3,
    run_incrimination,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3_panel
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.parallel.engine import RetryPolicy, run_tasks_completed

#: Scale presets: (table2 runs, figure2 runs, figure3 packets, ablation
#: packets). ``abl_packets`` feeds every packet-driven ablation —
#: Corollaries 1-2, the incrimination attack, and the burst-loss probe.
SCALES = {
    "smoke": {"runs": 60, "fig2_runs": 100, "packets": 400,
              "abl_packets": 1200},
    "quick": {"runs": 300, "fig2_runs": 500, "packets": 2000, "abl_packets": 8000},
    "full": {"runs": 5000, "fig2_runs": 10_000, "packets": 2000,
             "abl_packets": 30_000},
}

#: Checkpoint-file header (see ``docs/PARALLEL.md`` for the format).
CHECKPOINT_FORMAT = "repro-report-checkpoint"
CHECKPOINT_VERSION = 1


class OversubscriptionWarning(UserWarning):
    """``jobs`` exceeded the machine's core count; the run fell back to
    serial execution (results are identical either way)."""


def resolve_jobs(jobs: int) -> int:
    """Effective worker count for a ``jobs`` request.

    ``jobs == 0`` means "all cores" and is resolved downstream by the
    parallel engine. A request *above* the core count buys nothing —
    experiment shards are CPU-bound, so oversubscribed pools only add
    scheduler thrash and per-worker memory — and usually signals a
    copy-pasted flag from a bigger machine; it warns and falls back to a
    serial run (byte-identical output, only runtimes differ).
    """
    cpus = os.cpu_count() or 1
    if jobs > cpus:
        warnings.warn(
            f"jobs={jobs} exceeds this machine's {cpus} cores; "
            "falling back to a serial run (output is identical for "
            "every jobs value, only wall-clock time differs)",
            OversubscriptionWarning,
            stacklevel=3,
        )
        return 1
    return jobs


@dataclass
class ExperimentRecord:
    """One regenerated experiment."""

    name: str
    elapsed_seconds: float
    text: str
    #: Metrics-registry snapshot for this experiment (``collect_metrics``).
    metrics: Optional[dict] = None


@dataclass(frozen=True)
class ExperimentSpec:
    """One independent unit of report work.

    ``task`` must be a module-level callable (specs cross process
    boundaries by reference) and ``kwargs`` fully resolved plain data —
    workers never consult :data:`SCALES` themselves.
    """

    name: str
    task: Callable[..., object]
    kwargs: Dict[str, object] = field(default_factory=dict)


def build_specs(scale: str, seed: int = 0) -> List[ExperimentSpec]:
    """The report's experiment list at ``scale``, in canonical order."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}")
    settings = SCALES[scale]
    specs = [
        ExperimentSpec("Table 1", run_table1),
        ExperimentSpec(
            "Table 2", run_table2, {"runs": settings["runs"], "seed": seed}
        ),
    ]
    for protocol in ("full-ack", "paai1", "paai2"):
        specs.append(
            ExperimentSpec(
                f"Figure 2 ({protocol})",
                run_figure2,
                {"protocol": protocol, "runs": settings["fig2_runs"],
                 "seed": seed},
            )
        )
    for panel in ("a", "b", "c"):
        specs.append(
            ExperimentSpec(
                f"Figure 3 (panel {panel})",
                run_figure3_panel,
                {"panel": panel, "packets": settings["packets"], "seed": seed},
            )
        )
    specs.extend(
        [
            ExperimentSpec(
                "Ablation: Corollary 1",
                run_corollary1,
                {"packets": settings["abl_packets"], "seed": seed},
            ),
            ExperimentSpec(
                "Ablation: Corollary 2",
                run_corollary2,
                {"packets": settings["abl_packets"], "seed": seed},
            ),
            ExperimentSpec("Ablation: Corollary 3", run_corollary3),
            ExperimentSpec(
                "Ablation: incrimination (footnote 6)",
                run_incrimination,
                {"packets": settings["abl_packets"], "seed": seed},
            ),
            ExperimentSpec(
                "Ablation: burst loss",
                run_burst_loss,
                {"packets": settings["abl_packets"], "seed": seed},
            ),
        ]
    )
    return specs


def _execute_spec(payload: Tuple) -> ExperimentRecord:
    """Run one spec — in-process or in a pool worker — into a record."""
    name, task, kwargs, collect_metrics = payload
    from repro.parallel.engine import call_with_metrics

    # Monotonic, not wall-clock: NTP can step time.time() backwards,
    # which would record negative elapsed_seconds in the telemetry.
    started = time.monotonic()
    result, snapshot = call_with_metrics(
        lambda: task(**kwargs), collect_metrics
    )
    text = result.render() if hasattr(result, "render") else str(result)
    return ExperimentRecord(
        name=name,
        elapsed_seconds=time.monotonic() - started,
        text=text,
        metrics=snapshot,
    )


@dataclass
class ReproductionReport:
    """The consolidated report."""

    scale: str
    seed: int = 0
    #: Effective worker count the report ran with.
    jobs: int = 1
    #: Worker count the caller asked for; differs from ``jobs`` when the
    #: oversubscription guard forced a serial run.
    requested_jobs: Optional[int] = None
    records: List[ExperimentRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(record.elapsed_seconds for record in self.records)

    def runtime_breakdown(self) -> List[Tuple[str, float, float]]:
        """``(name, seconds, share_of_total)`` per experiment, slowest first."""
        total = self.total_seconds or 1.0
        return sorted(
            (
                (record.name, record.elapsed_seconds,
                 record.elapsed_seconds / total)
                for record in self.records
            ),
            key=lambda row: -row[1],
        )

    def render(self) -> str:
        header = (
            "Reproduction report — Packet-dropping Adversary Identification "
            "for Data Plane Security (CoNEXT 2008)\n"
            f"scale: {self.scale}; total runtime: {self.total_seconds:.1f}s\n"
        )
        sections = [header]
        for record in self.records:
            sections.append(
                f"\n{'#' * 70}\n# {record.name} "
                f"({record.elapsed_seconds:.1f}s)\n{'#' * 70}\n{record.text}"
            )
        if self.records:
            lines = [
                f"  {seconds:8.1f}s  {share:6.1%}  {name}"
                for name, seconds, share in self.runtime_breakdown()
            ]
            sections.append(
                f"\n{'#' * 70}\n# Runtime breakdown\n{'#' * 70}\n"
                + "\n".join(lines)
            )
        return "\n".join(sections)

    def merged_metrics(self) -> Optional[dict]:
        """Fold every per-experiment snapshot into one run-level snapshot.

        Counters and histograms add across experiments; the merge is
        associative, so serial and parallel runs of the same seed produce
        the same run-level totals. ``None`` when no record carries
        metrics.
        """
        from repro.obs.registry import MetricsRegistry

        snapshots = [r.metrics for r in self.records if r.metrics is not None]
        if not snapshots:
            return None
        merged = MetricsRegistry()
        for snapshot in snapshots:
            merged.merge(snapshot)
        return merged.snapshot()

    def to_json(self) -> dict:
        """Machine-readable telemetry: per-experiment runtimes + metrics."""
        return {
            "scale": self.scale,
            "seed": self.seed,
            "jobs": self.jobs,
            "requested_jobs": (
                self.jobs if self.requested_jobs is None
                else self.requested_jobs
            ),
            "total_seconds": self.total_seconds,
            "experiments": [
                {
                    "name": record.name,
                    "elapsed_seconds": record.elapsed_seconds,
                    "metrics": record.metrics,
                }
                for record in self.records
            ],
            "merged_metrics": self.merged_metrics(),
        }

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())


# -- checkpoint / resume ----------------------------------------------------


class CheckpointWarning(UserWarning):
    """A checkpoint file was unreadable or corrupt and is being ignored."""


def _records_checksum(records: List[dict]) -> str:
    """Content fingerprint over the canonical records encoding."""
    canonical = json.dumps(records, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _warn_corrupt(path: str, reason: str) -> None:
    warnings.warn(
        f"ignoring corrupt report checkpoint {path}: {reason}; "
        "the affected experiments will be re-run from scratch",
        CheckpointWarning,
        stacklevel=3,
    )


def load_checkpoint(path: str, scale: str, seed: int) -> Dict[str, ExperimentRecord]:
    """Records from a prior partial report, keyed by experiment name.

    Returns ``{}`` when ``path`` does not exist. A truncated, unparsable,
    or checksum-mismatched checkpoint (e.g. a crash mid-write on a
    filesystem without atomic rename) is *not* fatal: it emits a
    :class:`CheckpointWarning` and returns ``{}``, so the resumed report
    restarts the affected experiments instead of crashing.

    Two error classes stay hard :class:`ConfigurationError`\\ s, because
    they indicate the *caller* pointed at the wrong file rather than a
    damaged one: a well-formed JSON file that is not a report checkpoint,
    and a checkpoint written at a different scale/seed (resuming across
    configurations would silently mix incomparable results).
    """
    if not os.path.exists(path):
        return {}
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        _warn_corrupt(path, f"unreadable ({exc})")
        return {}
    if not isinstance(payload, dict):
        _warn_corrupt(path, "top-level value is not an object")
        return {}
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise ConfigurationError(
            f"{path} is not a report checkpoint "
            f"(missing format={CHECKPOINT_FORMAT!r})"
        )
    if payload.get("scale") != scale or payload.get("seed") != seed:
        raise ConfigurationError(
            f"checkpoint {path} was written at scale={payload.get('scale')!r} "
            f"seed={payload.get('seed')!r}; cannot resume at scale={scale!r} "
            f"seed={seed!r}"
        )
    records = payload.get("records", [])
    stored = payload.get("checksum")
    if stored is not None and stored != _records_checksum(records):
        _warn_corrupt(path, "records checksum mismatch")
        return {}
    try:
        return {
            entry["name"]: ExperimentRecord(
                name=entry["name"],
                elapsed_seconds=entry["elapsed_seconds"],
                text=entry["text"],
                metrics=entry.get("metrics"),
            )
            for entry in records
        }
    except (TypeError, KeyError) as exc:
        _warn_corrupt(path, f"malformed record entry ({exc!r})")
        return {}


def write_checkpoint(
    path: str,
    scale: str,
    seed: int,
    specs: List[ExperimentSpec],
    completed: Dict[str, ExperimentRecord],
) -> None:
    """Atomically persist the completed records (in canonical spec order).

    The payload carries a sha256 checksum over the canonical records
    encoding so :func:`load_checkpoint` can detect truncation or bit-rot
    that still parses as JSON.
    """
    records = [
        {
            "name": record.name,
            "elapsed_seconds": record.elapsed_seconds,
            "text": record.text,
            "metrics": record.metrics,
        }
        for record in (
            completed[spec.name] for spec in specs
            if spec.name in completed
        )
    ]
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "scale": scale,
        "seed": seed,
        "checksum": _records_checksum(records),
        "records": records,
    }
    staging = f"{path}.tmp"
    with open(staging, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(staging, path)


# -- entry point ------------------------------------------------------------


def run_all(
    scale: str = "quick",
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    collect_metrics: bool = False,
    jobs: int = 1,
    resume_path: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
) -> ReproductionReport:
    """Regenerate everything at the given scale ('smoke', 'quick', 'full').

    ``collect_metrics`` runs each experiment under its own fresh metrics
    registry and attaches the snapshot to the experiment's record.
    ``jobs`` fans the experiments over a process pool; the assembled
    report is identical to a serial run apart from measured runtimes.
    ``resume_path`` names a checkpoint file: experiments already recorded
    there are skipped, and every newly finished experiment is persisted
    to it immediately (so a crashed report resumes where it stopped).
    ``retry`` hardens execution against crashed or wedged workers: failed
    experiments are re-run on a fresh pool up to the policy's attempt
    budget (experiments are pure functions of their spec, so a retried
    report is identical to an undisturbed one).
    """
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}")
    requested_jobs = jobs
    jobs = resolve_jobs(jobs)
    specs = build_specs(scale, seed)
    completed: Dict[str, ExperimentRecord] = {}
    if resume_path:
        completed = load_checkpoint(resume_path, scale=scale, seed=seed)
    pending = [spec for spec in specs if spec.name not in completed]
    payloads = [
        (spec.name, spec.task, dict(spec.kwargs), collect_metrics)
        for spec in pending
    ]
    for _, record in run_tasks_completed(
        _execute_spec, payloads, jobs=jobs, retry=retry
    ):
        completed[record.name] = record
        if resume_path:
            write_checkpoint(resume_path, scale, seed, specs, completed)
        if progress is not None:
            progress(record.name)
    report = ReproductionReport(
        scale=scale, seed=seed, jobs=jobs, requested_jobs=requested_jobs
    )
    report.records = [completed[spec.name] for spec in specs]
    return report
