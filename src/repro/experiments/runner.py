"""Run every experiment and assemble a single reproduction report.

``run_all`` regenerates Tables 1-2, the Figure 2 panels, the Figure 3
panels and all ablations at a chosen scale, and returns (and optionally
writes) one consolidated text report — the "reproduce the paper in one
command" entry point behind ``python -m repro.cli report``.

With ``collect_metrics=True`` every experiment additionally runs under a
fresh :class:`~repro.obs.registry.MetricsRegistry`, and its snapshot is
attached to the experiment's record — the machine-readable telemetry
behind ``report --metrics-out``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.experiments.ablations import (
    run_burst_loss,
    run_corollary1,
    run_corollary2,
    run_corollary3,
    run_incrimination,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3_panel
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

#: Scale presets: (table2 runs, figure2 runs, figure3/ablation packets).
SCALES = {
    "quick": {"runs": 300, "fig2_runs": 500, "packets": 2000, "abl_packets": 8000},
    "full": {"runs": 5000, "fig2_runs": 10_000, "packets": 2000,
             "abl_packets": 30_000},
}


@dataclass
class ExperimentRecord:
    """One regenerated experiment."""

    name: str
    elapsed_seconds: float
    text: str
    #: Metrics-registry snapshot for this experiment (``collect_metrics``).
    metrics: Optional[dict] = None


@dataclass
class ReproductionReport:
    """The consolidated report."""

    scale: str
    seed: int = 0
    records: List[ExperimentRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(record.elapsed_seconds for record in self.records)

    def runtime_breakdown(self) -> List[Tuple[str, float, float]]:
        """``(name, seconds, share_of_total)`` per experiment, slowest first."""
        total = self.total_seconds or 1.0
        return sorted(
            (
                (record.name, record.elapsed_seconds,
                 record.elapsed_seconds / total)
                for record in self.records
            ),
            key=lambda row: -row[1],
        )

    def render(self) -> str:
        header = (
            "Reproduction report — Packet-dropping Adversary Identification "
            "for Data Plane Security (CoNEXT 2008)\n"
            f"scale: {self.scale}; total runtime: {self.total_seconds:.1f}s\n"
        )
        sections = [header]
        for record in self.records:
            sections.append(
                f"\n{'#' * 70}\n# {record.name} "
                f"({record.elapsed_seconds:.1f}s)\n{'#' * 70}\n{record.text}"
            )
        if self.records:
            lines = [
                f"  {seconds:8.1f}s  {share:6.1%}  {name}"
                for name, seconds, share in self.runtime_breakdown()
            ]
            sections.append(
                f"\n{'#' * 70}\n# Runtime breakdown\n{'#' * 70}\n"
                + "\n".join(lines)
            )
        return "\n".join(sections)

    def to_json(self) -> dict:
        """Machine-readable telemetry: per-experiment runtimes + metrics."""
        return {
            "scale": self.scale,
            "seed": self.seed,
            "total_seconds": self.total_seconds,
            "experiments": [
                {
                    "name": record.name,
                    "elapsed_seconds": record.elapsed_seconds,
                    "metrics": record.metrics,
                }
                for record in self.records
            ],
        }

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())


def run_all(
    scale: str = "quick",
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    collect_metrics: bool = False,
) -> ReproductionReport:
    """Regenerate everything at the given scale ('quick' or 'full').

    ``collect_metrics`` runs each experiment under its own fresh metrics
    registry and attaches the snapshot to the experiment's record.
    """
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}")
    settings = SCALES[scale]
    report = ReproductionReport(scale=scale, seed=seed)

    def record(name: str, producer: Callable[[], object]) -> None:
        started = time.time()
        snapshot = None
        if collect_metrics:
            from repro.obs.registry import MetricsRegistry, using_registry

            with using_registry(MetricsRegistry()) as registry:
                result = producer()
            snapshot = registry.snapshot()
        else:
            result = producer()
        text = result.render() if hasattr(result, "render") else str(result)
        report.records.append(
            ExperimentRecord(
                name=name,
                elapsed_seconds=time.time() - started,
                text=text,
                metrics=snapshot,
            )
        )
        if progress is not None:
            progress(name)

    record("Table 1", run_table1)
    record(
        "Table 2",
        lambda: run_table2(runs=settings["runs"], seed=seed),
    )
    for protocol in ("full-ack", "paai1", "paai2"):
        record(
            f"Figure 2 ({protocol})",
            lambda protocol=protocol: run_figure2(
                protocol, runs=settings["fig2_runs"], seed=seed
            ),
        )
    for panel in ("a", "b", "c"):
        record(
            f"Figure 3 (panel {panel})",
            lambda panel=panel: run_figure3_panel(
                panel, packets=settings["packets"], seed=seed
            ),
        )
    record("Ablation: Corollary 1", lambda: run_corollary1(seed=seed))
    record("Ablation: Corollary 2", lambda: run_corollary2(seed=seed))
    record("Ablation: Corollary 3", run_corollary3)
    record(
        "Ablation: incrimination (footnote 6)",
        lambda: run_incrimination(packets=settings["abl_packets"], seed=seed),
    )
    record("Ablation: burst loss", lambda: run_burst_loss(seed=seed))
    return report
