"""Experiment E-T2: Table 2 — theoretical bounds vs. average-case
simulation for detection time and storage overhead.

Detection bounds come from Theorem 2; the averages come from the
Monte-Carlo engine (per-run packets to a stable exact verdict, converted
to minutes at 100 packets/second, the paper's setting). Storage bounds
come from §7.4; the storage average is the mean occupancy of F1's packet
store in a wire simulation with the malicious l4 present, exactly the
paper's measurement. The statistical FL row reports the translated bound
and "N/A" averages, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.detection import detection_time_minutes
from repro.analysis.overhead import storage_bound_packets
from repro.constants import SENDING_RATE_SLOW
from repro.core.params import ProtocolParams
from repro.experiments.report import render_table
from repro.mc.detection import DetectionExperiment
from repro.metrics.storage import StorageRecorder
from repro.net.simulator import Simulator
from repro.protocols.registry import make_protocol
from repro.workloads.scenarios import Scenario, paper_scenario

#: Protocols in Table 2's row order.
TABLE2_PROTOCOLS = ["full-ack", "paai1", "paai2", "statfl"]

#: Monte-Carlo horizons per protocol (multiples of the theory bound).
_DETECTION_HORIZONS = {
    "full-ack": 6_000,
    "paai1": 150_000,
    "paai2": 600_000,
}


@dataclass
class Table2Row:
    protocol: str
    detection_bound_minutes: float
    detection_average_minutes: Optional[float]
    storage_bound_packets: float
    storage_average_packets: Optional[float]


@dataclass
class Table2Result:
    sending_rate: float
    rows: List[Table2Row]

    def render(self) -> str:
        return render_table(
            headers=[
                "Protocol",
                "Detection bound (min)",
                "Detection avg (min)",
                "Storage bound (pkts)",
                "Storage avg (pkts)",
            ],
            rows=[
                [
                    row.protocol,
                    round(row.detection_bound_minutes, 2),
                    None
                    if row.detection_average_minutes is None
                    else round(row.detection_average_minutes, 2),
                    round(row.storage_bound_packets, 2),
                    None
                    if row.storage_average_packets is None
                    else round(row.storage_average_packets, 2),
                ]
                for row in self.rows
            ],
            title=(
                "Table 2: theory vs simulation "
                f"(source rate {self.sending_rate:g} pkt/s; storage at F1 "
                "with malicious l4 present)"
            ),
        )


def _average_detection_minutes(
    protocol: str,
    scenario: Scenario,
    runs: int,
    seed: int,
    sending_rate: float,
    shards: Optional[int] = None,
    jobs: int = 1,
    backend: str = "model",
) -> float:
    experiment = DetectionExperiment(
        protocol,
        scenario,
        runs=runs,
        horizon=_DETECTION_HORIZONS[protocol],
        seed=seed,
        shards=shards,
        backend=backend,
    )
    packets = experiment.run(jobs=jobs).average_detection_packets()
    return packets / sending_rate / 60.0


def _average_storage_packets(
    protocol: str,
    scenario: Scenario,
    sending_rate: float,
    packets: int,
    seed: int,
) -> float:
    simulator = Simulator(seed=seed)
    adversaries = scenario.build_adversaries(simulator)
    wire = make_protocol(
        protocol, simulator, scenario.params, adversaries=adversaries
    )
    recorder = StorageRecorder().attach(wire.path.nodes[1])
    wire.run_traffic(count=packets, rate=sending_rate)
    horizon = packets / sending_rate
    return recorder.mean_occupancy(0.0, horizon)


def run_table2(
    params: Optional[ProtocolParams] = None,
    sending_rate: float = SENDING_RATE_SLOW,
    runs: int = 1000,
    storage_packets: int = 2000,
    seed: int = 0,
    shards: Optional[int] = None,
    jobs: int = 1,
    backend: str = "model",
) -> Table2Result:
    """Regenerate Table 2 (bounds + averages).

    ``jobs`` fans the Monte-Carlo shards of the detection averages over a
    process pool; the result is identical for every ``jobs`` value.
    ``backend`` selects the detection-average execution engine (the
    storage average always runs on the wire simulator, as in the paper).
    """
    if params is None:
        params = ProtocolParams()
    scenario = paper_scenario(params=params)
    rows: List[Table2Row] = []
    for protocol in TABLE2_PROTOCOLS:
        bound_minutes = detection_time_minutes(protocol, params, sending_rate)
        bound_storage = storage_bound_packets(
            protocol, params, sending_rate, "worst"
        )
        if protocol == "statfl":
            # The paper reports N/A averages for the statistical FL row:
            # its detection rate (~2e7 packets) is beyond simulation reach.
            rows.append(
                Table2Row(
                    protocol=protocol,
                    detection_bound_minutes=bound_minutes,
                    detection_average_minutes=None,
                    storage_bound_packets=bound_storage,
                    storage_average_packets=None,
                )
            )
            continue
        rows.append(
            Table2Row(
                protocol=protocol,
                detection_bound_minutes=bound_minutes,
                detection_average_minutes=_average_detection_minutes(
                    protocol, scenario, runs, seed, sending_rate,
                    shards=shards, jobs=jobs, backend=backend,
                ),
                storage_bound_packets=bound_storage,
                storage_average_packets=_average_storage_packets(
                    protocol, scenario, sending_rate, storage_packets, seed
                ),
            )
        )
    return Table2Result(sending_rate=sending_rate, rows=rows)
