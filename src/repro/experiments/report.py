"""Plain-text rendering of experiment outputs.

The paper's tables and figures are regenerated as aligned text tables and
numeric series — suitable for terminals, logs, and regression comparison
in EXPERIMENTS.md. No plotting dependency is required (or available
offline); every figure's underlying series is printed so the shape is
inspectable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_number(value, precision: int = 3) -> str:
    """Human-friendly numeric formatting (engineering-style for big/small)."""
    if value is None:
        return "N/A"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{value:.{precision}g}"
    if isinstance(value, int) or float(value).is_integer():
        if magnitude < 1e5:
            return str(int(value))
    return f"{value:.{precision}g}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    formatted_rows: List[List[str]] = [
        [format_number(cell) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def render_series(
    name: str,
    points: Sequence[tuple],
    x_label: str = "x",
    y_labels: Optional[Sequence[str]] = None,
) -> str:
    """Render a figure's data series as a table.

    ``points`` is a sequence of tuples ``(x, y1, y2, ...)``.
    """
    if not points:
        return f"{name}: (no data)"
    columns = len(points[0])
    if y_labels is None:
        y_labels = [f"y{i}" for i in range(1, columns)]
    headers = [x_label, *y_labels]
    return render_table(headers, points, title=name)
