"""Experiment harness: one runner per table/figure of the paper.

* :mod:`repro.experiments.table1` — Table 1 (analytic comparison);
* :mod:`repro.experiments.table2` — Table 2 (theory vs. simulation);
* :mod:`repro.experiments.figure2` — Figure 2(a-c) (FP/FN over time);
* :mod:`repro.experiments.figure3` — Figure 3(a-c) (storage over time);
* :mod:`repro.experiments.ablations` — Corollary 1/3 and attack ablations;
* :mod:`repro.experiments.report` — plain-text rendering of tables/series.
"""

from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3_panel
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

__all__ = [
    "run_table1",
    "run_table2",
    "run_figure2",
    "run_figure3_panel",
]
