"""Experiment E-T1: regenerate Table 1 (detection rate and overhead
comparison) plus the §7.2 in-text detection-rate example."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.comparison import Table1Row, table1_rows
from repro.analysis.detection import (
    statfl_detection_packets,
    tau1_fullack,
    tau2_paai1,
    tau3_paai2,
)
from repro.core.params import ProtocolParams
from repro.experiments.report import render_table


@dataclass
class Table1Result:
    """Structured Table 1 output."""

    params: ProtocolParams
    rows: List[Table1Row]
    example_rates: dict

    def render(self) -> str:
        table = render_table(
            headers=[
                "Protocol",
                "Detection (formula)",
                "Detection (pkts)",
                "Comm (formula)",
                "Comm (units/pkt)",
                "Storage worst",
                "(pkts)",
                "Storage ideal",
                "(pkts)",
            ],
            rows=[
                [
                    row.display_name,
                    row.detection_formula,
                    row.detection_packets,
                    row.communication_formula,
                    row.communication_units,
                    row.storage_worst_formula,
                    row.storage_worst_packets,
                    row.storage_ideal_formula,
                    row.storage_ideal_packets,
                ]
                for row in self.rows
            ],
            title="Table 1: detection rate and overhead comparison",
        )
        example = render_table(
            headers=["quantity", "value"],
            rows=sorted(self.example_rates.items()),
            title="\n§7.2 example (sigma=0.03, p=1/d^2, alpha=0.03, rho=0.01, d=6)",
        )
        return table + "\n" + example


def run_table1(
    params: Optional[ProtocolParams] = None,
    sending_rate: float = 100.0,
) -> Table1Result:
    """Build Table 1 under ``params`` (paper defaults when omitted)."""
    if params is None:
        params = ProtocolParams()
    rows = table1_rows(params, sending_rate=sending_rate)
    example_rates = {
        "tau1 (full-ack)": tau1_fullack(params),
        "tau2 (PAAI-1)": tau2_paai1(params),
        "tau3 (PAAI-2)": tau3_paai2(params),
        "statistical FL": statfl_detection_packets(params),
    }
    return Table1Result(params=params, rows=rows, example_rates=example_rates)
