"""Experiment E-F3: Figure 3's storage-overhead studies (wire simulation).

* Panel (a): storage at F1 over time, source rate 1000 pkt/s, 2000 data
  packets; full-ack shown with and without AAI (bypass of the identified
  adversary after 10^3 packets — its convergence point), PAAI-1 and
  PAAI-2 without (they have not converged yet at this horizon).
* Panel (b): same at 100 pkt/s.
* Panel (c): full-ack storage at F1, F3 and F5 with the malicious node's
  rate raised to 0.1 and a bypass after 1000 packets (1000 pkt/s).

Storage is measured exactly as in the paper: the number of packets a node
holds state for at any given time, read from the node's packet store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.constants import SENDING_RATE_FAST, SENDING_RATE_SLOW
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.experiments.report import render_series, render_table
from repro.metrics.storage import StorageRecorder
from repro.net.simulator import Simulator
from repro.protocols.registry import make_protocol
from repro.workloads.scenarios import Scenario, paper_scenario


@dataclass
class StorageSeries:
    """One storage-over-time curve."""

    label: str
    samples: List[Tuple[float, int]]
    peak: int
    mean: float


@dataclass
class Figure3Result:
    """All curves of one Figure 3 panel."""

    panel: str
    sending_rate: float
    packets: int
    series: List[StorageSeries] = field(default_factory=list)

    def render(self, max_rows: int = 25) -> str:
        from repro.experiments.charts import storage_chart

        blocks = [
            storage_chart(
                self.series,
                f"Figure 3({self.panel}): storage at sampled nodes over time",
            ),
            "",
            render_table(
                headers=["series", "peak (pkts)", "mean (pkts)"],
                rows=[[s.label, s.peak, round(s.mean, 2)] for s in self.series],
                title=(
                    f"Figure 3({self.panel}): storage overhead, "
                    f"rate={self.sending_rate:g} pkt/s, {self.packets} packets"
                ),
            )
        ]
        for series in self.series:
            samples = series.samples
            if len(samples) > max_rows:
                stride = max(1, len(samples) // max_rows)
                samples = samples[::stride]
            blocks.append(
                render_series(
                    f"\n{series.label}",
                    [(round(t, 3), occ) for t, occ in samples],
                    x_label="time (s)",
                    y_labels=["stored (pkts)"],
                )
            )
        return "\n".join(blocks)


def _run_storage_case(
    protocol_name: str,
    scenario: Scenario,
    sending_rate: float,
    packets: int,
    observe_nodes: List[int],
    bypass_after: Optional[int],
    seed: int,
    sample_points: int,
) -> Dict[int, StorageSeries]:
    simulator = Simulator(seed=seed)
    adversaries = scenario.build_adversaries(simulator)
    protocol = make_protocol(
        protocol_name, simulator, scenario.params, adversaries=adversaries
    )
    recorders = {
        position: StorageRecorder().attach(protocol.path.nodes[position])
        for position in observe_nodes
    }
    if bypass_after is not None and adversaries:
        bypass_time = bypass_after / sending_rate
        simulator.schedule_at(
            bypass_time,
            lambda: [
                strategy.bypass()
                for _, strategy in sorted(adversaries.items())
            ],
        )
    protocol.run_traffic(count=packets, rate=sending_rate)
    horizon = packets / sending_rate + 2.0 * scenario.params.r0
    step = horizon / sample_points
    label_suffix = " w/ AAI" if bypass_after is not None else " w/o AAI"
    series = {}
    for position, recorder in sorted(recorders.items()):
        samples = recorder.resample(0.0, horizon, step)
        series[position] = StorageSeries(
            label=f"{protocol_name} F{position}{label_suffix}",
            samples=samples,
            peak=recorder.peak,
            mean=recorder.mean_occupancy(0.0, horizon),
        )
    return series


def run_figure3_panel(
    panel: str,
    packets: int = 2000,
    seed: int = 0,
    sample_points: int = 50,
    params: Optional[ProtocolParams] = None,
) -> Figure3Result:
    """Regenerate one panel of Figure 3."""
    if panel not in ("a", "b", "c"):
        raise ConfigurationError("panel must be 'a', 'b' or 'c'")
    if params is None:
        params = ProtocolParams()

    if panel in ("a", "b"):
        rate = SENDING_RATE_FAST if panel == "a" else SENDING_RATE_SLOW
        scenario = paper_scenario(params=params)
        result = Figure3Result(panel=panel, sending_rate=rate, packets=packets)
        # Full-ack converges within the horizon: show both cases.
        for bypass in (1000, None):
            series = _run_storage_case(
                "full-ack", scenario, rate, packets, [1], bypass, seed, sample_points
            )
            result.series.append(series[1])
        # PAAI-1 / PAAI-2 have not converged after 2000 packets: w/o AAI.
        for name in ("paai1", "paai2"):
            series = _run_storage_case(
                name, scenario, rate, packets, [1], None, seed, sample_points
            )
            result.series.append(series[1])
        return result

    # Panel (c): full-ack at three positions, F4 dropping at 0.1, with a
    # bypass after the first 1000 packets.
    rate = SENDING_RATE_FAST
    scenario = paper_scenario(params=params, node_drop_rate=0.1)
    result = Figure3Result(panel=panel, sending_rate=rate, packets=packets)
    series = _run_storage_case(
        "full-ack", scenario, rate, packets, [1, 3, 5], 1000, seed, sample_points
    )
    for position in (1, 3, 5):
        result.series.append(series[position])
    return result
