"""Measured communication overhead (E-C1, extension).

§8's footnote 12: "We did not simulate the communication overhead because
the theoretical analysis already gives straightforward and tightly bounded
results." We can afford to: this experiment runs every protocol on the
wire simulator under the paper scenario, measures actual bytes on the
wire, and lays the measurement beside the Table 1 formulas — closing the
one loop the paper left open (and exposing the constants the O(·) rows
hide, e.g. full-ack's 32-byte identifiers vs PAAI-2's nonce-bearing
oblivious reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.overhead import communication_overhead
from repro.core.params import ProtocolParams
from repro.experiments.report import render_table
from repro.metrics.comm import summarize_communication
from repro.net.simulator import Simulator
from repro.workloads.scenarios import Scenario, paper_scenario

#: Protocols measured, in Table 1 row order plus the sig-ack extension.
MEASURED_PROTOCOLS = [
    "full-ack", "paai1", "paai2", "statfl", "combo1", "combo2", "sig-ack",
]


@dataclass
class CommTableRow:
    protocol: str
    analytic_units: Optional[float]
    measured_ratio: float
    measured_probes: int
    measured_acks: int
    control_bytes: int


@dataclass
class CommTableResult:
    packets: int
    rows: List[CommTableRow]

    def render(self) -> str:
        return render_table(
            headers=[
                "protocol",
                "analytic (O(1)-units/pkt)",
                "measured overhead (bytes ratio)",
                "probe txs",
                "ack txs",
                "control bytes",
            ],
            rows=[
                [
                    row.protocol,
                    row.analytic_units,
                    f"{100 * row.measured_ratio:.2f}%",
                    row.measured_probes,
                    row.measured_acks,
                    row.control_bytes,
                ]
                for row in self.rows
            ],
            title=(
                "Measured communication overhead "
                f"(paper scenario, {self.packets} packets)"
            ),
        )


def run_comm_table(
    packets: int = 1500,
    rate: float = 2000.0,
    seed: int = 0,
    params: Optional[ProtocolParams] = None,
    scenario: Optional[Scenario] = None,
) -> CommTableResult:
    """Measure on-the-wire overhead for every protocol."""
    if scenario is None:
        scenario = paper_scenario(params=params)
    psi = 1.0 - (1.0 - scenario.params.natural_loss) ** scenario.params.path_length
    rows: List[CommTableRow] = []
    for name in MEASURED_PROTOCOLS:
        simulator = Simulator(seed=seed)
        # Sig-ack's key pools make it slower; shorten its run.
        count = packets if name != "sig-ack" else min(packets, 400)
        protocol = scenario.build_protocol(name, simulator)
        protocol.run_traffic(count=count, rate=rate)
        summary = summarize_communication(protocol)
        try:
            analytic = communication_overhead(name, scenario.params, psi=psi)
        except Exception:
            analytic = None
        rows.append(
            CommTableRow(
                protocol=name,
                analytic_units=analytic,
                measured_ratio=summary.overhead_ratio,
                measured_probes=summary.probes,
                measured_acks=summary.acks,
                control_bytes=summary.control_bytes,
            )
        )
    return CommTableResult(packets=packets, rows=rows)
