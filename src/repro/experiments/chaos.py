"""Chaos harness: run protocols under named fault matrices (robustness).

A chaos *matrix* is a grid of ``(protocol, fault spec)`` cells. Every
cell builds an honest path (no adversary), installs the spec's fault
schedule (:mod:`repro.faults`) on the simulator, drives traffic, and
records what the protocol concluded. The gate is the robustness contract
of docs/ROBUSTNESS.md:

* **no unhandled exceptions** — whatever the schedule injects
  (corrupted MACs, crash windows, clock steps), the simulator must run
  to completion in every cell;
* **no false accusations** — on *benign* specs (faults within the
  paper's §3 assumptions) the confidence-aware verdict
  (:meth:`~repro.protocols.base.WireProtocol.confident_identify`) must
  convict nobody, because every node is honest. Non-benign specs
  (``corrupt-acks``, ``clock-wild``) violate the paper's operating
  assumptions on purpose, so they only assert survival, not verdicts.

Cells derive their seeds from the matrix root seed through
:class:`~repro.net.rng.RngFactory`, so a matrix run is a pure function
of ``(matrix, seed, packets, rate)`` — rerunning it reproduces the same
report byte for byte.
"""

from __future__ import annotations

import math
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.faults import FaultSpec, install_faults, preset
from repro.net.rng import RngFactory
from repro.net.simulator import Simulator
from repro.obs.registry import get_registry
from repro.protocols.registry import make_protocol

#: Specs whose faults stay inside the paper's §3 operating assumptions.
SMALL_SPECS = (
    "baseline",
    "benign-jitter",
    "benign-dup",
    "burst-blackout",
    "clock-skew",
    "crash-restart",
    "corrupt-acks",
)

#: The full matrix adds the beyond-assumption clock fault.
FULL_SPECS = SMALL_SPECS + ("clock-wild",)

SMALL_PROTOCOLS = ("full-ack", "paai1", "paai2")
FULL_PROTOCOLS = SMALL_PROTOCOLS + ("statfl", "sig-ack")

MATRICES = {
    "small": (SMALL_PROTOCOLS, SMALL_SPECS),
    "full": (FULL_PROTOCOLS, FULL_SPECS),
}

#: Protocol construction overrides for chaos cells. The statistical FL
#: baseline needs a short reporting interval to produce any estimate in
#: a few hundred packets, and full sampling so the honest-path estimate
#: noise is loss realization only (its default 1% sketch sampling needs
#: ~10^7 packets before estimates mean anything — Table 2).
PROTOCOL_KWARGS: Dict[str, Dict[str, object]] = {
    "statfl": {"fl_sampling": 1.0, "interval_length": 100},
}


def section7_bound(rounds: int, epsilon: float, links: int = 1) -> float:
    """§7's bound on the probability of any false accusation.

    Hoeffding: an honest link's estimate exceeds the midpoint threshold
    (margin ``epsilon/2``) with probability at most
    ``2 exp(-2 n (eps/2)^2)`` after ``n`` observation rounds; a union
    bound over ``links`` honest links gives the path-level figure. At
    small ``n`` the bound is vacuous (>= 1) — the theory promises
    nothing there, and callers should treat it as such.
    """
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    if links <= 0:
        raise ConfigurationError("links must be positive")
    if rounds <= 0:
        return 1.0
    per_link = 2.0 * math.exp(-2.0 * rounds * (epsilon / 2.0) ** 2)
    return min(1.0, links * per_link)


@dataclass
class ChaosCell:
    """Outcome of one ``(protocol, fault spec)`` cell."""

    protocol: str
    spec: str
    benign: bool
    seed: int
    rounds: int = 0
    estimates: List[float] = field(default_factory=list)
    thresholds: List[float] = field(default_factory=list)
    #: Links convicted by the confidence-aware verdict. Every node is
    #: honest, so on a benign spec any entry here is a false accusation.
    convicted: List[int] = field(default_factory=list)
    undecided: List[int] = field(default_factory=list)
    #: Links over threshold by the raw (confidence-blind) point estimate;
    #: informational — raw verdicts are noisy at chaos-scale round counts.
    raw_convicted: List[int] = field(default_factory=list)
    #: Per-node degraded-mode fault counters (position -> kind -> count).
    faults_seen: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: Injector-side ground truth of what was actually injected.
    injected: Dict[str, int] = field(default_factory=dict)
    #: §7 false-accusation bound at this cell's round count.
    fp_bound: float = 1.0
    #: Traceback of an unhandled exception, or None.
    error: Optional[str] = None

    @property
    def false_accusations(self) -> List[int]:
        return self.convicted if self.benign else []

    @property
    def ok(self) -> bool:
        return self.error is None and not self.false_accusations

    def to_json(self) -> dict:
        return {
            "protocol": self.protocol,
            "spec": self.spec,
            "benign": self.benign,
            "seed": self.seed,
            "rounds": self.rounds,
            "estimates": self.estimates,
            "thresholds": self.thresholds,
            "convicted": self.convicted,
            "undecided": self.undecided,
            "raw_convicted": self.raw_convicted,
            "false_accusations": self.false_accusations,
            "faults_seen": {
                str(position): dict(counts)
                for position, counts in sorted(self.faults_seen.items())
            },
            "injected": dict(sorted(self.injected.items())),
            "fp_bound": self.fp_bound,
            "error": self.error,
            "ok": self.ok,
        }


@dataclass
class ChaosReport:
    """Machine-readable robustness report for one matrix run."""

    matrix: str
    seed: int
    packets: int
    rate: float
    cells: List[ChaosCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def errors(self) -> List[ChaosCell]:
        return [cell for cell in self.cells if cell.error is not None]

    @property
    def false_accusation_cells(self) -> List[ChaosCell]:
        return [cell for cell in self.cells if cell.false_accusations]

    def to_json(self) -> dict:
        return {
            "format": "repro-chaos-report",
            "version": 1,
            "matrix": self.matrix,
            "seed": self.seed,
            "packets": self.packets,
            "rate": self.rate,
            "ok": self.ok,
            "cells": [cell.to_json() for cell in self.cells],
        }

    def render(self) -> str:
        lines = [
            f"Chaos matrix {self.matrix!r} — seed {self.seed}, "
            f"{self.packets} packets @ {self.rate:g}/s",
            f"{'protocol':>10} {'spec':>16} {'benign':>6} {'rounds':>6} "
            f"{'faults':>6} {'inject':>6} {'convicted':>10}  verdict",
        ]
        for cell in self.cells:
            faults_total = sum(
                sum(counts.values())  # repro: allow(ITER002) -- order-free sum
                for counts in cell.faults_seen.values()  # repro: allow(ITER002)
            )
            injected_total = sum(cell.injected.values())
            verdict = "OK" if cell.ok else (
                "EXCEPTION" if cell.error else "FALSE-ACCUSATION"
            )
            convicted = ",".join(map(str, cell.convicted)) or "-"
            lines.append(
                f"{cell.protocol:>10} {cell.spec:>16} "
                f"{str(cell.benign).lower():>6} {cell.rounds:>6} "
                f"{faults_total:>6} {injected_total:>6} {convicted:>10}  "
                f"{verdict}"
            )
        failures = [cell for cell in self.cells if not cell.ok]
        lines.append(
            f"\n{len(self.cells)} cells, {len(failures)} failing -> "
            f"{'OK' if self.ok else 'FAIL'}"
        )
        for cell in self.errors:
            lines.append(
                f"\n--- {cell.protocol} / {cell.spec}: unhandled exception ---\n"
                f"{cell.error}"
            )
        return "\n".join(lines)


def cell_seed(root_seed: int, protocol: str, spec_name: str) -> int:
    """Deterministic per-cell seed, independent across cells."""
    return RngFactory(root_seed).spawn(f"chaos:{protocol}:{spec_name}").seed


def run_chaos_cell(
    protocol_name: str,
    spec: FaultSpec,
    seed: int,
    packets: int = 300,
    rate: float = 50.0,
) -> ChaosCell:
    """Run one cell; never raises on simulator/protocol failure."""
    cell = ChaosCell(
        protocol=protocol_name, spec=spec.name, benign=spec.benign, seed=seed
    )
    try:
        simulator = Simulator(seed=seed)
        params = ProtocolParams()
        protocol = make_protocol(
            protocol_name, simulator, params,
            **PROTOCOL_KWARGS.get(protocol_name, {}),
        )
        horizon = packets / rate
        injector = install_faults(protocol.path, spec.with_horizon(horizon))
        protocol.run_traffic(packets, rate)
        verdict = protocol.confident_identify()
        identification = protocol.identify()
        cell.rounds = protocol.board.rounds
        cell.estimates = list(protocol.estimates())
        cell.thresholds = list(protocol.decision_thresholds())
        cell.convicted = list(verdict.convicted)
        cell.undecided = list(verdict.undecided)
        cell.raw_convicted = list(identification.convicted)
        cell.faults_seen = {
            node.position: dict(node.fault_counts)
            for node in protocol.path.nodes
            if node.fault_counts
        }
        cell.injected = dict(injector.injected)
        cell.fp_bound = section7_bound(
            cell.rounds, params.epsilon, links=params.path_length
        )
    except Exception:
        cell.error = traceback.format_exc()
    return cell


def matrix_cells(matrix: str) -> Tuple[Sequence[str], Sequence[str]]:
    """``(protocol names, spec names)`` for a named matrix."""
    try:
        return MATRICES[matrix]
    except KeyError:
        raise ConfigurationError(
            f"unknown chaos matrix {matrix!r}; available: "
            f"{', '.join(sorted(MATRICES))}"
        ) from None


def run_chaos_matrix(
    matrix: str = "small",
    seed: int = 0,
    packets: int = 300,
    rate: float = 50.0,
    protocols: Optional[Sequence[str]] = None,
    progress=None,
) -> ChaosReport:
    """Run a named fault matrix and return the robustness report.

    ``protocols`` restricts the matrix's protocol axis (for quick local
    iteration); specs always run in matrix order. The report is a pure
    function of the arguments.
    """
    if packets <= 0:
        raise ConfigurationError("packets must be positive")
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    matrix_protocols, spec_names = matrix_cells(matrix)
    if protocols:
        unknown = sorted(set(protocols) - set(matrix_protocols))
        if unknown:
            raise ConfigurationError(
                f"protocols {unknown} are not part of matrix {matrix!r} "
                f"(has: {', '.join(matrix_protocols)})"
            )
        matrix_protocols = [name for name in matrix_protocols if name in protocols]
    report = ChaosReport(matrix=matrix, seed=seed, packets=packets, rate=rate)
    registry = get_registry()
    for protocol_name in matrix_protocols:
        for spec_name in spec_names:
            cell = run_chaos_cell(
                protocol_name,
                preset(spec_name),
                seed=cell_seed(seed, protocol_name, spec_name),
                packets=packets,
                rate=rate,
            )
            report.cells.append(cell)
            if registry.enabled:
                registry.counter(
                    "chaos.cells",
                    matrix=matrix,
                    outcome="ok" if cell.ok else "fail",
                ).inc()
            if progress is not None:
                progress(cell)
    return report
