"""Table 1: detection rate and overhead comparison across all protocols.

Each row carries both the symbolic formula (as printed in the paper) and
its numeric value under a given parameterization, so the harness can
reproduce the table and the §7.2 example in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.detection import detection_packets
from repro.analysis.overhead import communication_overhead, storage_bound_packets
from repro.core.params import ProtocolParams

#: Display names in the paper's row order.
ROW_ORDER = ["full-ack", "paai1", "paai2", "statfl", "combo1", "combo2"]

DISPLAY_NAMES = {
    "full-ack": "Full-ack",
    "paai1": "PAAI-1",
    "paai2": "PAAI-2",
    "statfl": "Statistical FL [7]",
    "combo1": "Combination 1",
    "combo2": "Combination 2",
}

DETECTION_FORMULAS = {
    "full-ack": "ln(2/s) / (8 e^2 (1-r)^(2+d))",
    "paai1": "ln(2/s) / (8 p e^2 (1-r)^(2+d))",
    "paai2": "2^d ln(2/s)/(18 e^2) * d log(d)",
    "statfl": "d^2 ln(d/s) / (p e^2)",
    "combo1": "ln(2/s) / (8 p e^2 (1-r)^(2+d))",
    "combo2": "2^d ln(2/s)/(18 p e^2) * d log(d)",
}

COMMUNICATION_FORMULAS = {
    "full-ack": "O(1 + psi d)",
    "paai1": "O(p d)",
    "paai2": "O(1)",
    "statfl": "O(p e^2 / (d ln(d/s)))",
    "combo1": "O(p (1 + psi d))",
    "combo2": "O(p)",
}

STORAGE_FORMULAS = {
    "full-ack": ("O(2 r0 nu)", "O(r0 nu)"),
    "paai1": ("O(r0 (0.5+p) nu)", "O(r0 (0.5+p) nu)"),
    "paai2": ("O(2 r0 nu)", "O(r0 nu)"),
    "statfl": ("O(p r0 nu)", "O(p r0 nu)"),
    "combo1": ("O(r0 (0.5+2p) nu)", "O(r0 (0.5+2p) nu)"),
    "combo2": ("O(r0 (1+p) nu)", "O(r0 nu)"),
}


@dataclass
class Table1Row:
    """One protocol's row of Table 1, symbolic and numeric."""

    protocol: str
    display_name: str
    detection_formula: str
    detection_packets: float
    communication_formula: str
    communication_units: float
    storage_worst_formula: str
    storage_worst_packets: float
    storage_ideal_formula: str
    storage_ideal_packets: float


def table1_rows(
    params: ProtocolParams,
    sending_rate: float = 100.0,
    psi: float = None,
) -> List[Table1Row]:
    """Build Table 1 under ``params`` (defaults reproduce the paper's
    example setting)."""
    if psi is None:
        psi = 1.0 - (1.0 - params.natural_loss) ** params.path_length
    rows = []
    for name in ROW_ORDER:
        worst_formula, ideal_formula = STORAGE_FORMULAS[name]
        rows.append(
            Table1Row(
                protocol=name,
                display_name=DISPLAY_NAMES[name],
                detection_formula=DETECTION_FORMULAS[name],
                detection_packets=detection_packets(name, params),
                communication_formula=COMMUNICATION_FORMULAS[name],
                communication_units=communication_overhead(name, params, psi=psi),
                storage_worst_formula=worst_formula,
                storage_worst_packets=storage_bound_packets(
                    name, params, sending_rate, "worst"
                ),
                storage_ideal_formula=ideal_formula,
                storage_ideal_packets=storage_bound_packets(
                    name, params, sending_rate, "ideal"
                ),
            )
        )
    return rows
