"""Hoeffding-inequality utilities.

Theorem 2's detection rates come from requiring an
``(epsilon_theta, sigma)``-accurate estimate of each link's drop rate:

    Pr(|theta_hat - theta*| > eps_theta) < sigma

For a mean of ``n`` i.i.d. bounded observations, Hoeffding gives
``Pr(|theta_hat - theta*| > t) <= 2 exp(-2 n t**2)``, so
``n >= ln(2/sigma) / (2 t**2)`` suffices. Testing against the midpoint
between the natural rate and the threshold uses ``t = eps/2``, producing
the ``8 eps**2`` denominator seen in Theorem 2's ``tau_1``.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def hoeffding_sample_size(accuracy: float, sigma: float) -> float:
    """Samples needed so the empirical mean is within ``accuracy`` of the
    true mean with probability at least ``1 - sigma``.

    >>> n = hoeffding_sample_size(accuracy=0.01, sigma=0.03)
    >>> 20_000 < n < 22_000
    True
    """
    if accuracy <= 0.0:
        raise ConfigurationError("accuracy must be positive")
    if not 0.0 < sigma < 1.0:
        raise ConfigurationError("sigma must be in (0, 1)")
    return math.log(2.0 / sigma) / (2.0 * accuracy ** 2)


def hoeffding_deviation(samples: float, sigma: float) -> float:
    """Inverse view: the accuracy achievable with ``samples`` observations
    at confidence ``1 - sigma``."""
    if samples <= 0:
        raise ConfigurationError("samples must be positive")
    if not 0.0 < sigma < 1.0:
        raise ConfigurationError("sigma must be in (0, 1)")
    return math.sqrt(math.log(2.0 / sigma) / (2.0 * samples))


def hoeffding_failure_probability(samples: float, accuracy: float) -> float:
    """Two-sided tail bound ``2 exp(-2 n t^2)`` (may exceed 1 for tiny n)."""
    if samples <= 0 or accuracy <= 0:
        raise ConfigurationError("samples and accuracy must be positive")
    return 2.0 * math.exp(-2.0 * samples * accuracy ** 2)
