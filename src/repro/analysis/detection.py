"""Theorem 2: detection rates.

The detection rate of a protocol is the number of data packets the source
must transmit before the converged condition holds (false positives and
negatives below ``sigma``). The paper's closed forms, reproduced here:

* full-ack:  ``tau_1 = ln(2/sigma) / (8 eps^2 (1-rho)^(2+d))``
* PAAI-1:    ``tau_2 = tau_1 / p``
* PAAI-2:    ``tau_3 = 2^d ln(2/sigma) / (18 eps^2) * d * log2(d)``
* statistical FL [Barak et al.], translated:
  ``d^2 ln(d/sigma) / (p eps^2)``

With the running example (sigma=0.03, eps=0.02, rho=0.01, d=6, p=1/36)
these evaluate to ~1.5e3, ~5.4e4, ~6e5 and ~2e7 — the §7.2 example and
the bound column of Table 2.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError


def tau1_fullack(params: ProtocolParams) -> float:
    """Theorem 2(a): packets to converge for the full-ack scheme."""
    eps = params.epsilon
    rho = params.natural_loss
    d = params.path_length
    return math.log(2.0 / params.sigma) / (
        8.0 * eps ** 2 * (1.0 - rho) ** (2 + d)
    )


def tau2_paai1(params: ProtocolParams) -> float:
    """Theorem 2(b): packets to converge for PAAI-1 (``tau_1 / p``)."""
    return tau1_fullack(params) / params.probe_frequency


def tau3_paai2(params: ProtocolParams) -> float:
    """Theorem 2(c): packets to converge for PAAI-2."""
    d = params.path_length
    eps = params.epsilon
    return (
        (2.0 ** d)
        * math.log(2.0 / params.sigma)
        / (18.0 * eps ** 2)
        * d
        * math.log2(max(d, 2))
    )


def statfl_detection_packets(
    params: ProtocolParams, fl_sampling: Optional[float] = None
) -> float:
    """Detection rate of the statistical FL protocol [7], translated to the
    paper's notation: ``d^2 ln(d/sigma) / (p eps^2)``."""
    p = fl_sampling if fl_sampling is not None else params.probe_frequency
    if not 0.0 < p <= 1.0:
        raise ConfigurationError("sampling probability must be in (0, 1]")
    d = params.path_length
    return d ** 2 * math.log(d / params.sigma) / (p * params.epsilon ** 2)


def combo1_detection_packets(params: ProtocolParams) -> float:
    """Combination 1 keeps PAAI-1's detection rate (Table 1)."""
    return tau2_paai1(params)


def combo2_detection_packets(params: ProtocolParams) -> float:
    """Combination 2: PAAI-2's rate degraded by ``1/p`` (Table 1)."""
    return tau3_paai2(params) / params.probe_frequency


_DETECTION = {
    "full-ack": tau1_fullack,
    "paai1": tau2_paai1,
    "paai2": tau3_paai2,
    "statfl": statfl_detection_packets,
    "combo1": combo1_detection_packets,
    "combo2": combo2_detection_packets,
    # The footnote-1 asymmetric variant shares full-ack's observation
    # process; only its overhead differs (measured on the wire).
    "sig-ack": tau1_fullack,
}


def detection_packets(name: str, params: ProtocolParams) -> float:
    """Theoretical detection rate (packets) for a registry-named protocol."""
    try:
        formula = _DETECTION[name]
    except KeyError:
        raise ConfigurationError(f"no detection formula for {name!r}") from None
    return formula(params)


def detection_time_minutes(
    name: str, params: ProtocolParams, sending_rate: float
) -> float:
    """Detection *time* at a given source rate — Table 2's unit.

    ``detection time = detection rate / sending rate`` (§3.1).
    """
    if sending_rate <= 0:
        raise ConfigurationError("sending rate must be positive")
    return detection_packets(name, params) / sending_rate / 60.0
