"""Theorem 1 and Corollaries 1-2: bounding the malicious end-to-end drop
rate an undetected adversary can sustain.

Under the converged condition, each malicious link can drop at most an
``alpha`` fraction of traffic without crossing its per-link threshold.
The end-to-end damage then follows from composition:

* full-ack / PAAI-1: ``zeta = z * alpha`` for ``z`` malicious links
  (each localized drop is charged to one link, so the budgets add);
* PAAI-2: with the end-to-end threshold ``psi_th = 1 - (1-alpha)^{2d}``,
  the adversary may push the path to ``psi_th`` while natural loss only
  explains ``1 - (1-rho)^{2(d-z)}`` of it, leaving
  ``zeta = 1 - (1-alpha)^{2d} / (1-rho)^{2(d-z)}``.

Corollary 1 (no advantage from per-type drop rates) is an invariance
statement; :func:`equivalent_uniform_rate` provides the reduction used in
its proof and the ablation experiment verifies it empirically.

Corollary 2: ``zeta`` grows ~linearly in the natural loss ``rho`` (PAAI-2)
and, across paths, one malicious link per path maximizes total damage.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError


def psi_threshold(params: ProtocolParams) -> float:
    """Theorem 1(b)'s end-to-end drop threshold ``1 - (1-alpha)^{2d}``."""
    return params.psi_threshold


def malicious_drop_bound(name: str, params: ProtocolParams, z: int = 1) -> float:
    """Maximum undetected malicious end-to-end drop rate with ``z``
    compromised links (Theorem 1)."""
    if z < 0 or z > params.path_length:
        raise ConfigurationError(
            f"z must be in [0, {params.path_length}], got {z}"
        )
    if name in ("full-ack", "paai1", "combo1"):
        return min(1.0, z * params.alpha)
    if name in ("paai2", "combo2"):
        d = params.path_length
        rho = params.natural_loss
        alpha = params.alpha
        return 1.0 - ((1.0 - alpha) ** (2 * d)) / ((1.0 - rho) ** (2 * (d - z)))
    raise ConfigurationError(f"no Theorem 1 bound for {name!r}")


def equivalent_uniform_rate(
    data_rate: float, probe_rate: float, ack_rate: float
) -> float:
    """Corollary 1's reduction: per-type drop rates achieve the same total
    as a uniform rate equal to their traffic-weighted effect.

    In a monitored round each packet type crosses a malicious link once,
    and dropping *any* of them charges the link. The end-to-end drop
    contribution of the link is therefore
    ``1 - (1-data)(1-probe)(1-ack)`` regardless of the split, and the
    uniform rate with the same budget is the symmetric solution of that
    product."""
    for rate in (data_rate, probe_rate, ack_rate):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate {rate} outside [0, 1]")
    combined = 1.0 - (1.0 - data_rate) * (1.0 - probe_rate) * (1.0 - ack_rate)
    return 1.0 - (1.0 - combined) ** (1.0 / 3.0)


def optimal_strategy_drop_rates(
    params: ProtocolParams, z: int, paths: int = 1
) -> dict:
    """Corollary 2: compare concentrating ``z`` malicious links on one path
    versus spreading one per path across ``z`` paths (full-ack/PAAI-1
    accounting).

    Returns the total malicious drop mass (summed end-to-end drop rates
    over the affected paths) for both deployments.
    """
    if z <= 0:
        raise ConfigurationError("z must be positive")
    if paths <= 0:
        raise ConfigurationError("paths must be positive")
    concentrated = min(1.0, z * params.alpha)  # all on one path
    spread = min(z, paths) * min(1.0, params.alpha)  # one per path
    return {
        "concentrated_single_path": concentrated,
        "spread_one_per_path": spread,
        "spread_is_optimal_across_network": spread * max(1, z) >= concentrated,
    }


def zeta_vs_natural_loss(
    params: ProtocolParams, z: int, rhos: Sequence[float]
) -> list:
    """Corollary 2's linearity: PAAI-2's ``zeta`` as a function of ``rho``.

    The corollary fixes the accuracy margin ``epsilon`` (the threshold
    tracks the natural rate: ``alpha = rho + epsilon``) and varies the
    natural loss. Returns ``[(rho, zeta)]`` pairs; the caller (ablation
    bench) checks approximate linearity.
    """
    results = []
    for rho in rhos:
        local = params.replace(natural_loss=rho, alpha=rho + params.epsilon)
        results.append((rho, malicious_drop_bound("paai2", local, z)))
    return results
