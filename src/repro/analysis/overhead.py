"""Communication and storage overhead formulas (§7.3, §7.4, Table 1).

Communication overhead is expressed as extra packet-size units per data
packet sent by the source, where one unit is an O(1)-size control packet
(ack or plain probe) and onion reports cost ``d`` units. Storage overhead
is expressed in packets buffered at an intermediate node, as a function of
the source rate ``nu`` and the worst-case source round trip ``r_0``.
"""

from __future__ import annotations

from typing import Dict

from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError


def communication_overhead(
    name: str,
    params: ProtocolParams,
    psi: float = 0.0,
    fl_sampling: float = 0.01,
) -> float:
    """Per-data-packet communication overhead in O(1)-packet units.

    ``psi`` is the end-to-end loss rate (full-ack and Combination 1 incur
    the O(d) onion cost only for lost packets).
    """
    if not 0.0 <= psi <= 1.0:
        raise ConfigurationError("psi must be in [0, 1]")
    d = params.path_length
    p = params.probe_frequency
    probe_units = d if params.authenticated_probes else 1
    if name == "full-ack":
        # One e2e ack per packet; probe + onion report per lost packet.
        return 1.0 + psi * (probe_units + d)
    if name == "paai1":
        # Probe + onion report for every sampled packet, loss or not.
        return p * (probe_units + d)
    if name == "paai2":
        # One e2e ack per packet; constant-size probe + constant-size
        # oblivious report per lost packet.
        return 1.0 + psi * 2.0
    if name == "statfl":
        # One O(1) request plus an O(d) counter report per interval; the
        # translated Table 1 expression in per-packet units.
        return fl_sampling * params.epsilon ** 2  # effectively ~0
    if name == "combo1":
        # e2e ack per sampled packet; probe + onion only for lost ones.
        return p * (1.0 + psi * (probe_units + d))
    if name == "combo2":
        # e2e ack per sampled packet; O(1) probe + report for lost ones.
        return p * (1.0 + psi * 2.0)
    raise ConfigurationError(f"no communication formula for {name!r}")


def storage_bound_packets(
    name: str,
    params: ProtocolParams,
    sending_rate: float,
    case: str = "worst",
) -> float:
    """Per-node storage bound in packets (Table 1's storage columns).

    ``case`` is ``"worst"`` or ``"ideal"`` (no packet drops). The bounds
    use the worst-case source round trip ``r_0``; Table 2's numeric values
    (12 and 3.2 packets at nu=100/s) follow with the paper's 0-5 ms
    per-link latency.
    """
    if sending_rate <= 0:
        raise ConfigurationError("sending rate must be positive")
    if case not in ("worst", "ideal"):
        raise ConfigurationError(f"case must be 'worst' or 'ideal', got {case!r}")
    r0 = params.r0
    nu = sending_rate
    p = params.probe_frequency
    worst = case == "worst"
    if name == "full-ack":
        return (2.0 if worst else 1.0) * r0 * nu
    if name == "paai1":
        # The paper's (0.5 + p) r0 nu assumes an immediate probe; a
        # withholding-hardened deployment adds the probe delay to every
        # node's hold time (DESIGN.md §2).
        return (0.5 + p + params.probe_delay / r0) * r0 * nu
    if name == "paai2":
        return (2.0 if worst else 1.0) * r0 * nu
    if name == "statfl":
        # One counter plus a transient request entry: effectively O(1);
        # the translated Table 1 expression scales with the sampling rate.
        return p * r0 * nu
    if name == "combo1":
        return (0.5 + 2.0 * p) * r0 * nu
    if name == "combo2":
        return ((1.0 + p) if worst else 1.0) * r0 * nu
    raise ConfigurationError(f"no storage formula for {name!r}")


def practicality_summary(params: ProtocolParams, sending_rate: float) -> Dict[str, Dict]:
    """§9's practicality numbers for each protocol at one sending rate."""
    from repro.analysis.detection import detection_packets

    summary: Dict[str, Dict] = {}
    for name in ("full-ack", "paai1", "paai2", "statfl", "combo1", "combo2"):
        summary[name] = {
            "detection_packets": detection_packets(name, params),
            "detection_minutes": detection_packets(name, params)
            / sending_rate
            / 60.0,
            "comm_overhead_units": communication_overhead(
                name, params, psi=1.0 - (1.0 - params.natural_loss) ** params.path_length
            ),
            "storage_worst_packets": storage_bound_packets(
                name, params, sending_rate, "worst"
            ),
            "storage_ideal_packets": storage_bound_packets(
                name, params, sending_rate, "ideal"
            ),
        }
    return summary
