"""Theoretical analysis of §7: Theorems 1-2, Corollaries 1-3, and the
communication/storage overhead formulas of Table 1."""

from repro.analysis.bounds import (
    malicious_drop_bound,
    optimal_strategy_drop_rates,
    psi_threshold,
)
from repro.analysis.comparison import table1_rows
from repro.analysis.detection import (
    detection_packets,
    detection_time_minutes,
    statfl_detection_packets,
    tau1_fullack,
    tau2_paai1,
    tau3_paai2,
)
from repro.analysis.hoeffding import hoeffding_deviation, hoeffding_sample_size
from repro.analysis.overhead import (
    communication_overhead,
    storage_bound_packets,
)

__all__ = [
    "malicious_drop_bound",
    "optimal_strategy_drop_rates",
    "psi_threshold",
    "tau1_fullack",
    "tau2_paai1",
    "tau3_paai2",
    "statfl_detection_packets",
    "detection_packets",
    "detection_time_minutes",
    "hoeffding_sample_size",
    "hoeffding_deviation",
    "communication_overhead",
    "storage_bound_packets",
    "table1_rows",
]
