"""The network-level identifier: per-path evidence → per-link posteriors.

Each protocol instance produces, for its own route, per-hop drop-rate
estimates and the calibrated thresholds it would convict against
(§7's identify phase). On a mesh those hops are *views* of shared
physical links, so the evidence compounds: a link traversed by eight
routes accumulates eight routes' worth of observation rounds, and a
link that looks suspicious from one noisy path can be exonerated by the
seven clean paths crossing it.

Fusion math (grounded in the paper's §7 Hoeffding argument): for each
physical link, pool the per-hop conviction *margins* ``m = estimate -
threshold`` of every route crossing it, weighted by that route's
observation rounds::

    N      = sum_r rounds_r
    margin = sum_r rounds_r * m_r / N

Each margin is a mean of bounded per-round blame observations, so the
pooled margin concentrates per Hoeffding: the probability that an
honest link shows a pooled margin above 0 (or a guilty link below 0)
decays as ``exp(-2 N margin^2)``. The posterior-style confidence::

    posterior_bad  = 1 - exp(-2 N margin^2)   when margin > 0
    posterior_good = 1 - exp(-2 N margin^2)   when margin <= 0

is compared against the deployment's ``1 - sigma``: a link is
**convicted** when ``posterior_bad >= 1 - sigma``, **exonerated** when
``posterior_good >= 1 - sigma``, and **undecided** while the evidence
is still inside the noise band. Because ``N`` pools across routes, a
link shared by ``k`` routes reaches either verdict roughly ``k`` times
fewer rounds *per route* than any single path needs alone.

Every fusion decision is recorded through the evidence ledger as a
``fusion`` entry (one per physical link, sorted by link id), so
``repro-aai explain`` can walk path-verdict → link-posterior chains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.obs.ledger import get_ledger

#: Verdict labels carried by :class:`LinkPosterior` and ledger entries.
CONVICTED = "convicted"
EXONERATED = "exonerated"
UNDECIDED = "undecided"


@dataclass(frozen=True)
class RouteEvidence:
    """One route's identify-phase evidence, hop-aligned to physical links.

    Attributes
    ----------
    route_id:
        The route (== ledger ``run``) this evidence came from.
    links:
        Physical link id per hop, in walk order.
    estimates:
        Per-hop drop-rate estimates from the route's protocol instance.
    thresholds:
        Per-hop calibrated conviction thresholds (same estimator).
    rounds:
        Observation rounds backing the estimates.
    """

    route_id: int
    links: Tuple[int, ...]
    estimates: Tuple[float, ...]
    thresholds: Tuple[float, ...]
    rounds: int

    def __post_init__(self) -> None:
        if not (
            len(self.links) == len(self.estimates) == len(self.thresholds)
        ):
            raise ConfigurationError(
                f"route {self.route_id}: links/estimates/thresholds "
                "must be hop-aligned"
            )
        if self.rounds < 0:
            raise ConfigurationError("rounds cannot be negative")


@dataclass
class LinkPosterior:
    """Fused evidence for one physical link."""

    link_id: int
    routes: List[int]
    rounds: int
    pooled_margin: float
    posterior_bad: float
    posterior_good: float
    verdict: str

    def to_dict(self) -> dict:
        return {
            "link": self.link_id,
            "routes": list(self.routes),
            "rounds": self.rounds,
            "pooled_margin": self.pooled_margin,
            "posterior_bad": self.posterior_bad,
            "posterior_good": self.posterior_good,
            "verdict": self.verdict,
        }


@dataclass
class FusionResult:
    """Per-link posteriors plus the resulting verdict partition."""

    sigma: float
    posteriors: Dict[int, LinkPosterior]

    @property
    def convicted(self) -> List[int]:
        return sorted(
            link_id
            for link_id, posterior in self.posteriors.items()
            if posterior.verdict == CONVICTED
        )

    @property
    def exonerated(self) -> List[int]:
        return sorted(
            link_id
            for link_id, posterior in self.posteriors.items()
            if posterior.verdict == EXONERATED
        )

    @property
    def undecided(self) -> List[int]:
        return sorted(
            link_id
            for link_id, posterior in self.posteriors.items()
            if posterior.verdict == UNDECIDED
        )

    def score(self, malicious_links: Sequence[int]) -> dict:
        """Confusion vs ground truth (per physical link)."""
        truth = set(malicious_links)
        convicted = set(self.convicted)
        return {
            "false_positives": sorted(convicted - truth),
            "false_negatives": sorted(truth - convicted),
            "exact": convicted == truth,
        }


def _hoeffding_confidence(rounds: float, margin: float) -> float:
    """``1 - exp(-2 N margin^2)``, clamped to [0, 1)."""
    if rounds <= 0:
        return 0.0
    return max(0.0, 1.0 - math.exp(-2.0 * rounds * margin * margin))


def fuse_route_evidence(
    evidence: Sequence[RouteEvidence],
    sigma: float,
    record: bool = True,
    checkpoint: Optional[int] = None,
) -> FusionResult:
    """Fuse per-route evidence into per-link posteriors.

    Links are processed in sorted physical-id order, so the resulting
    ledger entries (``record=True``) are byte-deterministic for a given
    evidence set. ``checkpoint`` annotates the ledger entries with the
    per-route round count the evidence was evaluated at.
    """
    if not 0.0 < sigma < 1.0:
        raise ConfigurationError(f"sigma must be in (0, 1), got {sigma}")
    pooled: Dict[int, List[Tuple[int, int, float]]] = {}
    for route in evidence:
        for hop, link_id in enumerate(route.links):
            margin = route.estimates[hop] - route.thresholds[hop]
            pooled.setdefault(link_id, []).append(
                (route.route_id, route.rounds, margin)
            )
    posteriors: Dict[int, LinkPosterior] = {}
    confidence_floor = 1.0 - sigma
    ledger = get_ledger()
    for link_id in sorted(pooled):
        samples = pooled[link_id]
        rounds = sum(sample[1] for sample in samples)
        if rounds > 0:
            margin = (
                sum(sample[1] * sample[2] for sample in samples) / rounds
            )
        else:
            margin = 0.0
        confidence = _hoeffding_confidence(rounds, margin)
        if margin > 0:
            posterior_bad, posterior_good = confidence, 0.0
            verdict = (
                CONVICTED if confidence >= confidence_floor else UNDECIDED
            )
        else:
            posterior_bad, posterior_good = 0.0, confidence
            verdict = (
                EXONERATED if confidence >= confidence_floor else UNDECIDED
            )
        posterior = LinkPosterior(
            link_id=link_id,
            routes=sorted({sample[0] for sample in samples}),
            rounds=rounds,
            pooled_margin=margin,
            posterior_bad=posterior_bad,
            posterior_good=posterior_good,
            verdict=verdict,
        )
        posteriors[link_id] = posterior
        if record and ledger.enabled:
            fields = posterior.to_dict()
            if checkpoint is not None:
                fields["checkpoint"] = checkpoint
            fields["sigma"] = sigma
            ledger.record("fusion", **fields)
    return FusionResult(sigma=sigma, posteriors=posteriors)


__all__ = [
    "CONVICTED",
    "EXONERATED",
    "UNDECIDED",
    "RouteEvidence",
    "LinkPosterior",
    "FusionResult",
    "fuse_route_evidence",
]
