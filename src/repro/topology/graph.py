"""The graph model: topologies, routes, and adversary placement.

A :class:`Topology` is an undirected multigraph-free graph of routers
joined by bidirectional links. A :class:`Route` is a walk over those
links — the mesh analogue of the paper's monitored path: protocol
instance ``i`` runs over route ``i``, and two routes that traverse the
same physical link share its loss state, its latency draws, and any
adversary sitting on it.

Everything here is deterministic by construction:

* generators derive every random draw from a seeded
  :class:`~repro.net.rng.RngFactory` stream, never global randomness;
* adjacency lists are kept sorted, so BFS route construction is
  reproducible across processes and Python versions;
* adversary placement is either explicit (``compromise_link`` /
  ``compromise_router``) or derived from a seed / from route coverage
  (:func:`place_link_adversaries` / :func:`most_shared_links`).

Ground truth lives on the topology: a link is *malicious* when its
combined adversarial rate (its own compromise plus either endpoint
router's) is positive — mirroring the paper's observation that a
compromised router's dropping manifests on its adjacent links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.net.rng import RngFactory

#: Generator names accepted by :func:`build_topology` (and the CLI).
TOPOLOGY_NAMES = ("line", "tree", "fat-tree", "random-regular")


@dataclass(frozen=True)
class TopoLink:
    """One undirected physical link ``{u, v}`` with a stable id."""

    link_id: int
    u: int
    v: int

    def other(self, node: int) -> int:
        """The endpoint opposite ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ConfigurationError(
            f"node {node} is not an endpoint of link {self.link_id}"
        )


@dataclass(frozen=True)
class Route:
    """A walk over a topology: the mesh analogue of one monitored path.

    ``nodes`` has one more element than ``links``; hop ``h`` crosses
    physical link ``links[h]`` from ``nodes[h]`` to ``nodes[h + 1]``.
    """

    route_id: int
    nodes: Tuple[int, ...]
    links: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.links) + 1:
            raise ConfigurationError(
                f"route {self.route_id}: {len(self.nodes)} nodes cannot "
                f"walk {len(self.links)} links"
            )

    @property
    def length(self) -> int:
        """Hop count ``d`` — the route's path length."""
        return len(self.links)

    @property
    def source(self) -> int:
        return self.nodes[0]

    @property
    def destination(self) -> int:
        return self.nodes[-1]


@dataclass
class Topology:
    """An undirected router graph with adversary placement.

    Attributes
    ----------
    name:
        Generator tag (``line``, ``fat-tree``, ...) or ``custom``.
    nodes:
        Router count; routers are ``0 .. nodes - 1``.
    links:
        The physical links, ids dense from 0 in construction order.
    route_endpoints:
        Routers eligible as route sources/destinations (fat-trees
        restrict these to edge switches; everywhere else, all routers).
    """

    name: str
    nodes: int
    links: List[TopoLink] = field(default_factory=list)
    route_endpoints: Tuple[int, ...] = ()
    _adjacency: Dict[int, List[Tuple[int, int]]] = field(
        default_factory=dict, repr=False
    )
    _link_adversaries: Dict[int, float] = field(
        default_factory=dict, repr=False
    )
    _router_adversaries: Dict[int, float] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.nodes <= 1:
            raise ConfigurationError(
                f"a topology needs at least 2 routers, got {self.nodes}"
            )
        if not self.route_endpoints:
            self.route_endpoints = tuple(range(self.nodes))
        self._adjacency = {node: [] for node in range(self.nodes)}
        seen = set()
        for link in self.links:
            if not (0 <= link.u < self.nodes and 0 <= link.v < self.nodes):
                raise ConfigurationError(
                    f"link {link.link_id} endpoints off the graph"
                )
            if link.u == link.v:
                raise ConfigurationError(
                    f"link {link.link_id} is a self-loop on {link.u}"
                )
            key = (min(link.u, link.v), max(link.u, link.v))
            if key in seen:
                raise ConfigurationError(f"duplicate link between {key}")
            seen.add(key)
            self._adjacency[link.u].append((link.v, link.link_id))
            self._adjacency[link.v].append((link.u, link.link_id))
        # Sorted neighbor order makes BFS (and therefore every route)
        # deterministic regardless of link construction order.
        for neighbors in self._adjacency.values():
            neighbors.sort()

    # -- structure ---------------------------------------------------------

    def link(self, link_id: int) -> TopoLink:
        if not 0 <= link_id < len(self.links):
            raise ConfigurationError(f"no link {link_id}")
        return self.links[link_id]

    def neighbors(self, node: int) -> List[Tuple[int, int]]:
        """Sorted ``(neighbor, link_id)`` pairs adjacent to ``node``."""
        return list(self._adjacency[node])

    def degree(self, node: int) -> int:
        return len(self._adjacency[node])

    # -- adversaries -------------------------------------------------------

    def compromise_link(self, link_id: int, rate: float) -> None:
        """Place an adversary on a physical link (drops at ``rate``)."""
        self.link(link_id)
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(f"invalid link adversary rate {rate}")
        self._link_adversaries[link_id] = rate

    def compromise_router(self, node: int, rate: float) -> None:
        """Compromise a router: its dropping lands on every adjacent
        link (Theorem 1 — AAI identifies links, not nodes)."""
        if not 0 <= node < self.nodes:
            raise ConfigurationError(f"no router {node}")
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(f"invalid router adversary rate {rate}")
        self._router_adversaries[node] = rate

    def adversarial_rate(self, link_id: int) -> float:
        """Combined adversarial drop rate on one link: its own
        compromise composed with both endpoint routers' (independent
        coins, so survival probabilities multiply)."""
        link = self.link(link_id)
        survive = 1.0 - self._link_adversaries.get(link_id, 0.0)
        survive *= 1.0 - self._router_adversaries.get(link.u, 0.0)
        survive *= 1.0 - self._router_adversaries.get(link.v, 0.0)
        return 1.0 - survive

    @property
    def malicious_links(self) -> List[int]:
        """Ground truth: link ids with a positive adversarial rate."""
        return sorted(
            link.link_id
            for link in self.links
            if self.adversarial_rate(link.link_id) > 0.0
        )

    # -- routes ------------------------------------------------------------

    def shortest_route(
        self, source: int, destination: int, route_id: int = 0
    ) -> Optional[Route]:
        """Deterministic BFS shortest path, or ``None`` when disconnected.

        Ties break toward the lowest-numbered neighbor (adjacency is
        sorted), so the same ``(source, destination)`` always yields the
        same walk.
        """
        if source == destination:
            raise ConfigurationError("route endpoints must differ")
        parents: Dict[int, Tuple[int, int]] = {}
        frontier = [source]
        visited = {source}
        while frontier and destination not in visited:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor, link_id in self._adjacency[node]:
                    if neighbor not in visited:
                        visited.add(neighbor)
                        parents[neighbor] = (node, link_id)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        if destination not in visited:
            return None
        nodes = [destination]
        links: List[int] = []
        while nodes[-1] != source:
            parent, link_id = parents[nodes[-1]]
            nodes.append(parent)
            links.append(link_id)
        return Route(
            route_id=route_id,
            nodes=tuple(reversed(nodes)),
            links=tuple(reversed(links)),
        )

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        return (
            f"{self.name}: {self.nodes} routers, {len(self.links)} links, "
            f"{len(self.malicious_links)} adversarial"
        )


# -- generators -------------------------------------------------------------


def line_topology(length: int) -> Topology:
    """The paper's Figure 1 chain as a degenerate mesh: ``length`` links."""
    if length <= 0:
        raise ConfigurationError(f"line length must be positive, got {length}")
    links = [TopoLink(i, i, i + 1) for i in range(length)]
    return Topology(name="line", nodes=length + 1, links=links)


def tree_topology(depth: int, branching: int = 2) -> Topology:
    """A complete ``branching``-ary tree of the given ``depth``."""
    if depth <= 0:
        raise ConfigurationError(f"tree depth must be positive, got {depth}")
    if branching < 2:
        raise ConfigurationError("tree branching must be at least 2")
    links: List[TopoLink] = []
    total = 1
    level = [0]
    next_id = 1
    for _ in range(depth):
        next_level = []
        for parent in level:
            for _child in range(branching):
                links.append(TopoLink(len(links), parent, next_id))
                next_level.append(next_id)
                next_id += 1
                total += 1
        level = next_level
    # Leaves are the natural route endpoints, but interior routers are
    # legal too; keep every router eligible.
    return Topology(name="tree", nodes=total, links=links)


def fat_tree_topology(k: int) -> Topology:
    """The standard ``k``-ary fat-tree switch fabric (``k`` even).

    ``(k/2)^2`` core switches; ``k`` pods of ``k/2`` aggregation and
    ``k/2`` edge switches. Every edge switch connects to every
    aggregation switch in its pod; aggregation switch ``j`` of each pod
    connects to core switches ``j*(k/2) .. (j+1)*(k/2)-1``. Route
    endpoints are the edge switches (where hosts would attach).
    """
    if k < 2 or k % 2:
        raise ConfigurationError(f"fat-tree arity must be even >= 2, got {k}")
    half = k // 2
    cores = half * half
    # Numbering: cores first, then per pod [aggs..., edges...].
    def agg(pod: int, j: int) -> int:
        return cores + pod * k + j

    def edge(pod: int, j: int) -> int:
        return cores + pod * k + half + j

    links: List[TopoLink] = []
    for pod in range(k):
        for j in range(half):
            for core_slot in range(half):
                links.append(
                    TopoLink(len(links), j * half + core_slot, agg(pod, j))
                )
            for e in range(half):
                links.append(TopoLink(len(links), agg(pod, j), edge(pod, e)))
    endpoints = tuple(edge(pod, j) for pod in range(k) for j in range(half))
    return Topology(
        name="fat-tree",
        nodes=cores + k * k,
        links=links,
        route_endpoints=endpoints,
    )


def random_regular_topology(
    nodes: int, degree: int, seed: int = 0, max_attempts: int = 200
) -> Topology:
    """A seeded random ``degree``-regular graph via the pairing model.

    Stub endpoints are shuffled with a dedicated seeded stream and paired
    off; pairings producing self-loops or duplicate edges are rejected
    and redrawn (deterministically — the stream continues), up to
    ``max_attempts`` full restarts.
    """
    if nodes <= degree:
        raise ConfigurationError("need nodes > degree for a simple graph")
    if (nodes * degree) % 2:
        raise ConfigurationError("nodes * degree must be even")
    rng = RngFactory(seed).stream("random-regular")
    stubs_template = [node for node in range(nodes) for _ in range(degree)]
    for _attempt in range(max_attempts):
        stubs = list(stubs_template)
        rng.shuffle(stubs)
        seen = set()
        pairs: List[Tuple[int, int]] = []
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            key = (min(u, v), max(u, v))
            if u == v or key in seen:
                ok = False
                break
            seen.add(key)
            pairs.append(key)
        if ok:
            pairs.sort()
            links = [TopoLink(i, u, v) for i, (u, v) in enumerate(pairs)]
            return Topology(
                name="random-regular", nodes=nodes, links=links
            )
    raise ConfigurationError(
        f"no simple {degree}-regular graph on {nodes} nodes after "
        f"{max_attempts} attempts"
    )


def build_topology(
    name: str, size: int, degree: int = 3, seed: int = 0
) -> Topology:
    """CLI-facing factory; ``size`` is the generator's natural knob:
    line length, tree depth, fat-tree arity ``k``, or random-regular
    router count."""
    if name == "line":
        return line_topology(size)
    if name == "tree":
        return tree_topology(size)
    if name == "fat-tree":
        return fat_tree_topology(size)
    if name == "random-regular":
        return random_regular_topology(size, degree, seed=seed)
    raise ConfigurationError(
        f"unknown topology {name!r}; expected one of {TOPOLOGY_NAMES}"
    )


# -- route + adversary selection --------------------------------------------


def generate_routes(
    topology: Topology,
    count: int,
    seed: int = 0,
    min_length: int = 2,
    max_attempts_per_route: int = 100,
) -> List[Route]:
    """Seeded route sample: ``count`` BFS-shortest walks between random
    eligible endpoint pairs, each at least ``min_length`` hops.

    Route ids are dense from 0 in draw order; the draw order depends
    only on ``(topology, count, seed)``.
    """
    if count <= 0:
        raise ConfigurationError(f"route count must be positive, got {count}")
    endpoints = sorted(topology.route_endpoints)
    if len(endpoints) < 2:
        raise ConfigurationError("topology has fewer than 2 route endpoints")
    rng = RngFactory(seed).stream("routes")
    routes: List[Route] = []
    for route_id in range(count):
        route = None
        for _ in range(max_attempts_per_route):
            source, destination = rng.sample(endpoints, 2)
            candidate = topology.shortest_route(
                source, destination, route_id=route_id
            )
            if candidate is not None and candidate.length >= min_length:
                route = candidate
                break
        if route is None:
            raise ConfigurationError(
                f"could not draw a route of length >= {min_length} "
                f"(route {route_id}); is the topology connected?"
            )
        routes.append(route)
    return routes


def link_coverage(routes: Iterable[Route]) -> Dict[int, List[int]]:
    """Physical link id → sorted route ids traversing it."""
    coverage: Dict[int, List[int]] = {}
    for route in routes:
        for link_id in route.links:
            coverage.setdefault(link_id, [])
            if route.route_id not in coverage[link_id]:
                coverage[link_id].append(route.route_id)
    for route_ids in coverage.values():
        route_ids.sort()
    return coverage


def most_shared_links(routes: Sequence[Route], count: int = 1) -> List[int]:
    """The ``count`` links traversed by the most routes (ties break
    toward the lowest link id) — where a placed adversary damages the
    most paths at once."""
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    coverage = link_coverage(routes)
    ranked = sorted(
        coverage.items(), key=lambda item: (-len(item[1]), item[0])
    )
    return [link_id for link_id, _ in ranked[:count]]


def place_link_adversaries(
    topology: Topology, count: int, rate: float, seed: int = 0
) -> List[int]:
    """Compromise ``count`` seeded-random links at ``rate``; returns the
    chosen link ids (sorted)."""
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    if count > len(topology.links):
        raise ConfigurationError(
            f"cannot compromise {count} of {len(topology.links)} links"
        )
    rng = RngFactory(seed).stream("adversary-placement")
    chosen = sorted(
        rng.sample([link.link_id for link in topology.links], count)
    )
    for link_id in chosen:
        topology.compromise_link(link_id, rate)
    return chosen


__all__ = [
    "TOPOLOGY_NAMES",
    "TopoLink",
    "Route",
    "Topology",
    "line_topology",
    "tree_topology",
    "fat_tree_topology",
    "random_regular_topology",
    "build_topology",
    "generate_routes",
    "link_coverage",
    "most_shared_links",
    "place_link_adversaries",
]
