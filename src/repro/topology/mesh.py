"""Mesh wire layer: concurrent protocol instances over shared links.

The single-path world of :mod:`repro.net.path` gives every protocol its
own private links. A mesh run instead hosts N protocol instances in ONE
:class:`~repro.net.simulator.Simulator`, each monitoring a
:class:`~repro.topology.graph.Route`, while the routes *physically share*
the underlying :class:`SharedLink` objects — one loss model, one latency
FIFO, one adversary per topology link, no matter how many routes cross
it. A compromised shared link therefore damages every route that
traverses it, which is exactly the correlation the fusion layer
(:mod:`repro.topology.fusion`) exploits.

Three layers keep the existing protocol stack unmodified:

* :class:`SharedLink` — the physical link: per-physical-direction loss
  models drawing from one ``mesh-link-{id}`` stream, one FIFO arrival
  clamp per physical direction (a burst from route A delays route B's
  packets on the same link), shared :class:`~repro.net.stats.LinkStats`,
  and an optional link adversary (``mesh-adversary-{id}`` stream) that
  deliberately drops crossings at the topology's composed rate.
* :class:`RouteLinkView` — what a protocol's nodes see: hop index *on the
  route*, the route's path id, per-route listeners/receivers/metrics.
  The view maps route direction (forward = toward the route's
  destination) onto the link's physical orientation, so two routes
  traversing the same wire in opposite senses still share the same
  physical loss and FIFO state.
* :class:`RoutePath` — a drop-in for :class:`repro.net.path.Path` built
  from views; it is handed to :class:`~repro.protocols.base.WireProtocol`
  through the ``path=`` injection seam.

Determinism: every random draw comes from labeled streams of the
simulator's seeded :class:`~repro.net.simulator.RngFactory`, and the
event engine orders deliveries deterministically, so a mesh run is a
pure function of (seed, topology, routes, params).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Union

from repro.constants import DEFAULT_MAX_LINK_LATENCY
from repro.exceptions import ConfigurationError
from repro.net.clock import NodeClock
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.link import LinkInterceptor, LinkObserver, _LinkMetrics
from repro.net.loss import BernoulliLoss, LossModel
from repro.net.node import Node
from repro.net.packets import Direction, Packet
from repro.net.path import PathObserver
from repro.net.simulator import Simulator
from repro.net.stats import LinkStats, PathStats
from repro.obs import tracing
from repro.obs.registry import get_registry
from repro.topology.graph import Route, Topology


class SharedLink:
    """One physical topology link, shared by every route crossing it.

    State that is *physical* — loss models, the latency FIFO, stats, the
    adversary — is keyed by the link's canonical orientation (``u -> v``
    is the FORWARD physical direction). Per-route state (listeners,
    receivers, metrics) lives on the :class:`RouteLinkView` instances.
    """

    def __init__(
        self,
        link_id: int,
        simulator: Simulator,
        loss_models: Dict[Direction, LossModel],
        latency_model: LatencyModel,
        adversary_rate: float = 0.0,
    ) -> None:
        if set(loss_models) != {Direction.FORWARD, Direction.REVERSE}:
            raise ConfigurationError("loss_models must cover both directions")
        if not 0.0 <= adversary_rate <= 1.0:
            raise ConfigurationError(
                f"adversary rate must be in [0, 1], got {adversary_rate}"
            )
        self.link_id = link_id
        self.simulator = simulator
        self._loss = loss_models
        self._latency = latency_model
        self._rng = simulator.rng.stream(f"mesh-link-{link_id}")
        self.adversary_rate = adversary_rate
        self._adversary_rng = (
            simulator.rng.stream(f"mesh-adversary-{link_id}")
            if adversary_rate > 0.0
            else None
        )
        #: Pooled over every route crossing this wire.
        self.stats = LinkStats()
        #: Deliberate (adversarial) drops, keyed (kind, direction) in
        #: physical orientation — LinkStats only knows natural losses.
        self.adversarial_drops: Counter = Counter()
        self._last_arrival: Dict[Direction, float] = {
            Direction.FORWARD: 0.0,
            Direction.REVERSE: 0.0,
        }
        self.views: List["RouteLinkView"] = []

    @property
    def max_one_way_latency(self) -> float:
        return self._latency.maximum

    def carry(
        self, view: "RouteLinkView", packet: Packet, route_direction: Direction
    ) -> bool:
        """Carry ``packet`` across the physical wire for ``view``.

        Returns True when delivery was scheduled, False when the packet
        was consumed (natural loss or adversarial drop). Accounting and
        hooks fire on the *originating view* so metrics and spans stay
        attributed to the route that sent the packet, while every random
        draw and the FIFO clamp use shared physical state.
        """
        physical = view.physical_direction(route_direction)
        if self._adversary_rng is not None:
            if self._adversary_rng.random() < self.adversary_rate:
                self.adversarial_drops[(packet.kind, physical)] += 1
                view.account_adversarial_drop(packet, route_direction)
                return False
        if self._loss[physical].is_lost(self._rng):
            self.stats.record_natural_loss(packet, physical)
            view.account_natural_loss(packet, route_direction)
            return False
        arrival = self.simulator.now + self._latency.delay(self._rng)
        # FIFO per physical direction: a packet never overtakes an
        # earlier one on the same wire, regardless of which route sent it.
        arrival = max(arrival, self._last_arrival[physical])
        self._last_arrival[physical] = arrival

        def deliver() -> None:
            view.deliver(packet, route_direction)

        self.simulator.schedule_at(arrival, deliver)
        return True

    def total_adversarial_drops(self) -> int:
        return sum(self.adversarial_drops.values())


class RouteLinkView:
    """One route's view of a :class:`SharedLink` — the ``Link`` interface.

    Exposes exactly the surface protocol nodes, path observers, and the
    tracing collector use (``index``, ``path_id``, ``transmit``,
    listener/interceptor registration, ``_simulator``), while delegating
    loss, latency, and FIFO behavior to the shared physical link.
    """

    def __init__(
        self,
        shared: SharedLink,
        index: int,
        path_id: int,
        forward_on_wire: bool,
    ) -> None:
        self.shared = shared
        self.index = index
        self.path_id = path_id
        #: True when the route traverses the wire in its canonical
        #: ``u -> v`` orientation.
        self.forward_on_wire = forward_on_wire
        self._simulator = shared.simulator
        self._receivers: Dict[Direction, Optional[object]] = {
            Direction.FORWARD: None,
            Direction.REVERSE: None,
        }
        self._listeners: List[LinkObserver] = []
        self._interceptors: List[LinkInterceptor] = []
        registry = get_registry()
        self._metrics: Optional[_LinkMetrics] = (
            _LinkMetrics(registry, index, path_id) if registry.enabled else None
        )
        self._obs_adversarial = (
            {
                (kind, direction): registry.counter(
                    "net.link.adversarial_drops",
                    link=str(index),
                    path=str(path_id),
                    kind=kind.value,
                    direction=direction.value,
                )
                for (kind, direction) in self._metrics.loss
            }
            if self._metrics is not None and shared.adversary_rate > 0.0
            else None
        )
        shared.views.append(self)

    # -- direction mapping -------------------------------------------------

    def physical_direction(self, route_direction: Direction) -> Direction:
        if self.forward_on_wire:
            return route_direction
        return (
            Direction.REVERSE
            if route_direction is Direction.FORWARD
            else Direction.FORWARD
        )

    # -- Link interface: hooks ---------------------------------------------

    def add_listener(self, listener: LinkObserver) -> None:
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: LinkObserver) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    @property
    def listeners(self) -> List[LinkObserver]:
        return list(self._listeners)

    def add_interceptor(self, interceptor: LinkInterceptor) -> None:
        if interceptor not in self._interceptors:
            self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: LinkInterceptor) -> None:
        try:
            self._interceptors.remove(interceptor)
        except ValueError:
            pass

    @property
    def interceptors(self) -> List[LinkInterceptor]:
        return list(self._interceptors)

    # -- Link interface: wiring and traffic --------------------------------

    def connect(self, forward_receiver, reverse_receiver) -> None:
        self._receivers[Direction.FORWARD] = forward_receiver
        self._receivers[Direction.REVERSE] = reverse_receiver

    def transmit(self, packet: Packet, direction: Direction) -> bool:
        if self._receivers[direction] is None:
            raise ConfigurationError(
                f"route link {self.index} has no {direction} receiver"
            )
        for interceptor in self._interceptors:
            replacement = interceptor.before_transmit(self, packet, direction)
            if replacement is None:
                return False
            packet = replacement
        self.shared.stats.record_transmission(
            packet, self.physical_direction(direction)
        )
        metrics = self._metrics
        if metrics is not None:
            metrics.tx[packet.kind, direction].inc()
            metrics.bytes[packet.kind, direction].inc(packet.size)
        for listener in self._listeners:
            listener.on_transmit(self, packet, direction)
        return self.shared.carry(self, packet, direction)

    def account_natural_loss(self, packet: Packet, direction: Direction) -> None:
        if self._metrics is not None:
            self._metrics.loss[packet.kind, direction].inc()
        for listener in self._listeners:
            listener.on_loss(self, packet, direction)

    def account_adversarial_drop(
        self, packet: Packet, direction: Direction
    ) -> None:
        if self._obs_adversarial is not None:
            self._obs_adversarial[packet.kind, direction].inc()
        # Spans still see a loss event: the protocol under test cannot
        # distinguish adversarial from natural consumption on the wire.
        for listener in self._listeners:
            listener.on_loss(self, packet, direction)

    def deliver(self, packet: Packet, direction: Direction) -> None:
        for listener in self._listeners:
            listener.on_deliver(self, packet, direction)
        receiver = self._receivers[direction]
        if receiver is not None:
            receiver(packet, direction)

    @property
    def max_one_way_latency(self) -> float:
        return self.shared.max_one_way_latency

    @property
    def simulator(self):
        return self._simulator


class RoutePath:
    """A :class:`repro.net.path.Path` stand-in built over shared links.

    Satisfies everything :class:`~repro.protocols.base.WireProtocol` and
    its agents need from a path — ``length``, ``path_id``, ``stats``,
    ``attach_nodes``, ``rtt_bound``/``r0``, ``notify_node_drop``,
    ``schedule_in`` — while hop ``i`` is a :class:`RouteLinkView` onto
    the topology link the route's walk crosses at that hop.
    """

    def __init__(
        self,
        simulator: Simulator,
        route: Route,
        shared_links: Sequence[SharedLink],
        topology: Topology,
    ) -> None:
        if route.length != len(shared_links):
            raise ConfigurationError(
                f"route {route.route_id} has {route.length} hops but "
                f"{len(shared_links)} shared links were supplied"
            )
        self.simulator = simulator
        self.route = route
        self.length = route.length
        self.path_id = simulator.next_path_id()
        self.stats = PathStats(route.length)
        self.nodes: List[Node] = []
        self._observers: List[PathObserver] = []
        registry = get_registry()
        self._metrics = registry if registry.enabled else None
        self.links: List[RouteLinkView] = []
        for hop, shared in enumerate(shared_links):
            topo_link = topology.link(shared.link_id)
            forward_on_wire = route.nodes[hop] == topo_link.u
            self.links.append(
                RouteLinkView(
                    shared,
                    index=hop,
                    path_id=self.path_id,
                    forward_on_wire=forward_on_wire,
                )
            )
        collector = tracing.get_collector()
        if collector is not None:
            collector.attach(self)

    # -- observability hooks ----------------------------------------------

    def add_observer(self, observer: PathObserver) -> None:
        if observer not in self._observers:
            self._observers.append(observer)
        for link in self.links:
            link.add_listener(observer)

    def remove_observer(self, observer: PathObserver) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass
        for link in self.links:
            link.remove_listener(observer)

    def notify_node_drop(self, node: Node, packet: Packet,
                         direction: Direction, cause: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "net.node.drops",
                node=str(node.position),
                path=str(self.path_id),
                kind=packet.kind.value,
                direction=direction.value,
                cause=cause,
            ).inc()
        for observer in self._observers:
            observer.on_node_drop(node, packet, direction, cause)

    # -- node attachment ---------------------------------------------------

    def attach_nodes(self, nodes: Sequence[Node]) -> None:
        if len(nodes) != self.length + 1:
            raise ConfigurationError(
                f"need {self.length + 1} nodes, got {len(nodes)}"
            )
        for position, node in enumerate(nodes):
            if node.position != position:
                raise ConfigurationError(
                    f"node at slot {position} reports position {node.position}"
                )
            uplink = self.links[position - 1] if position > 0 else None
            downlink = self.links[position] if position < self.length else None
            clock = NodeClock(self.simulator.clock, 0.0)
            node.attach(self, clock, uplink, downlink)
        for index, link in enumerate(self.links):
            link.connect(
                forward_receiver=nodes[index + 1].deliver,
                reverse_receiver=nodes[index].deliver,
            )
        self.nodes = list(nodes)

    # -- timing ------------------------------------------------------------

    def schedule_in(self, delay: float, action) -> object:
        return self.simulator.schedule_in(delay, action)

    @property
    def max_link_latency(self) -> float:
        return max(link.max_one_way_latency for link in self.links)

    def rtt_bound(self, position: int) -> float:
        if not 0 <= position <= self.length:
            raise ConfigurationError(f"position {position} off route")
        return 2.0 * sum(
            link.max_one_way_latency for link in self.links[position:]
        )

    @property
    def r0(self) -> float:
        return self.rtt_bound(0)

    def true_link_rates(self) -> List[float]:
        """Natural loss per hop, in the route's forward direction."""
        return [
            link.shared._loss[
                link.physical_direction(Direction.FORWARD)
            ].average_rate
            for link in self.links
        ]

    def describe(self) -> str:
        """ASCII rendering of the route over topology node ids."""
        parts = [f"N{self.route.nodes[0]}"]
        for hop in range(self.length):
            parts.append(
                f"──L{self.links[hop].shared.link_id}── "
                f"N{self.route.nodes[hop + 1]}"
            )
        return " ".join(parts)


class MeshNetwork:
    """Shared physical substrate plus per-route protocol instantiation.

    Builds one :class:`SharedLink` per topology link (loss model,
    latency, adversary rate from the topology's compromise marks), then
    hands out :class:`RoutePath` objects whose hops are views onto those
    shared links. All protocol instances created through
    :meth:`instantiate` live in the one simulator and are driven
    *concurrently* by :meth:`run_traffic`.
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        natural_loss: Union[float, Dict[int, float]] = 0.0,
        max_latency: Union[float, LatencyModel] = DEFAULT_MAX_LINK_LATENCY,
    ) -> None:
        self.simulator = simulator
        self.topology = topology
        latency = (
            max_latency
            if isinstance(max_latency, LatencyModel)
            else UniformLatency(high=float(max_latency))
        )
        self._latency = latency

        def loss_rate(link_id: int) -> float:
            if isinstance(natural_loss, dict):
                return float(natural_loss.get(link_id, 0.0))
            return float(natural_loss)

        self.links: Dict[int, SharedLink] = {}
        for topo_link in topology.links:
            rate = loss_rate(topo_link.link_id)
            self.links[topo_link.link_id] = SharedLink(
                link_id=topo_link.link_id,
                simulator=simulator,
                loss_models={
                    Direction.FORWARD: BernoulliLoss(rate),
                    Direction.REVERSE: BernoulliLoss(rate),
                },
                latency_model=latency,
                adversary_rate=topology.adversarial_rate(topo_link.link_id),
            )
        self.protocols: List[object] = []
        self._route_paths: Dict[int, RoutePath] = {}

    def route_path(self, route: Route) -> RoutePath:
        """Build a :class:`RoutePath` whose hops view this mesh's links."""
        shared = [self.links[link_id] for link_id in route.links]
        path = RoutePath(self.simulator, route, shared, self.topology)
        self._route_paths[route.route_id] = path
        return path

    def instantiate(self, name: str, route: Route, params, **kwargs):
        """Create a protocol instance monitoring ``route``.

        ``params.path_length`` must equal the route's hop count; the
        protocol is built through the registry with the mesh path
        injected, so its agents run unmodified over shared links.
        """
        from repro.protocols.registry import make_protocol

        path = self.route_path(route)
        protocol = make_protocol(
            name, self.simulator, params, path=path, **kwargs
        )
        self.protocols.append(protocol)
        return protocol

    def run_traffic(
        self,
        count: int,
        rate: float,
        drain: Optional[float] = None,
    ) -> None:
        """Drive every instantiated protocol concurrently.

        Unlike :meth:`WireProtocol.run_traffic`, the engine runs ONCE for
        all instances: every source's sends are scheduled first, then the
        simulator advances to the latest deadline, so packets from
        different routes genuinely interleave on shared links.
        """
        if not self.protocols:
            raise ConfigurationError("no protocol instances to drive")
        if count <= 0:
            raise ConfigurationError("count must be positive")
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        interval = 1.0 / rate
        start = self.simulator.now
        for protocol in self.protocols:
            for index in range(count):
                self.simulator.schedule_at(
                    start + index * interval, protocol.source.send_data
                )
        if drain is None:
            drain = 4.0 * max(p.params.r0 for p in self.protocols)
        self.simulator.run(until=start + count * interval + drain)

    def total_adversarial_drops(self) -> int:
        return sum(
            link.total_adversarial_drops() for link in self.links.values()
        )
