"""Network topologies: from one monitored path to a mesh.

The paper analyzes a single source-destination path; a deployed
identifier watches a *graph* whose links are shared by many flows. This
package generalizes ``repro.net``'s linear :class:`~repro.net.path.Path`:

* :mod:`repro.topology.graph` — the graph model (:class:`Topology`,
  :class:`Route` as a walk over shared links, seeded deterministic
  generators, adversary placement on links/routers);
* :mod:`repro.topology.mesh` — N concurrent wire-protocol instances in
  one simulator whose routes physically share link state
  (:class:`SharedLink` / :class:`RouteLinkView` / :class:`RoutePath`);
* :mod:`repro.topology.fusion` — the network-level identifier: per-path
  verdict evidence fused into per-link posteriors, recorded through the
  evidence ledger (``fusion`` entries).

See ``docs/TOPOLOGY.md`` for the model and the fusion math.
"""

from repro.topology.fusion import (
    FusionResult,
    LinkPosterior,
    RouteEvidence,
    fuse_route_evidence,
)
from repro.topology.graph import (
    Route,
    TopoLink,
    Topology,
    build_topology,
    fat_tree_topology,
    generate_routes,
    line_topology,
    most_shared_links,
    place_link_adversaries,
    random_regular_topology,
    tree_topology,
)
from repro.topology.mesh import MeshNetwork, RoutePath, SharedLink

__all__ = [
    "Topology",
    "TopoLink",
    "Route",
    "build_topology",
    "line_topology",
    "tree_topology",
    "fat_tree_topology",
    "random_regular_topology",
    "generate_routes",
    "most_shared_links",
    "place_link_adversaries",
    "RouteEvidence",
    "LinkPosterior",
    "FusionResult",
    "fuse_route_evidence",
    "MeshNetwork",
    "SharedLink",
    "RoutePath",
]
