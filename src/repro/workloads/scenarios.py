"""Canonical evaluation scenarios (§8.1).

The paper's running configuration: a d=6 path, natural per-link loss
ρ=0.01, threshold α=0.03, σ=0.03, p=1/d², node F4 compromised with drop
rate 0.02 — chosen so the target link l4 shows a total drop rate of about
α. Per §8.1's tactics (a)+(b), the malicious node drops data packets and
probes at egress and end-to-end acks at *ingress* (keeping its protocol
state so it still answers ack requests "as if functioning correctly"),
while handling report acks honestly — the configuration under which all
of its malicious activity lands on its *downstream* adjacent link l4
(:class:`repro.adversary.paper.PaperTacticAdversary`). A fully-uniform
bidirectional egress dropper is available for ablations (its reverse-path
drops land on l3 — still adjacent to F4, as Theorem 1 requires, but no
longer matched by the closed-form outcome models).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.adversary.base import AdversaryStrategy
from repro.adversary.paper import PaperTacticAdversary
from repro.adversary.uniform import UniformDropper
from repro.constants import (
    DEFAULT_MALICIOUS_NODE,
    DEFAULT_MALICIOUS_NODE_DROP,
)
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.net.simulator import Simulator
from repro.protocols.registry import make_protocol


@dataclass
class Scenario:
    """A reproducible evaluation setup: parameters + adversary placement.

    Attributes
    ----------
    params:
        Protocol parameters.
    malicious_nodes:
        Mapping ``position -> node drop rate``; each listed node drops
        forward traffic at the given rate (bidirectional=False) or all
        traffic (bidirectional=True).
    bidirectional:
        Whether malicious nodes also drop reverse-path traffic.
    """

    params: ProtocolParams = field(default_factory=ProtocolParams)
    malicious_nodes: Dict[int, float] = field(default_factory=dict)
    bidirectional: bool = False

    def __post_init__(self) -> None:
        for position, rate in self.malicious_nodes.items():
            if not 0 < position < self.params.path_length:
                raise ConfigurationError(
                    f"malicious node {position} must be intermediate"
                )
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"invalid node drop rate {rate}")

    # -- ground truth ---------------------------------------------------------

    @property
    def malicious_links(self) -> List[int]:
        """Links the protocols should convict: ``l_i`` for malicious ``F_i``
        (forward-direction drops land on the downstream adjacent link)."""
        return sorted(self.malicious_nodes)

    def forward_link_rates(self) -> List[float]:
        """Per-crossing forward drop rate of each link (data and probes):
        natural loss combined with the egress node's malicious rate."""
        rho = self.params.natural_loss
        rates = []
        for link in range(self.params.path_length):
            beta = self.malicious_nodes.get(link, 0.0)
            rates.append(1.0 - (1.0 - rho) * (1.0 - beta))
        return rates

    def reverse_ack_rates(self) -> List[float]:
        """Per-crossing reverse drop rate for *end-to-end acks*.

        The paper-tactic adversary swallows acks at ingress of ``F_i``,
        which is observationally a loss on ``l_i``'s reverse crossing.
        """
        rho = self.params.natural_loss
        rates = []
        for link in range(self.params.path_length):
            beta = self.malicious_nodes.get(link, 0.0)
            rates.append(1.0 - (1.0 - rho) * (1.0 - beta))
        return rates

    def reverse_report_rates(self) -> List[float]:
        """Per-crossing reverse drop rate for *report acks* — natural only
        (tactic (b): the adversary answers ack requests honestly)."""
        return [self.params.natural_loss] * self.params.path_length

    def model_rates(self):
        """The ``(f, b_ack, b_report)`` triple the outcome models take."""
        return (
            self.forward_link_rates(),
            self.reverse_ack_rates(),
            self.reverse_report_rates(),
        )

    # -- construction -----------------------------------------------------------

    def build_adversaries(self, simulator: Simulator) -> Dict[int, AdversaryStrategy]:
        """Instantiate the adversary strategies for this scenario."""
        adversaries: Dict[int, AdversaryStrategy] = {}
        for position, rate in self.malicious_nodes.items():
            rng = simulator.rng.stream(f"adversary-{position}")
            if self.bidirectional:
                adversaries[position] = UniformDropper(rate, rng)
            else:
                adversaries[position] = PaperTacticAdversary(rate, rng)
        return adversaries

    def build_protocol(self, name: str, simulator: Simulator, **kwargs):
        """Instantiate a named protocol wired with this scenario's path and
        adversaries."""
        return make_protocol(
            name,
            simulator,
            self.params,
            adversaries=self.build_adversaries(simulator),
            **kwargs,
        )


def paper_scenario(
    params: Optional[ProtocolParams] = None,
    malicious_node: int = DEFAULT_MALICIOUS_NODE,
    node_drop_rate: float = DEFAULT_MALICIOUS_NODE_DROP,
    bidirectional: bool = False,
) -> Scenario:
    """The §8.1 running scenario: d=6, ρ=0.01, F4 dropping at 0.02."""
    return Scenario(
        params=params if params is not None else ProtocolParams(),
        malicious_nodes={malicious_node: node_drop_rate},
        bidirectional=bidirectional,
    )
