"""Traffic generators.

The paper's evaluation drives the source at a constant rate (100 or 1000
data packets per second). We provide that generator plus a Poisson
generator for sensitivity studies — burstiness changes instantaneous
storage occupancy, which the ablation benches probe.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterator

from repro.exceptions import ConfigurationError


class TrafficModel(ABC):
    """Produces the send times of successive data packets."""

    @abstractmethod
    def send_times(self, count: int, start: float = 0.0) -> Iterator[float]:
        """Yield ``count`` monotonically non-decreasing send times."""


class ConstantRateTraffic(TrafficModel):
    """Constant bit rate: one packet every ``1/rate`` seconds."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        self.rate = rate

    def send_times(self, count: int, start: float = 0.0) -> Iterator[float]:
        interval = 1.0 / self.rate
        for index in range(count):
            yield start + index * interval


class PoissonTraffic(TrafficModel):
    """Poisson arrivals with mean ``rate`` packets/second."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        self.rate = rate
        self._rng = rng

    def send_times(self, count: int, start: float = 0.0) -> Iterator[float]:
        now = start
        for _ in range(count):
            now += self._rng.expovariate(self.rate)
            yield now


def drive(protocol, traffic: TrafficModel, count: int, drain: float = None) -> None:
    """Schedule ``count`` sends per ``traffic`` and run the simulation.

    Generalizes :meth:`WireProtocol.run_traffic` to arbitrary traffic
    models.
    """
    simulator = protocol.simulator
    start = simulator.now
    last = start
    for send_time in traffic.send_times(count, start=start):
        simulator.schedule_at(send_time, protocol.source.send_data)
        last = send_time
    if drain is None:
        drain = 4.0 * protocol.params.r0
    simulator.run(until=last + drain)
