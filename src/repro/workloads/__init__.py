"""Workloads and canonical evaluation scenarios."""

from repro.workloads.scenarios import Scenario, paper_scenario
from repro.workloads.traffic import ConstantRateTraffic, PoissonTraffic

__all__ = [
    "Scenario",
    "paper_scenario",
    "ConstantRateTraffic",
    "PoissonTraffic",
]
