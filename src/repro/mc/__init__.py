"""Vectorized Monte-Carlo engine for the §8 multi-run experiments."""

from repro.mc.detection import DetectionExperiment, DetectionResult

__all__ = ["DetectionExperiment", "DetectionResult"]
