"""Network-scale detection: many routes, shared links, fused verdicts.

The per-path Monte-Carlo layer (:mod:`repro.mc.detection`) answers "how
fast does ONE source convict a link on ITS path". A mesh deployment asks
a different question: N sources each monitor their own route, the routes
physically share topology links, and the operator wants *per-link*
verdicts for the whole network. This module runs that experiment with
the closed-form outcome models:

1. Each route gets an independent seeded score trajectory from
   :mod:`repro.protocols.models`, with **heterogeneous per-hop rates**:
   hop ``i`` of a route crossing topology link ``L`` composes the
   network's natural loss with ``L``'s adversarial rate exactly like
   :meth:`repro.workloads.scenarios.Scenario.model_rates` does
   (forward data/probes and reverse acks adversarial, report acks
   natural — the paper's tactic (b) adversary).
2. At every checkpoint the per-route (estimate − threshold) margins are
   pooled per topology link by :func:`repro.topology.fusion.fuse_route_evidence`,
   giving per-link posteriors and CONVICTED/EXONERATED/UNDECIDED
   verdicts for the whole mesh.

Sharding is **by route**: routes split into contiguous chunks
(:func:`repro.parallel.shard_sizes`), each route's trajectory seed
derives from ``(seed, route_index)`` alone — never from the shard
decomposition — and the parent performs all fusion, ledger emission, and
metric publication in route order. Output is therefore byte-identical
for every ``jobs`` and ``shards`` value at the same seed.

Why fusion converges faster than any single path: the pooled Hoeffding
evidence for a link crossed by ``k`` routes accumulates ``k`` rounds of
observation per packet interval, so the per-route round count at which
the pooled posterior clears ``1 - sigma`` shrinks roughly like ``1/k``
relative to a lone path with the same margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.mc.detection import DetectionExperiment, default_checkpoints
from repro.metrics.confusion import FpFnCurve, curve_from_convictions
from repro.obs.ledger import get_ledger
from repro.obs.profile import phase as profile_phase
from repro.obs.registry import get_registry
from repro.parallel.engine import run_tasks, shard_seed, shard_sizes
from repro.protocols import models
from repro.topology.fusion import (
    FusionResult,
    RouteEvidence,
    _hoeffding_confidence,
    fuse_route_evidence,
)
from repro.topology.graph import Route, Topology

#: Protocols with closed-form outcome models usable by netexp (statfl's
#: counter estimator has no per-round blame distribution).
NETEXP_PROTOCOLS = (
    "full-ack",
    "sig-ack",
    "paai1",
    "paai2",
    "combo1",
    "combo2",
)


@dataclass
class RouteOutcome:
    """One route's trajectory: estimates/rounds at every checkpoint."""

    route: Route
    seed: int
    thresholds: List[float]
    #: Shape ``(checkpoints, hops)``.
    estimates: np.ndarray
    #: Shape ``(checkpoints,)`` — observation rounds accumulated.
    rounds: np.ndarray
    #: Hops whose underlying topology link is adversarial (ground truth).
    malicious_hops: List[int] = field(default_factory=list)

    def convicted_hops(self, checkpoint_index: int) -> List[int]:
        row = self.estimates[checkpoint_index]
        return [
            hop
            for hop in range(len(self.thresholds))
            if row[hop] > self.thresholds[hop]
        ]

    def first_solo_conviction(
        self, hop: int, sigma: float
    ) -> Optional[int]:
        """First checkpoint index at which THIS route alone convicts
        ``hop`` under the fusion layer's Hoeffding rule — the single-path
        baseline the fused verdict is judged against."""
        threshold = self.thresholds[hop]
        for index in range(self.estimates.shape[0]):
            margin = float(self.estimates[index, hop]) - threshold
            rounds = int(self.rounds[index])
            if margin > 0.0 and _hoeffding_confidence(
                rounds, margin
            ) >= 1.0 - sigma:
                return index
        return None


@dataclass
class NetexpResult:
    """Everything the network experiment produces."""

    protocol: str
    topology: Topology
    routes: List[Route]
    checkpoints: List[int]
    #: Per-checkpoint fusion results (same order as ``checkpoints``).
    fusions: List[FusionResult]
    #: FP/FN curve scored per topology link against ground truth.
    curve: FpFnCurve
    outcomes: List[RouteOutcome]
    sigma: float
    #: link id -> first checkpoint index where fusion convicted it.
    first_convicted: Dict[int, int] = field(default_factory=dict)
    #: link id -> best (earliest) solo-conviction checkpoint index over
    #: the routes crossing it, or absent when no route convicts alone.
    best_single: Dict[int, int] = field(default_factory=dict)

    @property
    def fusion(self) -> FusionResult:
        """The final-checkpoint fusion."""
        return self.fusions[-1]

    def confusion(self) -> Dict[str, object]:
        return self.fusion.score(self.topology.malicious_links)

    def speedup_checkpoints(self, link_id: int) -> Optional[Tuple[int, int]]:
        """``(fused, solo)`` conviction checkpoints (packet counts) for
        ``link_id``, or None when either side never convicts."""
        fused = self.first_convicted.get(link_id)
        solo = self.best_single.get(link_id)
        if fused is None or solo is None:
            return None
        return self.checkpoints[fused], self.checkpoints[solo]

    def render(self) -> str:
        lines = [
            f"netexp: {self.protocol} over {self.topology.name} "
            f"({self.topology.nodes} routers, "
            f"{len(self.topology.links)} links, {len(self.routes)} routes)",
            f"  ground truth: malicious links "
            + (
                ", ".join(f"L{i}" for i in self.topology.malicious_links)
                or "(none)"
            ),
        ]
        final = self.fusion
        score = self.confusion()
        lines.append(
            f"  final verdicts at {self.checkpoints[-1]} packets/route: "
            f"convicted {final.convicted or '[]'}, exonerated "
            f"{len(final.exonerated)} links, undecided "
            f"{len(final.undecided)}"
        )
        lines.append(
            f"  confusion: false positives {score['false_positives']}, "
            f"false negatives {score['false_negatives']}"
            + (" — exact" if score["exact"] else "")
        )
        for link_id in self.topology.malicious_links:
            pair = self.speedup_checkpoints(link_id)
            if pair is None:
                fused = self.first_convicted.get(link_id)
                lines.append(
                    f"  L{link_id}: fused conviction at "
                    + (
                        f"{self.checkpoints[fused]} packets/route"
                        if fused is not None
                        else "(never)"
                    )
                    + "; no single route convicts alone"
                )
                continue
            fused_at, solo_at = pair
            lines.append(
                f"  L{link_id}: fused conviction at {fused_at} "
                f"packets/route vs best single path at {solo_at} "
                f"({solo_at / max(fused_at, 1):.1f}x fewer per-path rounds)"
            )
        return "\n".join(lines)


class NetworkExperiment:
    """Fused multi-route detection over a topology.

    Parameters
    ----------
    topology:
        The mesh, with adversarial links/routers already marked
        (:meth:`~repro.topology.graph.Topology.compromise_link`).
    routes:
        The monitored routes (walks over topology links).
    protocol:
        Registry name; must have a closed-form outcome model
        (:data:`NETEXP_PROTOCOLS`).
    rho:
        Per-link natural loss rate.
    horizon:
        Data packets per route.
    checkpoints:
        Packet-count checkpoints; defaults to the log-spaced grid.
    seed:
        Root seed; route ``i``'s trajectory seed derives from
        ``(seed, i)`` independent of sharding.
    shards:
        Route chunks for parallel execution; defaults to one shard per
        8 routes.
    sigma:
        Fusion error budget (posterior must clear ``1 - sigma``);
        defaults to the protocol parameters' sigma.
    """

    def __init__(
        self,
        topology: Topology,
        routes: Sequence[Route],
        protocol: str = "paai2",
        rho: float = 0.01,
        horizon: int = 10_000,
        checkpoints: Optional[Sequence[int]] = None,
        seed: int = 0,
        shards: Optional[int] = None,
        sigma: Optional[float] = None,
    ) -> None:
        if protocol not in NETEXP_PROTOCOLS:
            raise ConfigurationError(
                f"netexp requires a modelled protocol, got {protocol!r}; "
                f"available: {', '.join(NETEXP_PROTOCOLS)}"
            )
        if not routes:
            raise ConfigurationError("netexp needs at least one route")
        if not 0.0 <= rho < 1.0:
            raise ConfigurationError(f"rho must be in [0, 1), got {rho}")
        self.topology = topology
        self.routes = list(routes)
        self.protocol = protocol
        self.rho = rho
        self.horizon = horizon
        self.checkpoints = (
            list(checkpoints)
            if checkpoints is not None
            else default_checkpoints(horizon)
        )
        if sorted(self.checkpoints) != self.checkpoints:
            raise ConfigurationError("checkpoints must be ascending")
        self.seed = seed
        if shards is None:
            shards = max(1, (len(self.routes) + 7) // 8)
        if shards <= 0:
            raise ConfigurationError(f"shards must be positive, got {shards}")
        self.shards = min(shards, len(self.routes))
        if sigma is None:
            sigma = ProtocolParams(path_length=2, natural_loss=rho).sigma
        if not 0.0 < sigma < 1.0:
            raise ConfigurationError(f"sigma must be in (0, 1), got {sigma}")
        self.sigma = sigma

    # -- execution ---------------------------------------------------------

    def run(self, jobs: int = 1) -> NetexpResult:
        """Execute the experiment; byte-identical for every ``jobs``.

        Workers only compute per-route trajectories; every cross-route
        step (fusion, ledger, metrics) happens here in deterministic
        route / sorted-link order.
        """
        route_specs = [
            (
                index,
                tuple(route.links),
                tuple(
                    self.topology.adversarial_rate(link_id)
                    for link_id in route.links
                ),
                shard_seed(self.seed, index, label="netexp-route"),
            )
            for index, route in enumerate(self.routes)
        ]
        sizes = shard_sizes(len(route_specs), self.shards)
        payloads = []
        offset = 0
        for size in sizes:
            payloads.append(
                (
                    self.protocol,
                    self.rho,
                    self.checkpoints,
                    route_specs[offset : offset + size],
                )
            )
            offset += size
        with profile_phase("netexp-routes"):
            parts = run_tasks(_run_netexp_shard, payloads, jobs=jobs)
        outcomes: List[RouteOutcome] = []
        for part in parts:
            for index, thresholds, estimates, rounds in part:
                route = self.routes[index]
                outcomes.append(
                    RouteOutcome(
                        route=route,
                        seed=route_specs[index][3],
                        thresholds=list(thresholds),
                        estimates=estimates,
                        rounds=rounds,
                        malicious_hops=[
                            hop
                            for hop, rate in enumerate(route_specs[index][2])
                            if rate > 0.0
                        ],
                    )
                )

        with profile_phase("netexp-fusion"):
            fusions, first_convicted = self._fuse_all(outcomes)
        best_single = self._best_single(outcomes)
        curve = self._curve(fusions)
        self._emit_ledger(outcomes, fusions)
        self._emit_metrics(fusions[-1])
        return NetexpResult(
            protocol=self.protocol,
            topology=self.topology,
            routes=self.routes,
            checkpoints=self.checkpoints,
            fusions=fusions,
            curve=curve,
            outcomes=outcomes,
            sigma=self.sigma,
            first_convicted=first_convicted,
            best_single=best_single,
        )

    # -- fusion ------------------------------------------------------------

    def _evidence_at(
        self, outcomes: Sequence[RouteOutcome], index: int
    ) -> List[RouteEvidence]:
        return [
            RouteEvidence(
                route_id=outcome.route.route_id,
                links=tuple(outcome.route.links),
                estimates=tuple(float(x) for x in outcome.estimates[index]),
                thresholds=tuple(outcome.thresholds),
                rounds=int(outcome.rounds[index]),
            )
            for outcome in outcomes
        ]

    def _fuse_all(self, outcomes):
        fusions: List[FusionResult] = []
        first_convicted: Dict[int, int] = {}
        last = len(self.checkpoints) - 1
        for index, checkpoint in enumerate(self.checkpoints):
            fusion = fuse_route_evidence(
                self._evidence_at(outcomes, index),
                sigma=self.sigma,
                # Only the final checkpoint lands in the ledger: the
                # per-checkpoint trail is reconstructable from seeds, and
                # C x L fusion lines would drown the verdict chain.
                record=(index == last),
                checkpoint=checkpoint,
            )
            fusions.append(fusion)
            for link_id in fusion.convicted:
                first_convicted.setdefault(link_id, index)
        return fusions, first_convicted

    def _best_single(self, outcomes) -> Dict[int, int]:
        best: Dict[int, int] = {}
        for outcome in outcomes:
            for hop in outcome.malicious_hops:
                link_id = outcome.route.links[hop]
                solo = outcome.first_solo_conviction(hop, self.sigma)
                if solo is None:
                    continue
                if link_id not in best or solo < best[link_id]:
                    best[link_id] = solo
        return best

    def _curve(self, fusions: Sequence[FusionResult]) -> FpFnCurve:
        link_ids = [link.link_id for link in self.topology.links]
        position = {link_id: i for i, link_id in enumerate(link_ids)}
        convictions = np.zeros(
            (len(self.checkpoints), 1, len(link_ids)), dtype=bool
        )
        for index, fusion in enumerate(fusions):
            for link_id in fusion.convicted:
                convictions[index, 0, position[link_id]] = True
        malicious = [position[i] for i in self.topology.malicious_links]
        return curve_from_convictions(self.checkpoints, convictions, malicious)

    # -- observability -----------------------------------------------------

    def _emit_ledger(self, outcomes, fusions) -> None:
        ledger = get_ledger()
        if not ledger.enabled:
            return
        final = len(self.checkpoints) - 1
        for outcome in outcomes:
            route = outcome.route
            ledger.record(
                "run_start",
                run=route.route_id,
                protocol=self.protocol,
                seed=outcome.seed,
                path_length=route.length,
                horizon=self.horizon,
                malicious_links=outcome.malicious_hops,
                topology_links=list(route.links),
            )
            convicted = outcome.convicted_hops(final)
            truth = set(outcome.malicious_hops)
            ledger.record(
                "verdict",
                run=route.route_id,
                checkpoint=self.checkpoints[final],
                convicted=convicted,
                false_positives=sorted(set(convicted) - truth),
                false_negatives=sorted(truth - set(convicted)),
                exact=set(convicted) == truth,
            )
        # Fusion entries were recorded by _fuse_all at the final
        # checkpoint (between per-route trails and this summary).
        fusion = fusions[-1]
        score = fusion.score(self.topology.malicious_links)
        ledger.record(
            "experiment",
            protocol=self.protocol,
            runs=len(outcomes),
            horizon=self.horizon,
            seed=self.seed,
            # Deliberately no shard/jobs fields: the ledger must be
            # byte-identical however the route work was decomposed.
            backend="netexp",
            malicious_links=self.topology.malicious_links,
            final_false_positive=float(self.curve_rate(fusions, "fp")),
            final_false_negative=float(self.curve_rate(fusions, "fn")),
            convicted_links=fusion.convicted,
            fusion_exact=score["exact"],
        )

    def curve_rate(self, fusions: Sequence[FusionResult], which: str) -> float:
        fusion = fusions[-1]
        malicious = set(self.topology.malicious_links)
        honest = [
            link.link_id
            for link in self.topology.links
            if link.link_id not in malicious
        ]
        convicted = set(fusion.convicted)
        if which == "fp":
            return (
                len(convicted - malicious) / len(honest) if honest else 0.0
            )
        return (
            len(malicious - convicted) / len(malicious) if malicious else 0.0
        )

    def _emit_metrics(self, fusion: FusionResult) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter("netexp.routes", protocol=self.protocol).inc(
            len(self.routes)
        )
        for verdict, links in (
            ("convicted", fusion.convicted),
            ("exonerated", fusion.exonerated),
            ("undecided", fusion.undecided),
        ):
            registry.counter(
                "netexp.links", protocol=self.protocol, verdict=verdict
            ).inc(len(links))


def _route_trajectory(protocol, rho, checkpoints, links, betas, seed):
    """One route's score trajectory under the closed-form outcome model.

    Returns ``(thresholds, estimates (C, d), rounds (C,))``. Mirrors
    :meth:`DetectionExperiment._run_modelled` for a single run, but with
    per-hop rates composed from the topology instead of a homogeneous
    scenario.
    """
    d = len(links)
    params = ProtocolParams(path_length=d, natural_loss=rho)
    f = [1.0 - (1.0 - rho) * (1.0 - beta) for beta in betas]
    b_ack = list(f)
    b_report = [rho] * d
    model = models.build_model(protocol, f, b_ack, b_report, params)
    thresholds = models.calibrated_thresholds(protocol, params)
    rng = np.random.default_rng(seed)
    pvals = model.probabilities
    score_matrix = model.score_matrix()

    scores = np.zeros((1, d), dtype=np.int64)
    rounds = np.int64(0)
    estimates = np.zeros((len(checkpoints), d))
    round_track = np.zeros(len(checkpoints), dtype=np.int64)
    previous = 0
    for index, checkpoint in enumerate(checkpoints):
        block = checkpoint - previous
        previous = checkpoint
        if block > 0:
            if model.rounds_per_packet >= 1.0:
                block_rounds = block
            else:
                block_rounds = int(
                    rng.binomial(block, model.rounds_per_packet)
                )
            if block_rounds > 0:
                counts = rng.multinomial(block_rounds, pvals)
                scores += (counts[None, :] @ score_matrix).astype(np.int64)
                rounds += block_rounds
        estimates[index] = DetectionExperiment._estimates(
            scores, np.asarray([rounds]), model.kind, d
        )[0]
        round_track[index] = rounds
    return thresholds, estimates, round_track


def _run_netexp_shard(payload):
    """Worker: trajectories for one contiguous chunk of routes.

    Module-level so payloads pickle by reference. Each route's seed came
    pre-derived from the root seed and absolute route index, so the
    result is independent of how routes were chunked.
    """
    protocol, rho, checkpoints, specs = payload
    results = []
    for index, links, betas, seed in specs:
        thresholds, estimates, rounds = _route_trajectory(
            protocol, rho, checkpoints, links, betas, seed
        )
        results.append((index, thresholds, estimates, rounds))
    return results


__all__ = [
    "NETEXP_PROTOCOLS",
    "NetworkExperiment",
    "NetexpResult",
    "RouteOutcome",
]
