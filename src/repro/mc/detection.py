"""The detection experiment: §8's 10,000-run FP/FN study, vectorized.

Running 10,000 independent event-driven simulations of up to 6x10^5
packets each is far beyond laptop-Python budgets. Instead we use the
exact per-round outcome distributions of :mod:`repro.protocols.models`
(cross-validated against the wire simulator): for each run and each
inter-checkpoint block we draw a multinomial over outcome categories and
apply the protocol's scoring semantics with numpy, reproducing the score
boards of thousands of wire runs in milliseconds.

The statistical FL baseline has no per-round category distribution; its
runs are simulated by binomial thinning of per-node arrival counts plus
binomial counter sampling — again exact with respect to the wire
semantics, up to report-collection staleness of at most one interval.

Run batches **shard**: the runs split into contiguous chunks of at most
:data:`DEFAULT_SHARD_RUNS`, each chunk seeded independently from the root
seed via :func:`repro.parallel.shard_seed`, and the chunk results are
concatenated in shard order. The decomposition depends only on
``(runs, shards)`` — never on worker count — so ``run(jobs=N)`` produces
byte-identical output for every ``N``, and a sharded batch can fan out
over a process pool for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.metrics.confusion import FpFnCurve, curve_from_convictions
from repro.metrics.convergence import first_exact_round
from repro.net.backend import BACKEND_NAMES, DetectionRequest, get_backend
from repro.obs.ledger import get_ledger
from repro.obs.profile import phase as profile_phase
from repro.parallel.engine import run_tasks, shard_seed, shard_sizes
from repro.protocols import models
from repro.workloads.scenarios import Scenario

#: Target runs per shard: small enough that full-scale batches decompose
#: into many parallelizable chunks, large enough that batches at or below
#: this size take the single-shard path (identical to the historical
#: single-generator behavior).
DEFAULT_SHARD_RUNS = 256


def resolve_shards(runs: int, shards: Optional[int] = None) -> int:
    """Shard count for a batch: explicit, or ``ceil(runs / 256)`` by
    default. Deterministic in ``runs`` alone — worker count never enters."""
    if shards is None:
        return max(1, math.ceil(runs / DEFAULT_SHARD_RUNS))
    if shards <= 0:
        raise ConfigurationError(f"shards must be positive, got {shards}")
    return min(shards, runs)


def default_checkpoints(horizon: int, points: int = 30) -> List[int]:
    """Log-spaced packet-count checkpoints (Figure 2 uses log axes)."""
    if horizon < 10:
        raise ConfigurationError("horizon too small")
    raw = np.unique(
        np.geomspace(10, horizon, num=points).astype(np.int64)
    )
    return [int(x) for x in raw]


@dataclass
class DetectionResult:
    """Everything the Figure 2 / Table 2 experiments need.

    Attributes
    ----------
    curve:
        FP/FN rates over time.
    convictions:
        Boolean tensor ``(checkpoints, runs, links)``.
    estimates_last:
        Per-link estimates at the final checkpoint, shape
        ``(runs, links)`` — used for distributional sanity checks.
    """

    protocol: str
    checkpoints: List[int]
    curve: FpFnCurve
    convictions: np.ndarray
    estimates_last: np.ndarray
    malicious_links: List[int] = field(default_factory=list)
    #: Execution backend the experiment selected ("model", "fastpath",
    #: or "event").
    backend: str = "model"
    #: Engine that actually produced each run. Wire backends may fall
    #: back per request (e.g. fastpath routes fault schedules to the
    #: event engine), so this is the audit trail; empty for "model".
    engines: List[str] = field(default_factory=list)
    #: Why runs fell back to the event engine (empty when none did).
    reasons: List[str] = field(default_factory=list)

    def convergence_packets(self, sigma: float) -> Optional[int]:
        return self.curve.convergence_packets(sigma)

    def average_detection_packets(self) -> float:
        """Mean per-run packets to a stable exact verdict (Table 2's
        'average'); runs that never converge count at the horizon."""
        first = first_exact_round(
            self.checkpoints, self.convictions, self.malicious_links
        )
        horizon = self.checkpoints[-1]
        resolved = np.where(first < 0, horizon, first)
        return float(resolved.mean())

    def per_link_error_rates(self) -> np.ndarray:
        """Per-link verdict error rate at each checkpoint.

        Shape ``(checkpoints, links)``: for an honest link, the fraction
        of runs convicting it (its false-positive rate); for a malicious
        link, the fraction of runs *not* convicting it (its
        false-negative rate). This is what Figure 2(c) plots per link:
        under PAAI-2's interval scoring, links farther from the source
        take visibly longer to settle.
        """
        malicious = np.zeros(self.convictions.shape[2], dtype=bool)
        for index in self.malicious_links:
            malicious[index] = True
        errors = self.convictions.mean(axis=1)  # conviction frequency
        errors = np.where(malicious[None, :], 1.0 - errors, errors)
        return errors


class DetectionExperiment:
    """Multi-run detection-rate experiment for one protocol.

    Parameters
    ----------
    protocol:
        Registry name.
    scenario:
        Evaluation scenario (parameters + adversary placement).
    runs:
        Number of independent simulated runs (the paper uses 10,000).
    horizon:
        Total data packets per run.
    checkpoints:
        Packet counts at which verdicts are evaluated; defaults to a
        log-spaced grid up to the horizon.
    seed:
        Seed for the numpy generator.
    fl_sampling / fl_interval:
        Statistical FL parameters (ignored for other protocols).
    shards:
        Number of independently seeded run chunks; ``None`` (default)
        resolves via :func:`resolve_shards`. A single shard reproduces
        the historical single-generator behavior exactly.
    backend:
        Execution engine: ``"model"`` (closed-form outcome models, the
        historical default, byte-identical to before the seam existed),
        ``"fastpath"`` (vectorized wire replay with automatic event
        fallback), or ``"event"`` (full discrete-event simulation).
    faults:
        Optional fault schedule, only supported by the wire backends
        (the closed-form models cannot express fault injection).
    """

    def __init__(
        self,
        protocol: str,
        scenario: Scenario,
        runs: int = 1000,
        horizon: int = 10_000,
        checkpoints: Optional[Sequence[int]] = None,
        seed: int = 0,
        fl_sampling: float = 0.01,
        shards: Optional[int] = None,
        fl_interval: int = 1000,
        backend: str = "model",
        faults=None,
    ) -> None:
        if runs <= 0:
            raise ConfigurationError("runs must be positive")
        if backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
            )
        if faults is not None and backend == "model":
            raise ConfigurationError(
                "fault schedules require a wire backend "
                "(backend='fastpath' or 'event')"
            )
        self.protocol = protocol
        self.scenario = scenario
        self.runs = runs
        self.horizon = horizon
        self.checkpoints = (
            list(checkpoints) if checkpoints is not None
            else default_checkpoints(horizon)
        )
        if sorted(self.checkpoints) != self.checkpoints:
            raise ConfigurationError("checkpoints must be ascending")
        if self.checkpoints[-1] > horizon:
            raise ConfigurationError("checkpoints exceed horizon")
        self.seed = seed
        self.fl_sampling = fl_sampling
        self.fl_interval = fl_interval
        self.backend = backend
        self.faults = faults
        self.shards = resolve_shards(runs, shards)

    # -- public API ----------------------------------------------------------

    def run(self, jobs: int = 1) -> DetectionResult:
        """Execute the batch; ``jobs`` workers process shards concurrently.

        The result is identical for every ``jobs`` value: shards are
        seeded from the root seed by shard index (model backend) or
        partitioned by absolute run offset (wire backends) and
        concatenated in shard order, so parallelism only changes
        wall-clock time.
        """
        engines: List[str] = []
        reasons: List[str] = []
        if self.shards == 1:
            if self.backend == "model":
                with profile_phase("scoring"):
                    convictions, estimates = self._run_arrays()
            else:
                convictions, estimates, engines, reasons = self._run_wire(
                    self.runs, run_offset=0
                )
        else:
            sizes = shard_sizes(self.runs, self.shards)
            offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
            payloads = [
                (
                    self.protocol,
                    self.scenario,
                    size,
                    self.horizon,
                    self.checkpoints,
                    # Model shards draw from independently derived seeds;
                    # wire shards share the root seed and partition the
                    # absolute run-index space instead, so every shard
                    # decomposition is byte-identical to shards=1.
                    self.seed
                    if self.backend != "model"
                    else shard_seed(self.seed, index, label="mc-shard"),
                    self.fl_sampling,
                    self.fl_interval,
                    self.backend,
                    self.faults,
                    int(offset),
                )
                for index, (size, offset) in enumerate(zip(sizes, offsets))
            ]
            parts = run_tasks(_run_detection_shard, payloads, jobs=jobs)
            convictions = np.concatenate([part[0] for part in parts], axis=1)
            estimates = np.concatenate([part[1] for part in parts], axis=0)
            engines = [engine for part in parts for engine in part[2]]
            reasons = sorted({reason for part in parts for reason in part[3]})
        with profile_phase("conviction"):
            curve = curve_from_convictions(
                self.checkpoints, convictions, self.scenario.malicious_links
            )
        ledger = get_ledger()
        if ledger.enabled:
            ledger.record(
                "experiment",
                protocol=self.protocol,
                runs=self.runs,
                horizon=self.horizon,
                seed=self.seed,
                shards=self.shards,
                backend=self.backend,
                malicious_links=self.scenario.malicious_links,
                final_false_positive=float(curve.fp_rates[-1]),
                final_false_negative=float(curve.fn_rates[-1]),
                engine_fallbacks=reasons,
            )
        return DetectionResult(
            protocol=self.protocol,
            checkpoints=self.checkpoints,
            curve=curve,
            convictions=convictions,
            estimates_last=estimates,
            malicious_links=self.scenario.malicious_links,
            backend=self.backend,
            engines=engines,
            reasons=reasons,
        )

    def _run_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """One generator, all runs: ``(convictions, estimates_last)``."""
        if self.protocol == "statfl":
            return self._run_statfl()
        return self._run_modelled()

    # -- wire backends ---------------------------------------------------------

    def _run_wire(self, runs: int, run_offset: int):
        """Delegate ``runs`` wire runs to the selected backend.

        Returns ``(convictions, estimates_last, engines, reasons)``. Run
        seeds derive from ``(seed, run_offset + i)``, so shards that
        partition the offset space reproduce the unsharded batch.
        """
        request = DetectionRequest(
            protocol=self.protocol,
            scenario=self.scenario,
            runs=runs,
            horizon=self.horizon,
            checkpoints=self.checkpoints,
            seed=self.seed,
            fl_sampling=self.fl_sampling,
            fl_interval=self.fl_interval,
            faults=self.faults,
            run_offset=run_offset,
        )
        result = get_backend(self.backend).run(request)
        return (
            result.convictions,
            result.estimates_last,
            result.engines,
            result.reasons,
        )

    # -- model-driven protocols ------------------------------------------------

    def _run_modelled(self):
        params = self.scenario.params
        d = params.path_length
        rng = np.random.default_rng(self.seed)
        f, b_ack, b_report = self.scenario.model_rates()
        model = models.build_model(self.protocol, f, b_ack, b_report, params)
        thresholds = np.asarray(
            models.calibrated_thresholds(self.protocol, params)
        )
        pvals = model.probabilities
        score_matrix = model.score_matrix()  # (d+1, d)

        scores = np.zeros((self.runs, d), dtype=np.int64)
        rounds = np.zeros(self.runs, dtype=np.int64)
        convictions = np.zeros(
            (len(self.checkpoints), self.runs, d), dtype=bool
        )
        estimates = np.zeros((self.runs, d))

        previous = 0
        for index, checkpoint in enumerate(self.checkpoints):
            block = checkpoint - previous
            previous = checkpoint
            if block > 0:
                if model.rounds_per_packet >= 1.0:
                    block_rounds = np.full(self.runs, block, dtype=np.int64)
                else:
                    block_rounds = rng.binomial(
                        block, model.rounds_per_packet, size=self.runs
                    )
                counts = _grouped_multinomial(rng, block_rounds, pvals)
                scores += (counts @ score_matrix).astype(np.int64)
                rounds += block_rounds
            estimates = self._estimates(scores, rounds, model.kind, d)
            convictions[index] = estimates > thresholds[None, :]
        return convictions, estimates

    @staticmethod
    def _estimates(scores, rounds, kind, d):
        safe_rounds = np.maximum(rounds, 1)[:, None].astype(float)
        if kind == models.KIND_BLAME:
            return scores / safe_rounds
        # Interval scoring: cumulative difference estimator, vectorized.
        padded = np.concatenate(
            [scores, np.zeros((scores.shape[0], 1), dtype=scores.dtype)], axis=1
        )
        cumulative = d * (padded[:, :-1] - padded[:, 1:]) / safe_rounds
        shifted = np.concatenate(
            [np.zeros((scores.shape[0], 1)), cumulative[:, :-1]], axis=1
        )
        return np.maximum(0.0, cumulative - shifted)

    # -- statistical FL -----------------------------------------------------------

    def _run_statfl(self):
        params = self.scenario.params
        d = params.path_length
        rng = np.random.default_rng(self.seed)
        forward = np.asarray(self.scenario.forward_link_rates())
        thresholds = np.asarray(
            models.calibrated_thresholds("statfl", params)
        )
        # Cumulative arrivals per node 0..d and sampled-counter values.
        arrivals = np.zeros((self.runs, d + 1), dtype=np.int64)
        counters = np.zeros((self.runs, d), dtype=np.int64)  # nodes 1..d
        convictions = np.zeros(
            (len(self.checkpoints), self.runs, d), dtype=bool
        )
        estimates = np.zeros((self.runs, d))

        previous = 0
        for index, checkpoint in enumerate(self.checkpoints):
            block = checkpoint - previous
            previous = checkpoint
            if block > 0:
                new_arrivals = np.full(self.runs, block, dtype=np.int64)
                arrivals[:, 0] += new_arrivals
                for link in range(d):
                    new_arrivals = rng.binomial(new_arrivals, 1.0 - forward[link])
                    arrivals[:, link + 1] += new_arrivals
                    counters[:, link] += rng.binomial(
                        new_arrivals, 0.0 + self.fl_sampling
                    )
            # Survival fractions: node 0 exact, nodes 1..d from counters.
            sent = np.maximum(arrivals[:, 0], 1).astype(float)
            fractions = np.concatenate(
                [
                    np.ones((self.runs, 1)),
                    counters / (self.fl_sampling * sent[:, None]),
                ],
                axis=1,
            )
            upstream = np.maximum(fractions[:, :-1], 1e-12)
            estimates = np.maximum(0.0, 1.0 - fractions[:, 1:] / upstream)
            convictions[index] = estimates > thresholds[None, :]
        return convictions, estimates


def _run_detection_shard(payload):
    """Execute one shard of a sharded batch (possibly in a worker).

    Module-level so payloads pickle by reference; a shard is simply a
    single-shard :class:`DetectionExperiment` at the shard's derived seed
    (model backend) or at the root seed plus a run offset (wire
    backends). Returns ``(convictions, estimates, engines, reasons)``.
    """
    (
        protocol,
        scenario,
        runs,
        horizon,
        checkpoints,
        seed,
        fl_sampling,
        fl_interval,
        backend,
        faults,
        run_offset,
    ) = payload
    shard = DetectionExperiment(
        protocol,
        scenario,
        runs=runs,
        horizon=horizon,
        checkpoints=checkpoints,
        seed=seed,
        fl_sampling=fl_sampling,
        shards=1,
        fl_interval=fl_interval,
        backend=backend,
        faults=faults,
    )
    if backend == "model":
        convictions, estimates = shard._run_arrays()
        return convictions, estimates, [], []
    return shard._run_wire(runs, run_offset=run_offset)


def _grouped_multinomial(rng, trials, pvals):
    """Draw one multinomial per run with per-run trial counts.

    numpy's ``Generator.multinomial`` broadcasts over a trials array, so
    this is a thin wrapper kept for clarity (and a single place to change
    the strategy if the dependency floor moves).
    """
    return rng.multinomial(trials, pvals)
