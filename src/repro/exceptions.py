"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from protocol-level
verification failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A parameter or topology configuration is invalid.

    Raised eagerly at construction time: a path of non-positive length, a
    probability outside ``[0, 1]``, a threshold ordering violation
    (``alpha <= rho``), and similar misconfigurations.
    """


class CryptoError(ReproError):
    """Base class for failures inside the cryptographic substrate."""


class KeyError_(CryptoError):
    """A key lookup failed (unknown node, missing pairwise key)."""


class AuthenticationError(CryptoError):
    """A MAC or onion-report layer failed verification.

    This is the *expected* signal produced when an adversary altered a
    report: the verification routines raise (or report) it, and the scoring
    layer converts it into a drop-score increment.
    """


class DecryptionError(CryptoError):
    """An oblivious (PAAI-2) report failed to decode to the expected value."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or after the simulation horizon."""


class ProtocolError(ReproError):
    """A protocol agent received a packet it cannot process."""


class TaskRetryError(ReproError):
    """A parallel task kept failing after exhausting its retry budget.

    Raised by the :mod:`repro.parallel` engine when a task unit has
    failed (exception, worker crash, or timeout) ``max_attempts`` times
    under a :class:`~repro.parallel.engine.RetryPolicy`. The original
    failure is chained as ``__cause__``.
    """


class ConvergenceError(ReproError):
    """An experiment failed to reach the converged condition in its budget."""
