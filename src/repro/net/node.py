"""Node runtime: packet store, timers, and guarded forwarding.

A :class:`Node` is one hop ``F_i`` on the monitored path. Protocol agents
subclass it and implement :meth:`Node.on_packet`. The base class provides:

* a :class:`PacketStore` holding per-packet state (identifier ``H(m)``,
  wait-timer handles, stored ack copies). Its occupancy *is* the storage
  overhead metric of §7.4/Figure 3, so the store reports every size change
  to an optional observer;
* timers backed by the engine's event queue;
* ``send_forward``/``send_backward`` egress helpers that consult the node's
  adversary strategy — a compromised node drops/alters traffic at egress,
  so its dropping manifests on its *adjacent links*, exactly the paper's
  observation that AAI protocols identify links, not nodes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.exceptions import CryptoError, ProtocolError, SimulationError
from repro.net.clock import NodeClock
from repro.net.packets import Direction, Packet
from repro.obs.registry import get_registry

#: Signature of the fault-injection gate installed by ``repro.faults``:
#: ``gate(node, packet, direction, stage) -> bool`` where ``stage`` is
#: ``"ingress"`` or ``"egress"``; returning False discards the packet
#: (e.g. the node is inside a crash window).
FaultGate = Callable[["Node", Packet, Direction, str], bool]


class PacketStore:
    """Keyed per-packet state with occupancy tracking.

    Parameters
    ----------
    observer:
        Optional callable ``(time, size)`` invoked after every size change;
        the storage-overhead experiments plug a recorder in here.
    """

    def __init__(self, observer: Optional[Callable[[float, int], None]] = None) -> None:
        self._entries: Dict[bytes, Dict[str, Any]] = {}
        self._observer = observer
        self.peak = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, identifier: bytes) -> bool:
        return identifier in self._entries

    def set_observer(self, observer: Callable[[float, int], None]) -> None:
        self._observer = observer

    def add(self, identifier: bytes, now: float, **state: Any) -> Dict[str, Any]:
        """Insert (or replace) the entry for ``identifier``."""
        entry = dict(state)
        entry["stored_at"] = now
        self._entries[identifier] = entry
        self._notify(now)
        return entry

    def get(self, identifier: bytes) -> Optional[Dict[str, Any]]:
        return self._entries.get(identifier)

    def pop(self, identifier: bytes, now: float) -> Optional[Dict[str, Any]]:
        entry = self._entries.pop(identifier, None)
        if entry is not None:
            self._notify(now)
        return entry

    def clear(self, now: float) -> None:
        if self._entries:
            self._entries.clear()
            self._notify(now)

    def _notify(self, now: float) -> None:
        size = len(self._entries)
        if size > self.peak:
            self.peak = size
        if self._observer is not None:
            self._observer(now, size)


class Node:
    """Base class for path nodes ``F_0 .. F_d``.

    Subclasses implement :meth:`on_packet`. Wiring (links, clock, stats) is
    performed by :class:`repro.net.path.Path`; a node is unusable until
    attached.
    """

    def __init__(self, position: int) -> None:
        self.position = position
        self.store = PacketStore()
        #: Adversary strategy controlling this node, or None when honest.
        self.adversary = None
        self.clock: Optional[NodeClock] = None
        #: Fault-injection gate (``repro.faults``), or None when healthy.
        self.fault_gate: Optional[FaultGate] = None
        #: Degraded-mode events survived by this node (malformed input
        #: dropped instead of raised); mirrored by ``protocol.faults_seen``.
        self.faults_seen = 0
        #: Per-kind breakdown of :attr:`faults_seen`.
        self.fault_counts: Dict[str, int] = {}
        self._uplink = None  # link l_{i-1}, toward the source
        self._downlink = None  # link l_i, toward the destination
        self._path = None
        # Bound at attach time: the series carries the owning path's id,
        # so two paths sharing a simulator never merge their fault
        # counters. Until attached, faults are tallied locally only.
        self._obs_faults = None

    # -- wiring ----------------------------------------------------------

    def attach(self, path, clock: NodeClock, uplink, downlink) -> None:
        """Called by Path to wire this node in."""
        self._path = path
        self.clock = clock
        self._uplink = uplink
        self._downlink = downlink
        self._obs_faults = get_registry().counter(
            "protocol.faults_seen",
            node=str(self.position),
            path=str(path.path_id),
        )

    @property
    def path(self):
        if self._path is None:
            raise SimulationError(f"node {self.position} is not attached to a path")
        return self._path

    @property
    def now(self) -> float:
        """This node's local (possibly skewed) time."""
        if self.clock is None:
            raise SimulationError(f"node {self.position} is not attached to a path")
        return self.clock.now

    # -- traffic ---------------------------------------------------------

    def on_packet(self, packet: Packet, direction: Direction) -> None:
        """Protocol logic: handle a packet delivered to this node."""
        raise NotImplementedError

    def record_fault(self, kind: str) -> None:
        """Account a degraded-mode event (survived fault) on this node."""
        self.faults_seen += 1
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        if self._obs_faults is not None:
            self._obs_faults.inc()

    def deliver(self, packet: Packet, direction: Direction) -> None:
        """Ingress from a link (engine callback).

        Degraded mode: a malformed, corrupted, or replayed packet that
        makes protocol logic raise :class:`CryptoError`/:class:`ProtocolError`
        is dropped and counted (``protocol.faults_seen``) instead of
        escaping into the event loop — a router does not crash on a bad
        packet. Engine/configuration errors still propagate: those are
        bugs, not traffic.
        """
        if self.fault_gate is not None and not self.fault_gate(
            self, packet, direction, "ingress"
        ):
            return
        if self.adversary is not None:
            processed = self.adversary.process_ingress(self, packet, direction)
            if processed is None:
                self.path.stats.node_drop_stats(self.position).record(
                    packet, direction
                )
                self.path.notify_node_drop(self, packet, direction, "ingress")
                return
            packet = processed
        try:
            self.on_packet(packet, direction)
        except (CryptoError, ProtocolError) as exc:
            self.record_fault(type(exc).__name__)

    def send_forward(self, packet: Packet) -> None:
        """Egress toward the destination on link ``l_position``."""
        if self._downlink is None:
            raise ProtocolError(
                f"node {self.position} has no downstream link (destination?)"
            )
        self._egress(packet, self._downlink, Direction.FORWARD)

    def send_backward(self, packet: Packet) -> None:
        """Egress toward the source on link ``l_{position-1}``."""
        if self._uplink is None:
            raise ProtocolError(f"node {self.position} has no upstream link (source?)")
        self._egress(packet, self._uplink, Direction.REVERSE)

    def _egress(self, packet: Packet, link, direction: Direction) -> None:
        if self.fault_gate is not None and not self.fault_gate(
            self, packet, direction, "egress"
        ):
            return
        if self.adversary is not None:
            processed = self.adversary.process(self, packet, direction)
            if processed is None:
                self.path.stats.node_drop_stats(self.position).record(
                    packet, direction
                )
                self.path.notify_node_drop(self, packet, direction, "egress")
                return
            packet = processed
        link.transmit(packet, direction)

    # -- timers ----------------------------------------------------------

    def set_timer(self, delay: float, action: Callable[[], None]):
        """Schedule ``action`` after ``delay`` seconds of engine time."""
        return self.path.schedule_in(delay, action)
