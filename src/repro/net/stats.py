"""Statistics collection for links and paths.

The evaluation needs three families of numbers:

* per-link transmission/loss counts split by packet kind and by cause
  (natural vs. adversarial) — ground truth against which the protocols'
  inferred drop scores are judged;
* communication overhead — bytes and packets of protocol traffic (probes
  and acks) per data packet, the Table 1 column;
* end-to-end delivery counts — the source's observed drop rate ψ.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.packets import Direction, Packet, PacketKind


@dataclass
class LinkStats:
    """Counters for one link (both directions pooled unless split)."""

    transmissions: Counter = field(default_factory=Counter)
    natural_losses: Counter = field(default_factory=Counter)
    bytes_sent: Counter = field(default_factory=Counter)

    def record_transmission(self, packet: Packet, direction: Direction) -> None:
        self.transmissions[(packet.kind, direction)] += 1
        self.bytes_sent[packet.kind] += packet.size

    def record_natural_loss(self, packet: Packet, direction: Direction) -> None:
        self.natural_losses[(packet.kind, direction)] += 1

    def total_transmissions(self) -> int:
        return sum(self.transmissions.values())

    def total_natural_losses(self) -> int:
        return sum(self.natural_losses.values())

    def loss_rate(self) -> float:
        """Empirical natural loss rate across all traffic on this link."""
        sent = self.total_transmissions()
        return self.total_natural_losses() / sent if sent else 0.0


@dataclass
class NodeDropStats:
    """Counters for one (malicious) node's deliberate drops."""

    drops: Counter = field(default_factory=Counter)

    def record(self, packet: Packet, direction: Direction) -> None:
        self.drops[(packet.kind, direction)] += 1

    def total(self) -> int:
        return sum(self.drops.values())


class PathStats:
    """Aggregated statistics for one monitored path."""

    def __init__(self, length: int) -> None:
        self.length = length
        self.links: List[LinkStats] = [LinkStats() for _ in range(length)]
        self.node_drops: Dict[int, NodeDropStats] = {}
        #: Source-side counters.
        self.data_sent = 0
        self.data_delivered = 0
        #: Protocol traffic accounting (bytes), split by kind.
        self.overhead_bytes: Counter = Counter()
        self.overhead_packets: Counter = Counter()
        self.data_bytes = 0

    def record_data_sent(self, size: int) -> None:
        self.data_sent += 1
        self.data_bytes += size

    def record_data_delivered(self) -> None:
        self.data_delivered += 1

    def record_overhead(self, packet: Packet) -> None:
        """Count a non-data packet entering the network."""
        if packet.kind is PacketKind.DATA:
            return
        self.overhead_bytes[packet.kind] += packet.size
        self.overhead_packets[packet.kind] += 1

    def node_drop_stats(self, position: int) -> NodeDropStats:
        return self.node_drops.setdefault(position, NodeDropStats())

    @property
    def end_to_end_drop_rate(self) -> float:
        """Observed ψ: fraction of data packets that never reached D."""
        if self.data_sent == 0:
            return 0.0
        return 1.0 - self.data_delivered / self.data_sent

    def overhead_ratio(self) -> float:
        """Protocol bytes per data byte — the §9 'additional overhead'."""
        if self.data_bytes == 0:
            return 0.0
        return sum(self.overhead_bytes.values()) / self.data_bytes

    def true_malicious_drops(self) -> int:
        """Total deliberate drops across all adversarial nodes."""
        return sum(stats.total() for stats in self.node_drops.values())
