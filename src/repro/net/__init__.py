"""Discrete-event network substrate.

The paper evaluates its protocols on a single multi-hop forwarding path
(Figure 1): nodes ``F_0 = S, F_1, ..., F_d = D`` joined by links
``l_0 .. l_{d-1}``, each link exhibiting independent natural loss and a
uniformly distributed per-direction latency, with loosely synchronized node
clocks. This package provides that substrate as a small discrete-event
simulator:

* :mod:`repro.net.rng` — deterministic, labeled random streams;
* :mod:`repro.net.clock` — simulation clock plus per-node skew;
* :mod:`repro.net.events` — event queue and scheduler;
* :mod:`repro.net.packets` — the packet taxonomy (data/probe/ack);
* :mod:`repro.net.loss` — Bernoulli and Gilbert-Elliott loss models;
* :mod:`repro.net.latency` — link latency models;
* :mod:`repro.net.link` — lossy, delaying links with statistics;
* :mod:`repro.net.node` — node runtime: packet store, timers, forwarding;
* :mod:`repro.net.path` — the linear path topology;
* :mod:`repro.net.simulator` — the engine tying it together;
* :mod:`repro.net.stats` — counters for packets and overhead;
* :mod:`repro.net.trace` — packet tracing over the public observer API.

Observability: links accept :class:`~repro.net.link.LinkObserver`
listeners and paths accept :class:`~repro.net.path.PathObserver`
observers (link events plus adversarial node drops) — the supported hook
surface that :mod:`repro.net.trace` and :mod:`repro.obs` build on.
"""

from repro.net.clock import NodeClock, SimClock
from repro.net.events import EventQueue
from repro.net.latency import FixedLatency, UniformLatency
from repro.net.link import Link, LinkObserver
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, NoLoss
from repro.net.node import Node, PacketStore
from repro.net.packets import (
    AckPacket,
    DataPacket,
    Direction,
    Packet,
    PacketKind,
    ProbePacket,
)
from repro.net.path import Path, PathObserver
from repro.net.rng import RngFactory
from repro.net.simulator import Simulator
from repro.net.stats import LinkStats, PathStats
from repro.net.trace import PacketTracer, TraceEvent

__all__ = [
    "SimClock",
    "NodeClock",
    "EventQueue",
    "UniformLatency",
    "FixedLatency",
    "Link",
    "LinkObserver",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "NoLoss",
    "Node",
    "PacketStore",
    "Packet",
    "PacketKind",
    "Direction",
    "DataPacket",
    "ProbePacket",
    "AckPacket",
    "Path",
    "PathObserver",
    "PacketTracer",
    "TraceEvent",
    "RngFactory",
    "Simulator",
    "LinkStats",
    "PathStats",
]
