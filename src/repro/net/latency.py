"""Link latency models.

§8.1 sets "per-link bi-directional latency distributed within 0 to 5 ms
uniformly at random": each traversal of a link, in each direction, draws an
independent uniform delay. The worst-case source round-trip time on the
d=6 path is therefore 60 ms — the value that makes Table 2's storage
bounds come out to 12 and 3.2 packets.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.exceptions import ConfigurationError


class LatencyModel(ABC):
    """Per-traversal propagation delay."""

    @abstractmethod
    def delay(self, rng: random.Random) -> float:
        """Draw one traversal delay in seconds."""

    @property
    @abstractmethod
    def maximum(self) -> float:
        """Worst-case delay (drives wait-timer and storage bounds)."""


class FixedLatency(LatencyModel):
    """Constant delay."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(f"latency must be non-negative, got {value}")
        self._value = value

    def delay(self, rng: random.Random) -> float:
        return self._value

    @property
    def maximum(self) -> float:
        return self._value


class UniformLatency(LatencyModel):
    """Uniform delay on ``[low, high]`` — the paper's model with low=0."""

    def __init__(self, high: float, low: float = 0.0) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(
                f"need 0 <= low <= high, got low={low}, high={high}"
            )
        self._low = low
        self._high = high

    def delay(self, rng: random.Random) -> float:
        return rng.uniform(self._low, self._high)

    @property
    def maximum(self) -> float:
        return self._high
