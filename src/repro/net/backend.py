"""Execution-backend seam for detection experiments.

Detection experiments historically hard-coded one of two execution
strategies: the closed-form per-round outcome models in
``repro.mc.detection`` ("model") or the discrete-event wire simulator
("event", via ``repro.net.simulator``). This module extracts the seam so
experiments *select* an engine instead:

``model``
    Closed-form Monte-Carlo outcome models — the historical default for
    figure2/table2, unchanged byte-for-byte. Not a
    :class:`SimulationBackend`; ``repro.mc.detection`` dispatches to it
    directly.
``event``
    The full discrete-event engine (:class:`EventBackend`): one
    :class:`~repro.net.simulator.Simulator` per run, real packets on real
    links. Slow (~30-50k events/sec) but handles every scenario,
    including fault schedules and bidirectional adversaries.
``fastpath``
    The vectorized round replay (:mod:`repro.net.fastpath`): same
    ``RngFactory`` streams, same per-stream draw order, byte-identical
    detection outcomes — 10-100x faster. Requests it cannot replay
    exactly (fault schedules, unported protocols, adversarial timing
    knobs) automatically fall back to :class:`EventBackend`; the engine
    actually used is recorded per run in
    :attr:`BackendRunResult.engines`.

Both wire backends drive traffic with the same serialized-round schedule
(:func:`wire_send_interval`): rounds are spaced widely enough that every
round's packets, probes, reports, and timers fully resolve before the
next round starts, which is what makes the per-round fast replay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.ledger import get_ledger
from repro.obs.profile import phase as profile_phase
from repro.parallel.engine import shard_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.spec import FaultSpec
    from repro.workloads.scenarios import Scenario

#: Engine names accepted by the experiment layer (``model`` is handled by
#: ``repro.mc.detection`` itself; ``get_backend`` resolves the other two).
BACKEND_NAMES = ("model", "fastpath", "event")

#: Label used to derive the per-run root seed from the experiment seed.
RUN_SEED_LABEL = "wire-run"


def wire_send_interval(params) -> float:
    """Send spacing that keeps wire rounds strictly serialized.

    A round's whole lifecycle — data transit, e2e ack, probe after the
    ``1.05 r0`` ack timer, report cascade, and all hold/report timers —
    resolves within ``< 5.5 r0`` of the send (plus the probe delay twice,
    for the delayed-sampling variants where the probe itself trails by
    ``probe_delay`` and arms its own ``1.05 r0`` timer). Spacing sends by
    ``6 r0 + 2 probe_delay`` therefore guarantees no two rounds ever
    share in-flight state, so per-link/per-adversary RNG streams are
    consumed in whole-round bursts — the invariant the fastpath replay
    depends on.
    """
    return 6.0 * params.r0 + 2.0 * params.probe_delay


def run_seed(experiment_seed: int, run_index: int) -> int:
    """Root seed for one wire run (shared by both wire backends)."""
    return shard_seed(experiment_seed, run_index, label=RUN_SEED_LABEL)


@dataclass
class DetectionRequest:
    """Everything a backend needs to produce detection outcomes."""

    protocol: str
    scenario: "Scenario"
    runs: int
    horizon: int
    checkpoints: Sequence[int]
    seed: int
    fl_sampling: float = 0.01
    fl_interval: int = 1000
    faults: Optional["FaultSpec"] = None
    #: Absolute index of the first run. Per-run seeds are derived from
    #: ``(seed, run_offset + i)``, so a sharded batch that splits runs
    #: into contiguous offset ranges reproduces the unsharded batch
    #: byte-for-byte.
    run_offset: int = 0

    def __post_init__(self) -> None:
        if self.runs <= 0:
            raise ConfigurationError(f"runs must be positive, got {self.runs}")
        if self.run_offset < 0:
            raise ConfigurationError(
                f"run_offset must be non-negative, got {self.run_offset}"
            )
        checkpoints = [int(c) for c in self.checkpoints]
        if not checkpoints or checkpoints != sorted(checkpoints):
            raise ConfigurationError("checkpoints must be a sorted non-empty list")
        if checkpoints[0] <= 0:
            raise ConfigurationError("checkpoints must be positive")
        self.checkpoints = checkpoints


@dataclass
class BackendRunResult:
    """Per-run detection outcomes produced by a wire backend.

    Attributes
    ----------
    convictions:
        ``(len(checkpoints), runs, path_length)`` boolean array: per
        checkpoint, per run, which links exceed the decision threshold.
    estimates_last:
        ``(runs, path_length)`` per-link loss estimates at the final
        checkpoint.
    engines:
        Engine actually used for each run (``"fastpath"`` or
        ``"event"``) — the audit trail proving fallback routing.
    reasons:
        Why runs fell back to the event engine (empty when none did).
    """

    convictions: np.ndarray
    estimates_last: np.ndarray
    engines: List[str]
    reasons: List[str] = field(default_factory=list)


class SimulationBackend:
    """A strategy that executes wire detection runs."""

    name = "abstract"

    def run(self, request: DetectionRequest) -> BackendRunResult:
        raise NotImplementedError


def _protocol_kwargs(request: DetectionRequest) -> dict:
    if request.protocol == "statfl":
        return {
            "fl_sampling": request.fl_sampling,
            "interval_length": request.fl_interval,
        }
    return {}


def decision_thresholds(protocol_name: str, params) -> List[float]:
    """Per-link conviction thresholds, mirroring ``WireProtocol``."""
    if params.decision_threshold is not None:
        return [params.decision_threshold] * params.path_length
    from repro.protocols.models import calibrated_thresholds

    return calibrated_thresholds(protocol_name, params)


class RunLedgerScribe:
    """Emits one wire run's evidence chain into the active ledger.

    Shared by both wire engines so their ledgers compare byte-identical
    at the same seed: entries carry only seed-derived quantities (never
    engine identity or wall-clock), and the emission order is fixed —
    ``run_start``, then per checkpoint a ``checkpoint`` entry followed by
    ``accusation``/``exoneration`` diffs against the previous checkpoint,
    then the final ``verdict`` scored against the scenario ground truth.
    """

    __slots__ = ("_ledger", "enabled", "run", "_thresholds", "_previous",
                 "_malicious")

    def __init__(
        self, request: DetectionRequest, run_index: int, thresholds
    ) -> None:
        self._ledger = get_ledger()
        self.enabled = self._ledger.enabled
        if not self.enabled:
            return
        self.run = request.run_offset + run_index
        self._thresholds = [float(value) for value in thresholds]
        self._malicious = sorted(request.scenario.malicious_links)
        self._previous: List[int] = []
        self._ledger.record(
            "run_start",
            run=self.run,
            protocol=request.protocol,
            seed=run_seed(request.seed, self.run),
            path_length=request.scenario.params.path_length,
            horizon=request.horizon,
            thresholds=self._thresholds,
            malicious_links=self._malicious,
        )

    def checkpoint(self, checkpoint: int, estimates, convicted_mask) -> None:
        """Record one checkpoint evaluation plus its conviction diffs."""
        if not self.enabled:
            return
        values = [float(value) for value in estimates]
        convicted = [
            index for index, hit in enumerate(convicted_mask) if hit
        ]
        self._ledger.record(
            "checkpoint",
            run=self.run,
            checkpoint=checkpoint,
            estimates=values,
            convicted=convicted,
        )
        for link in convicted:
            if link not in self._previous:
                self._ledger.record(
                    "accusation",
                    run=self.run,
                    checkpoint=checkpoint,
                    link=link,
                    estimate=values[link],
                    threshold=self._thresholds[link],
                    margin=values[link] - self._thresholds[link],
                )
        for link in self._previous:
            if link not in convicted:
                self._ledger.record(
                    "exoneration",
                    run=self.run,
                    checkpoint=checkpoint,
                    link=link,
                    estimate=values[link],
                    threshold=self._thresholds[link],
                )
        self._previous = convicted

    def verdict(self, checkpoint: int) -> None:
        """Score the final conviction set against ground truth."""
        if not self.enabled:
            return
        convicted = set(self._previous)
        truth = set(self._malicious)
        self._ledger.record(
            "verdict",
            run=self.run,
            checkpoint=checkpoint,
            convicted=convicted,
            false_positives=convicted - truth,
            false_negatives=truth - convicted,
            exact=convicted == truth,
        )


def run_event_detection(
    request: DetectionRequest, run_index: int
) -> Tuple[np.ndarray, np.ndarray]:
    """One event-engine run: ``(convictions (C, d) bool, estimates (d,))``.

    Drives ``checkpoints[-1]`` serialized rounds and reads the source's
    estimates mid-gap (``0.5 r0`` before each checkpoint round starts),
    when every prior round has fully resolved.
    """
    from repro.net.simulator import Simulator

    params = request.scenario.params
    with profile_phase("setup"):
        simulator = Simulator(
            seed=run_seed(request.seed, request.run_offset + run_index)
        )
        protocol = request.scenario.build_protocol(
            request.protocol, simulator, **_protocol_kwargs(request)
        )
        if request.faults is not None:
            from repro.faults import install_faults

            install_faults(protocol.path, request.faults)
        interval = wire_send_interval(params)
        start = simulator.now
        source = protocol.source
        for index in range(request.checkpoints[-1]):
            simulator.schedule_at(start + index * interval, source.send_data)
        thresholds = np.asarray(protocol.decision_thresholds())
    scribe = RunLedgerScribe(request, run_index, thresholds)
    convictions = np.zeros(
        (len(request.checkpoints), params.path_length), dtype=bool
    )
    estimates = np.zeros(params.path_length)
    for slot, checkpoint in enumerate(request.checkpoints):
        with profile_phase("wire-replay"):
            simulator.run(
                until=start + checkpoint * interval - 0.5 * params.r0
            )
        with profile_phase("scoring"):
            estimates = np.asarray(source.estimates())
        with profile_phase("conviction"):
            convictions[slot] = estimates > thresholds
            scribe.checkpoint(checkpoint, estimates, convictions[slot])
    scribe.verdict(request.checkpoints[-1])
    return convictions, estimates


class EventBackend(SimulationBackend):
    """Reference engine: one full discrete-event simulation per run."""

    name = "event"

    def run(self, request: DetectionRequest) -> BackendRunResult:
        params = request.scenario.params
        convictions = np.zeros(
            (len(request.checkpoints), request.runs, params.path_length),
            dtype=bool,
        )
        estimates_last = np.zeros((request.runs, params.path_length))
        for run_index in range(request.runs):
            run_conv, run_est = run_event_detection(request, run_index)
            convictions[:, run_index, :] = run_conv
            estimates_last[run_index] = run_est
        return BackendRunResult(
            convictions=convictions,
            estimates_last=estimates_last,
            engines=["event"] * request.runs,
        )


def get_backend(name: str) -> SimulationBackend:
    """Resolve a wire backend by name (``fastpath`` or ``event``)."""
    if name == "event":
        return EventBackend()
    if name == "fastpath":
        from repro.net.fastpath import FastpathBackend

        return FastpathBackend()
    raise ConfigurationError(
        f"unknown wire backend {name!r}; expected one of: fastpath, event "
        "(the 'model' backend is handled by repro.mc.detection directly)"
    )
