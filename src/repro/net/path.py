"""The linear path topology of Figure 1.

``Path`` builds links ``l_0 .. l_{d-1}`` over a :class:`Simulator`, wires
attached protocol nodes ``F_0 .. F_d`` to them, and exposes the round-trip
quantities (``r_i``) that the protocols use to size their wait-timers.

The topology is deliberately a single path: the paper (following the AAI
literature) analyzes one source-destination pair at a time, with the
routing infrastructure assumed to pin the path for the duration of the
monitoring period.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.constants import DEFAULT_MAX_LINK_LATENCY
from repro.exceptions import ConfigurationError
from repro.net.clock import NodeClock
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.link import Link, LinkObserver
from repro.net.loss import BernoulliLoss, LossModel
from repro.net.node import Node
from repro.net.packets import Direction, Packet
from repro.net.simulator import Simulator
from repro.net.stats import PathStats
from repro.obs import tracing
from repro.obs.registry import get_registry

LossFactory = Callable[[int, Direction], LossModel]


class PathObserver(LinkObserver):
    """Link observer extended with node-level events.

    Register with :meth:`Path.add_observer` to receive every link event
    (transmit/loss/deliver on each of the path's links) plus adversarial
    node drops. All hooks default to no-ops.
    """

    def on_node_drop(self, node: Node, packet: Packet, direction: Direction,
                     cause: str) -> None:
        """``node``'s adversary dropped ``packet``; ``cause`` is
        ``"ingress"`` or ``"egress"``."""


class Path:
    """A forwarding path of length ``d`` (``d`` links, ``d+1`` nodes).

    Parameters
    ----------
    simulator:
        The engine this path schedules on.
    length:
        Path length ``d`` in hops.
    natural_loss:
        Either a single per-link natural loss rate, a sequence of ``d``
        rates, or a :data:`LossFactory` for custom models.
    max_latency:
        Per-direction, per-link maximum latency; each traversal draws
        uniform in ``[0, max_latency]`` (the paper's model). Pass a
        :class:`LatencyModel` for custom behavior.
    clock_skews:
        Optional per-node clock offsets (``d+1`` values) modeling loose
        synchronization; defaults to perfectly synchronized clocks.
    """

    def __init__(
        self,
        simulator: Simulator,
        length: int,
        natural_loss: Union[float, Sequence[float], LossFactory] = 0.0,
        max_latency: Union[float, LatencyModel] = DEFAULT_MAX_LINK_LATENCY,
        clock_skews: Optional[Sequence[float]] = None,
    ) -> None:
        if length <= 0:
            raise ConfigurationError(f"path length must be positive, got {length}")
        self.simulator = simulator
        self.length = length
        # Path ids are allocated by the simulator, so spans from
        # multi-path experiments stay attributable while the ids remain
        # deterministic per experiment (never dependent on how many paths
        # earlier experiments in the same process happened to build).
        self.path_id = simulator.next_path_id()
        self.stats = PathStats(length)
        self.nodes: List[Node] = []
        self._observers: List[PathObserver] = []
        registry = get_registry()
        self._metrics = registry if registry.enabled else None

        loss_factory = _as_loss_factory(natural_loss, length)
        latency = (
            max_latency
            if isinstance(max_latency, LatencyModel)
            else UniformLatency(high=float(max_latency))
        )
        self._latency = latency

        self.links: List[Link] = [
            Link(
                index=i,
                simulator=simulator,
                loss_models={
                    Direction.FORWARD: loss_factory(i, Direction.FORWARD),
                    Direction.REVERSE: loss_factory(i, Direction.REVERSE),
                },
                latency_model=latency,
                rng=simulator.rng.stream(f"link-{i}"),
                path_id=self.path_id,
            )
            for i in range(length)
        ]

        if clock_skews is None:
            clock_skews = [0.0] * (length + 1)
        if len(clock_skews) != length + 1:
            raise ConfigurationError(
                f"need {length + 1} clock skews, got {len(clock_skews)}"
            )
        self._clock_skews = list(clock_skews)

        collector = tracing.get_collector()
        if collector is not None:
            collector.attach(self)

    # -- observability hooks ----------------------------------------------

    def add_observer(self, observer: PathObserver) -> None:
        """Register ``observer`` on every link and for node-drop events.

        Registering the same observer twice is a no-op (links enforce the
        same idempotency), so layered tooling cannot double-count.
        """
        if observer not in self._observers:
            self._observers.append(observer)
        for link in self.links:
            link.add_listener(observer)

    def remove_observer(self, observer: PathObserver) -> None:
        """Detach ``observer`` from every link and from node-drop events."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass
        for link in self.links:
            link.remove_listener(observer)

    def notify_node_drop(self, node: Node, packet: Packet,
                         direction: Direction, cause: str) -> None:
        """Called by nodes when their adversary strategy drops a packet."""
        if self._metrics is not None:
            self._metrics.counter(
                "net.node.drops",
                node=str(node.position),
                path=str(self.path_id),
                kind=packet.kind.value,
                direction=direction.value,
                cause=cause,
            ).inc()
        for observer in self._observers:
            observer.on_node_drop(node, packet, direction, cause)

    # -- node attachment --------------------------------------------------

    def attach_nodes(self, nodes: Sequence[Node]) -> None:
        """Wire protocol nodes ``F_0 .. F_d`` into the path."""
        if len(nodes) != self.length + 1:
            raise ConfigurationError(
                f"need {self.length + 1} nodes, got {len(nodes)}"
            )
        for position, node in enumerate(nodes):
            if node.position != position:
                raise ConfigurationError(
                    f"node at slot {position} reports position {node.position}"
                )
            uplink = self.links[position - 1] if position > 0 else None
            downlink = self.links[position] if position < self.length else None
            clock = NodeClock(self.simulator.clock, self._clock_skews[position])
            node.attach(self, clock, uplink, downlink)
        for index, link in enumerate(self.links):
            link.connect(
                forward_receiver=nodes[index + 1].deliver,
                reverse_receiver=nodes[index].deliver,
            )
        self.nodes = list(nodes)

    # -- timing -----------------------------------------------------------

    def schedule_in(self, delay: float, action) -> object:
        return self.simulator.schedule_in(delay, action)

    @property
    def max_link_latency(self) -> float:
        return self._latency.maximum

    def rtt_bound(self, position: int) -> float:
        """Worst-case round-trip time ``r_i`` from ``F_position`` to D.

        ``r_i = 2 * (d - i) * max_latency``; protocols size their
        wait-timers with these bounds, and the §7.4 storage bounds follow
        from them.
        """
        if not 0 <= position <= self.length:
            raise ConfigurationError(f"position {position} off path")
        return 2.0 * (self.length - position) * self._latency.maximum

    @property
    def r0(self) -> float:
        """Worst-case source round-trip time ``r_0``."""
        return self.rtt_bound(0)

    def describe(self, malicious_nodes: Optional[Sequence[int]] = None) -> str:
        """ASCII rendering of the Figure 1 topology.

        Malicious node positions are bracketed and starred::

            S ──l0── F1 ──l1── [F2*] ──l2── D
        """
        flagged = set(malicious_nodes or ())
        parts = ["S"]
        for position in range(1, self.length):
            name = f"F{position}"
            if position in flagged:
                name = f"[{name}*]"
            parts.append(f"──l{position - 1}── {name}")
        parts.append(f"──l{self.length - 1}── D")
        return " ".join(parts)

    # -- ground truth -----------------------------------------------------

    def wire_overhead_ratio(self) -> float:
        """Protocol (non-data) bytes per data byte, summed over all links.

        This is the on-the-wire view of Table 1's communication-overhead
        column: every traversal of every link is weighed by packet size.
        """
        from repro.net.packets import PacketKind

        data_bytes = 0
        other_bytes = 0
        for link in self.links:
            for kind, size in link.stats.bytes_sent.items():
                if kind is PacketKind.DATA:
                    data_bytes += size
                else:
                    other_bytes += size
        if data_bytes == 0:
            return 0.0
        return other_bytes / data_bytes

    def true_link_rates(self) -> List[float]:
        """Configured average natural loss per link (forward direction)."""
        return [
            self.links[i]._loss[Direction.FORWARD].average_rate
            for i in range(self.length)
        ]


def _as_loss_factory(
    spec: Union[float, Sequence[float], LossFactory], length: int
) -> LossFactory:
    """Normalize the ``natural_loss`` argument to a factory."""
    if callable(spec):
        return spec
    if isinstance(spec, (int, float)):
        rates = [float(spec)] * length
    else:
        rates = [float(rate) for rate in spec]
        if len(rates) != length:
            raise ConfigurationError(
                f"need {length} per-link loss rates, got {len(rates)}"
            )

    def factory(index: int, direction: Direction) -> LossModel:
        return BernoulliLoss(rates[index])

    return factory
