"""Link loss models.

§3.2 assumes links "independently exhibit some natural packet loss due to
congestion and/or channel errors", which the evaluation instantiates as an
independent Bernoulli drop per traversal (§8.1). :class:`BernoulliLoss`
reproduces that. :class:`GilbertElliottLoss` is provided as an extension
for burst-loss studies (congestion losses are bursty in practice); the
ablation benches use it to probe the protocols' sensitivity to the i.i.d.
assumption underlying Theorem 2.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.exceptions import ConfigurationError


class LossModel(ABC):
    """Decides, per traversal, whether a packet is lost."""

    @abstractmethod
    def is_lost(self, rng: random.Random) -> bool:
        """Return True when the current traversal loses the packet."""

    @property
    @abstractmethod
    def average_rate(self) -> float:
        """Long-run loss probability (for analysis cross-checks)."""


class NoLoss(LossModel):
    """A perfect link."""

    def is_lost(self, rng: random.Random) -> bool:
        return False

    @property
    def average_rate(self) -> float:
        return 0.0


class BernoulliLoss(LossModel):
    """Independent loss with fixed probability — the paper's model."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"loss rate must be in [0, 1], got {rate}")
        self._rate = rate

    def is_lost(self, rng: random.Random) -> bool:
        return rng.random() < self._rate

    @property
    def average_rate(self) -> float:
        return self._rate

    def __repr__(self) -> str:
        return f"BernoulliLoss({self._rate})"


class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert-Elliott) burst-loss model.

    The chain alternates between a *good* state with loss ``good_loss`` and
    a *bad* state with loss ``bad_loss``; ``p_gb``/``p_bg`` are the
    per-traversal transition probabilities good->bad and bad->good.

    The stationary loss rate is
    ``(p_gb * bad_loss + p_bg * good_loss) / (p_gb + p_bg)``.
    """

    def __init__(
        self,
        good_loss: float,
        bad_loss: float,
        p_gb: float,
        p_bg: float,
    ) -> None:
        for name, value in (
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
            ("p_gb", p_gb),
            ("p_bg", p_bg),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if p_gb + p_bg == 0:
            raise ConfigurationError("transition probabilities cannot both be zero")
        self._good_loss = good_loss
        self._bad_loss = bad_loss
        self._p_gb = p_gb
        self._p_bg = p_bg
        self._in_bad_state = False

    def is_lost(self, rng: random.Random) -> bool:
        # Transition first, then draw loss from the current state.
        if self._in_bad_state:
            if rng.random() < self._p_bg:
                self._in_bad_state = False
        else:
            if rng.random() < self._p_gb:
                self._in_bad_state = True
        rate = self._bad_loss if self._in_bad_state else self._good_loss
        return rng.random() < rate

    @property
    def average_rate(self) -> float:
        pi_bad = self._p_gb / (self._p_gb + self._p_bg)
        return pi_bad * self._bad_loss + (1 - pi_bad) * self._good_loss

    @property
    def in_bad_state(self) -> bool:
        """Current Markov state (exposed for tests)."""
        return self._in_bad_state
