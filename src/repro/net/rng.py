"""Deterministic, labeled random streams.

Simulation components (each link's loss draws, each link's latency draws,
the adversary's coin flips, nonce generation, ...) each get an independent
``random.Random`` stream derived from a single experiment seed and a label.
Two properties matter:

* **reproducibility** — rerunning an experiment with the same seed yields
  identical packet-level behavior;
* **stream independence** — adding draws to one component never perturbs
  another component's stream, so scenario variants stay comparable.
"""

from __future__ import annotations

import hashlib  # repro: allow(CB001) -- seed/stream derivation, not protocol crypto
import random
from typing import Iterator


class RngFactory:
    """Derives independent ``random.Random`` streams from one seed.

    >>> factory = RngFactory(seed=7)
    >>> a = factory.stream("link-0")
    >>> b = factory.stream("link-1")
    >>> a.random() != b.random()
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root experiment seed."""
        return self._seed

    def stream_seed(self, label: str) -> int:
        """Integer seed of the ``label`` stream.

        Exposed so alternative draw engines (``repro.net.fastpath``) can
        reproduce a stream's exact sequence without going through
        ``random.Random``.
        """
        material = f"{self._seed}:{label}".encode()
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, label: str) -> random.Random:
        """Return a fresh stream for ``label`` (same label -> same stream)."""
        return random.Random(self.stream_seed(label))

    def nonce_source(self, label: str):
        """Return an ``rng(n) -> bytes`` callable for cipher nonces."""
        stream = self.stream(f"nonce:{label}")

        def rng(size: int) -> bytes:
            return bytes(stream.getrandbits(8) for _ in range(size))

        return rng

    def spawn(self, label: str) -> "RngFactory":
        """Derive a sub-factory (e.g., one per simulation run)."""
        material = f"{self._seed}:spawn:{label}".encode()
        digest = hashlib.sha256(material).digest()
        return RngFactory(int.from_bytes(digest[:8], "big"))

    def seeds(self, count: int) -> Iterator[int]:
        """Yield ``count`` independent integer seeds (for batched runs)."""
        for index in range(count):
            yield self.spawn(f"run-{index}").seed
