"""Vectorized fast-path wire backend.

Replays wire detection rounds without the event queue. The discrete-event
engine spends almost all of its time scheduling and dispatching per-packet
events; under the serialized-round traffic schedule
(:func:`repro.net.backend.wire_send_interval`) each round's outcome is a
pure function of the random draws it consumes, so the round can be
replayed directly — walk the data packet link by link, then the ack, then
the probe, then the report cascade — provided the draws come from the
*same* ``RngFactory`` streams in the same per-stream order.

Why per-stream order is sufficient
----------------------------------
The event engine owns one ``random.Random`` per link
(``rng.stream("link-<i>")``, serving loss *and* latency draws for both
directions) and one per adversary (``rng.stream("adversary-<pos>")``).
Two backends agree byte-for-byte iff every stream is consumed in the same
order — the *global* interleaving across streams is irrelevant. Within a
serialized round, each link stream sees its draws in packet-lifecycle
order (data, then e2e ack, then probe, then report cascade — later phases
start strictly later in simulated time, and each cascade crosses a link
at most once), so a phase-ordered sequential replay consumes every stream
identically. This also covers PAAI-1's pipelined probe, which trails the
data packet by one hop in event time but still draws after it on every
individual link stream (FIFO links, later send times).

Draw batching
-------------
:class:`DrawStream` reproduces CPython's Mersenne Twister with numpy:
``random.Random(seed)`` for ``2**32 <= seed < 2**64`` seeds the twister
via ``init_by_array([seed & 0xffffffff, seed >> 32])``, exactly what
``np.random.RandomState`` does for a two-element ``uint32`` seed array,
and both produce doubles with the same 53-bit recipe. Stream seeds are
the first 8 bytes of ``sha256(f"{seed}:{label}")`` (mirroring
``RngFactory.stream``), so they virtually always take the numpy path and
draws are refilled in batches of :data:`BLOCK` — the "sample all the
round's coin flips in one vectorized draw" trick, amortized across
rounds. Seeds below ``2**32`` fall back to a scalar ``random.Random``.

Eligibility
-----------
:func:`classify_request` routes anything the replay cannot reproduce
exactly — fault schedules, bidirectional (reverse-path) adversaries,
probe retransmissions, windowed scoreboards, tight freshness windows, or
protocols without a ported round model — to the full event engine. The
engine used per run is recorded in ``BackendRunResult.engines``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.crypto.hashing import packet_identifier
from repro.crypto.keys import KeyManager
from repro.crypto.prf import PRF
from repro.net.backend import (
    BackendRunResult,
    DetectionRequest,
    EventBackend,
    RunLedgerScribe,
    SimulationBackend,
    decision_thresholds,
    run_seed,
    wire_send_interval,
)
from repro.net.rng import RngFactory
from repro.obs.profile import phase as profile_phase
from repro.obs.registry import CounterBatch, metrics_enabled

#: Doubles fetched per vectorized refill of a :class:`DrawStream`.
BLOCK = 4096

#: ``fastpath_family`` tags with a ported round replay.
PORTED_FAMILIES = ("onion-ack", "paai1", "statfl")

#: Key seed all wire protocols are built with (``WireProtocol`` default).
DEFAULT_KEY_SEED = b"repro-key-seed"

_FORWARD = "forward"
_REVERSE = "reverse"
_DATA = "data"
_PROBE = "probe"
_ACK = "ack"

#: Retransmissions of a statfl report request (``StatFLSource.MAX_ATTEMPTS``).
_STATFL_MAX_ATTEMPTS = 3


class DrawStream:
    """Batched clone of one ``RngFactory.stream`` ``random.Random``.

    Produces the identical sequence of ``random()`` doubles, refilled
    :data:`BLOCK` at a time through numpy when the seed admits the
    two-word ``init_by_array`` equivalence (see module docstring).
    """

    __slots__ = ("_state", "_buffer", "_position", "_scalar")

    def __init__(self, seed: int) -> None:
        if seed >> 32:
            if seed >> 64:  # RngFactory seeds are 64-bit; guard anyway
                raise ValueError(f"stream seed out of range: {seed}")
            words = np.array(
                [seed & 0xFFFFFFFF, seed >> 32], dtype=np.uint32
            )
            self._state = np.random.RandomState(words)
            self._scalar = None
        else:
            self._state = None
            self._scalar = random.Random(seed)
        self._buffer: List[float] = []
        self._position = 0

    def random(self) -> float:
        """Next double in [0, 1) — bit-identical to the event engine's."""
        if self._scalar is not None:
            return self._scalar.random()
        if self._position >= len(self._buffer):
            self._buffer = self._state.random_sample(BLOCK).tolist()
            self._position = 0
        value = self._buffer[self._position]
        self._position += 1
        return value


def stream_seed(root_seed: int, label: str) -> int:
    """Seed of ``RngFactory(root_seed).stream(label)``."""
    return RngFactory(root_seed).stream_seed(label)


def classify_reasons(request: DetectionRequest) -> List[str]:
    """Every ineligibility reason for ``request``, deduplicated and
    sorted — empty when the replay is exact.

    Anything that perturbs packet lifecycles beyond the regular
    per-crossing loss/adversary coins — fault schedules, reverse-path
    droppers, retransmission timing, windowed scoring, freshness windows
    tight enough to expire in-flight packets — must run on the event
    engine. The returned order is canonical (sorted), never the clause
    evaluation order, so ledger/report bytes cannot flake when a request
    trips multiple clauses at once.
    """
    from repro.protocols.registry import protocol_class

    reasons: List[str] = []
    family = getattr(protocol_class(request.protocol), "fastpath_family", None)
    if family not in PORTED_FAMILIES:
        reasons.append(
            f"protocol {request.protocol!r} has no vectorized round model"
        )
    if request.faults is not None:
        reasons.append("fault schedule requires event-engine timing")
    scenario = request.scenario
    if scenario.bidirectional:
        reasons.append("bidirectional adversary drops on the reverse path")
    params = scenario.params
    if params.probe_retries != 0:
        reasons.append("probe retransmission changes per-round draw order")
    if params.score_window is not None:
        reasons.append("windowed scoreboard is not round-order invariant")
    if params.freshness_window < 0.5 * params.r0:
        reasons.append("freshness window below in-flight transit bound")
    return sorted(set(reasons))


def classify_request(request: DetectionRequest) -> Optional[str]:
    """Return ``None`` when the replay is exact, else the first (in
    canonical sorted order) fallback reason — see :func:`classify_reasons`
    for the full list."""
    reasons = classify_reasons(request)
    return reasons[0] if reasons else None


class _MetricTally:
    """Plain-dict counter accumulation, flushed once per backend run.

    The event engine pays one ``Counter.inc()`` per occurrence; the fast
    path tallies in local dicts and publishes each series with a single
    batched increment (``CounterBatch``) so the metrics surface matches
    while the hot loop touches no registry machinery.
    """

    def __init__(self) -> None:
        self.links: Dict[Tuple[str, int, str, str], int] = {}
        self.nodes: Dict[Tuple[int, str, str, str], int] = {}
        self.protocol: Dict[str, int] = {}

    def link_series(
        self, name: str, kind: str, direction: str, counts: List[int]
    ) -> None:
        """Merge one per-link count vector into the tally."""
        for link, amount in enumerate(counts):
            if amount:
                key = (name, link, kind, direction)
                self.links[key] = self.links.get(key, 0) + amount

    def node_drop(self, node: int, kind: str, direction: str, cause: str) -> None:
        key = (node, kind, direction, cause)
        self.nodes[key] = self.nodes.get(key, 0) + 1

    def protocol_event(self, name: str, amount: int = 1) -> None:
        self.protocol[name] = self.protocol.get(name, 0) + amount

    def publish(self, protocol_name: str) -> None:
        if not metrics_enabled():
            return
        batch = CounterBatch()
        # The replayed wire run builds exactly one Path on a fresh
        # Simulator, so the event engine stamps every series with
        # path id 0; the fast path must emit identical labels for the
        # engine-equivalence gate to hold byte-for-byte.
        for (name, link, kind, direction), amount in self.links.items():
            batch.inc(
                name,
                amount,
                link=str(link),
                path="0",
                kind=kind,
                direction=direction,
            )
        for (node, kind, direction, cause), amount in self.nodes.items():
            batch.inc(
                "net.node.drops",
                amount,
                node=str(node),
                path="0",
                kind=kind,
                direction=direction,
                cause=cause,
            )
        for name, amount in self.protocol.items():
            batch.inc(name, amount, protocol=protocol_name, path="0")
        batch.flush()


class _RoundReplay:
    """Sequential replay of one wire run's serialized rounds."""

    def __init__(
        self,
        request: DetectionRequest,
        seed: int,
        family: str,
        tally: _MetricTally,
    ) -> None:
        scenario = request.scenario
        params = scenario.params
        self.params = params
        self.family = family
        self.d = params.path_length
        self.rho = params.natural_loss
        self.interval = wire_send_interval(params)
        self.tally = tally
        self.links = [
            DrawStream(stream_seed(seed, f"link-{index}"))
            for index in range(self.d)
        ]
        # Adversary streams draw one coin per matching crossing, but only
        # when the rate is strictly positive (PaperTacticAdversary
        # short-circuits the draw at rate 0).
        self.adversaries: Dict[int, Tuple[DrawStream, float]] = {
            position: (DrawStream(stream_seed(seed, f"adversary-{position}")), rate)
            for position, rate in scenario.malicious_nodes.items()
            if rate > 0.0
        }
        keys = KeyManager(self.d, seed=DEFAULT_KEY_SEED)
        # Per-link transmission/loss tallies, one (tx, loss) vector pair
        # per traffic class the replay generates. Plain list increments
        # keep the per-crossing cost at two index operations; the vectors
        # merge into the shared tally once per run.
        self.series: Dict[Tuple[str, str], Tuple[List[int], List[int]]] = {
            (_DATA, _FORWARD): ([0] * self.d, [0] * self.d),
            (_PROBE, _FORWARD): ([0] * self.d, [0] * self.d),
            (_ACK, _REVERSE): ([0] * self.d, [0] * self.d),
        }
        # Scoreboard mirror (DirectEstimator state) for the onion families.
        self.board_rounds = 0
        self.scores = [0] * self.d
        # Protocol counter mirrors (published as protocol.* series).
        self.obs_rounds = 0
        self.probes_sent = 0
        self.acks_verified = 0
        self.report_timeouts = 0
        self.sampling_hits = 0
        if family == "paai1":
            # HotPRF clone of SecureSampler's PRF (bit-identical coins).
            self.sampler = PRF(
                keys.source_sampling_key, label="paai1-secure-sampling"
            ).hot()
            self.probe_frequency = params.probe_frequency
        elif family == "statfl":
            self.fl_sampling = request.fl_sampling
            self.fl_interval = request.fl_interval
            self.sketch_prfs = {
                position: PRF(
                    keys.master_key(position), label="statfl-sketch"
                ).hot()
                for position in range(1, self.d + 1)
            }
            self.sketch_counts = [0] * (self.d + 1)
            self.latest_counts: Dict[int, int] = {}
            self.latest_snapshot: Dict[int, int] = {}
            self.resolved_requests = 0

    def merge_tally(self) -> None:
        """Fold this run's per-link vectors into the shared tally."""
        for (kind, direction), (tx, loss) in self.series.items():
            self.tally.link_series(
                "net.link.transmissions", kind, direction, tx
            )
            self.tally.link_series(
                "net.link.natural_losses", kind, direction, loss
            )

    # -- draw primitives ---------------------------------------------------

    def _cross(self, link: int, tx: List[int], loss: List[int]) -> bool:
        """One crossing attempt; True when the packet survives.

        Mirrors ``Link.transmit``: the transmission counts before the
        loss coin, and the latency draw happens only for survivors (its
        value cannot change outcomes under serialized rounds, but it
        must be consumed to keep the stream aligned).
        """
        tx[link] += 1
        stream = self.links[link]
        if stream.random() < self.rho:
            loss[link] += 1
            return False
        stream.random()  # latency draw (uniform [0, max_link_latency))
        return True

    def _coin(self, position: int, kind: str, direction: str, cause: str) -> bool:
        """Adversary drop coin at ``position``; True when dropped."""
        entry = self.adversaries.get(position)
        if entry is None:
            return False
        stream, rate = entry
        if stream.random() < rate:
            self.tally.node_drop(position, kind, direction, cause)
            return True
        return False

    # -- packet walks ------------------------------------------------------

    def _forward_walk(self, kind: str) -> int:
        """Walk a forward packet relayed by every reached node.

        Returns the deepest node reached (0..d). Matches data packets
        (all families) and statfl report requests: an egress coin at
        each malicious relay, then the link's loss/latency draws.
        """
        tx, loss = self.series[kind, _FORWARD]
        at = 0
        while True:
            if at >= 1 and self._coin(at, kind, _FORWARD, "egress"):
                return at
            if not self._cross(at, tx, loss):
                return at
            at += 1
            if at == self.d:
                return at

    def _ack_walk(self) -> Tuple[bool, int]:
        """Walk the destination's e2e ack back toward the source.

        Returns ``(verified, death_index)``. The paper-tactic adversary
        swallows e2e acks at *ingress*, after the link draws — so both a
        link loss on ``l_j`` and a swallow at ``F_j`` leave exactly nodes
        ``1..j`` still holding state (the ack popped every node it
        passed under full-ack's ``"pop"`` policy, and an ingress swallow
        skips the pop).
        """
        tx, loss = self.series[_ACK, _REVERSE]
        link = self.d - 1
        while link >= 0:
            if not self._cross(link, tx, loss):
                return False, link
            if link == 0:
                return True, -1
            if self._coin(link, _ACK, _REVERSE, "ingress"):
                return False, link
            link -= 1
        return True, -1  # unreachable; loop exits via link == 0

    def _probe_walk(self, frontier: int, delivered: bool) -> Optional[int]:
        """Walk the probe; return the report-cascade origin (or None).

        ``frontier`` is the deepest forwarder still holding the packet's
        entry. Forwarders past it discard the probe (after the link
        draws are consumed); forwarders up to it mark themselves probed
        *before* their egress coin, so a node that drops the relayed
        probe still answers the cascade. A probe that reaches the
        destination finds an entry only when the data was delivered.
        """
        tx, loss = self.series[_PROBE, _FORWARD]
        deepest_probed = 0
        at = 0
        while True:
            if at >= 1 and self._coin(at, _PROBE, _FORWARD, "egress"):
                break
            if not self._cross(at, tx, loss):
                break
            at += 1
            if at == self.d:
                if delivered:
                    return self.d
                break  # no entry at the destination: probe discarded
            if at > frontier:
                break  # no entry at this forwarder: probe discarded
            deepest_probed = at
        return deepest_probed if deepest_probed >= 1 else None

    def _cascade(self, origin: Optional[int]) -> Optional[int]:
        """Replay the report cascade; return the accepted report's depth.

        A chain from ``origin`` crosses links ``origin-1 .. 0`` (loss and
        latency only — every node on the path relays reports honestly).
        When it dies crossing link ``j``, node ``j``'s own report timer
        re-originates a chain from depth ``j``. Timer spacing guarantees
        a traveling chain always beats downstream timers, so at most one
        chain is in flight and each link is crossed at most once.
        """
        tx, loss = self.series[_ACK, _REVERSE]
        while origin:
            link = origin - 1
            survived = True
            while link >= 0:
                if not self._cross(link, tx, loss):
                    survived = False
                    break
                link -= 1
            if survived:
                return origin
            origin = link if link >= 1 else None
        return None

    # -- round models ------------------------------------------------------

    def run_round(self, index: int) -> None:
        timestamp = index * self.interval
        if self.family == "statfl":
            self._statfl_round(timestamp, index)
        else:
            self._onion_round(timestamp, index)

    def _onion_round(self, timestamp: float, sequence: int) -> None:
        """One full-ack / sig-ack / PAAI-1 round."""
        d = self.d
        paai1 = self.family == "paai1"
        if paai1:
            identifier = packet_identifier(
                b"data-%016d" % sequence, timestamp
            )
            sampled = self.sampler.bernoulli(
                identifier, self.probe_frequency
            )
        reach = self._forward_walk(_DATA)
        delivered = reach == d
        if paai1:
            if not sampled:
                return  # unmonitored packet: no probe, no observation
            self.sampling_hits += 1
            frontier = min(reach, d - 1)
        else:
            if delivered:
                verified, death = self._ack_walk()
                if verified:
                    self.acks_verified += 1
                    self.board_rounds += 1
                    self.obs_rounds += 1
                    return
                frontier = death
            else:
                frontier = min(reach, d - 1)
        self.probes_sent += 1
        depth = self._cascade(self._probe_walk(frontier, delivered))
        self.board_rounds += 1
        self.obs_rounds += 1
        if depth is None:
            self.report_timeouts += 1
            self.scores[0] += 1  # footnote 8: silence blames l_0
        elif depth == d:
            if paai1:
                self.acks_verified += 1  # complete onion == delivery proof
        else:
            self.scores[depth] += 1

    def _statfl_round(self, timestamp: float, sequence: int) -> None:
        """One statfl data round, plus the interval report collection."""
        self.board_rounds += 1
        identifier = packet_identifier(b"data-%016d" % sequence, timestamp)
        reach = self._forward_walk(_DATA)
        for position in range(1, reach + 1):
            if self.sketch_prfs[position].bernoulli(
                identifier, self.fl_sampling
            ):
                self.sketch_counts[position] += 1
        sent = sequence + 1
        if sent % self.fl_interval == 0:
            self._statfl_request(snapshot=sent)

    def _statfl_request(self, snapshot: int) -> None:
        """Replay one report-request lifecycle (up to 3 attempts).

        Attempts are self-contained: every cascade resolves strictly
        before the attempt timer, and every forwarder entry is popped
        (by the chain or its own timer) before the next attempt arrives,
        so the replay is a simple sequential loop. Counters wrapped into
        reports are the values stored at request arrival, which equal
        the current cumulative sketch counts (no data is in flight).
        """
        for _attempt in range(_STATFL_MAX_ATTEMPTS):
            self.probes_sent += 1
            reach = self._forward_walk(_PROBE)
            origin = reach if reach >= 1 else None
            depth = self._cascade(origin)
            if depth is not None:
                for position in range(1, depth + 1):
                    self.latest_counts[position] = self.sketch_counts[position]
                    self.latest_snapshot[position] = snapshot
                self.acks_verified += 1
                self.resolved_requests += 1
                return
        self.report_timeouts += 1
        self.resolved_requests += 1

    # -- estimator mirrors -------------------------------------------------

    def estimates(self) -> List[float]:
        if self.family == "statfl":
            return self._statfl_estimates()
        return self._direct_estimates()

    def _direct_estimates(self) -> List[float]:
        """``DirectEstimator`` verbatim: per-link blame frequency."""
        if self.board_rounds == 0:
            return [0.0] * self.d
        return [score / self.board_rounds for score in self.scores]

    def _statfl_estimates(self) -> List[float]:
        """``StatFLSource.survival_fractions``/``estimates`` verbatim."""
        fractions = [1.0]
        for position in range(1, self.d + 1):
            count = self.latest_counts.get(position)
            snapshot = self.latest_snapshot.get(position, 0)
            if count is None or snapshot == 0:
                fractions.append(float("nan"))
                continue
            fractions.append(count / (self.fl_sampling * snapshot))
        estimates = []
        for link in range(self.d):
            upstream, downstream = fractions[link], fractions[link + 1]
            if upstream != upstream or upstream <= 0.0:
                estimates.append(0.0)
                continue
            if downstream != downstream:
                if self.resolved_requests > 0:
                    downstream = 0.0
                else:
                    estimates.append(0.0)
                    continue
            estimates.append(max(0.0, 1.0 - downstream / upstream))
        return estimates


class FastpathBackend(SimulationBackend):
    """Vectorized round replay with automatic event-engine fallback."""

    name = "fastpath"

    def run(self, request: DetectionRequest) -> BackendRunResult:
        reasons = classify_reasons(request)
        if reasons:
            fallback = EventBackend().run(request)
            fallback.reasons = reasons
            return fallback
        from repro.protocols.registry import protocol_class

        family = protocol_class(request.protocol).fastpath_family
        params = request.scenario.params
        thresholds = np.asarray(decision_thresholds(request.protocol, params))
        convictions = np.zeros(
            (len(request.checkpoints), request.runs, params.path_length),
            dtype=bool,
        )
        estimates_last = np.zeros((request.runs, params.path_length))
        tally = _MetricTally()
        for run_index in range(request.runs):
            with profile_phase("setup"):
                replay = _RoundReplay(
                    request,
                    run_seed(request.seed, request.run_offset + run_index),
                    family,
                    tally,
                )
            scribe = RunLedgerScribe(request, run_index, thresholds)
            done = 0
            estimates = np.zeros(params.path_length)
            for slot, checkpoint in enumerate(request.checkpoints):
                # The sequential round loop *is* the vectorization
                # boundary: draws inside it are batched per stream.
                with profile_phase("wire-replay"):
                    for round_index in range(done, checkpoint):  # repro: allow(FP001)
                        replay.run_round(round_index)
                done = checkpoint
                with profile_phase("scoring"):
                    estimates = np.asarray(replay.estimates())
                with profile_phase("conviction"):
                    convictions[slot, run_index] = estimates > thresholds
                    scribe.checkpoint(
                        checkpoint, estimates, convictions[slot, run_index]
                    )
            scribe.verdict(request.checkpoints[-1])
            estimates_last[run_index] = estimates
            replay.merge_tally()
            tally.protocol_event("protocol.rounds", replay.obs_rounds)
            tally.protocol_event("protocol.probes_sent", replay.probes_sent)
            tally.protocol_event(
                "protocol.acks_verified", replay.acks_verified
            )
            tally.protocol_event(
                "protocol.report_timeouts", replay.report_timeouts
            )
            tally.protocol_event(
                "protocol.sampling_hits", replay.sampling_hits
            )
        tally.publish(request.protocol)
        return BackendRunResult(
            convictions=convictions,
            estimates_last=estimates_last,
            engines=["fastpath"] * request.runs,
        )
