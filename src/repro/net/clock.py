"""Simulation time and loose synchronization.

The engine keeps one global :class:`SimClock`. Each node reads time through
its own :class:`NodeClock`, which adds a fixed skew — the paper's loose
time-synchronization assumption (§5): clock error between adjacent nodes is
smaller than ``min(r_0)``, the minimum source round-trip time. Timestamp
freshness checks (phase 1 of both PAAI protocols) run against the node
clock, so a too-large skew makes honest nodes discard packets — behavior
exercised in the tests of the withholding attack.
"""

from __future__ import annotations

from repro.exceptions import SimulationError


class SimClock:
    """Monotonic simulation clock advanced only by the engine."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward; rejects travel into the past."""
        if timestamp < self._now:
            raise SimulationError(
                f"clock cannot move backwards ({timestamp} < {self._now})"
            )
        self._now = timestamp


class NodeClock:
    """A node's skewed view of simulation time.

    Parameters
    ----------
    clock:
        The global simulation clock.
    skew:
        Constant offset (seconds) between this node's clock and true time.
        Positive skew means the node's clock runs ahead.
    """

    def __init__(self, clock: SimClock, skew: float = 0.0) -> None:
        self._clock = clock
        self._skew = float(skew)
        self._drift_rate = 0.0
        self._drift_origin = 0.0

    @property
    def skew(self) -> float:
        """This node's base clock offset (excluding drift)."""
        return self._skew

    def set_skew(self, skew: float) -> None:
        """Replace the base offset (fault injection: a clock *step*)."""
        self._skew = float(skew)

    def step(self, delta: float) -> None:
        """Shift the base offset by ``delta`` (relative clock step)."""
        self._skew += float(delta)

    @property
    def drift_rate(self) -> float:
        """Seconds of extra offset accumulated per simulated second."""
        return self._drift_rate

    def set_drift(self, rate: float, origin: float = 0.0) -> None:
        """Make the offset grow linearly: ``rate`` seconds per simulated
        second, measured from engine time ``origin`` (fault injection:
        a drifting oscillator). ``rate=0`` restores a constant skew."""
        self._drift_rate = float(rate)
        self._drift_origin = float(origin)

    @property
    def now(self) -> float:
        """The node's local time."""
        engine_now = self._clock.now
        local = engine_now + self._skew
        if self._drift_rate:
            local += self._drift_rate * (engine_now - self._drift_origin)
        return local

    def is_fresh(self, timestamp: float, max_age: float) -> bool:
        """Timestamp freshness check used on incoming data packets.

        A packet is fresh when its embedded source timestamp is no older
        than ``max_age`` by this node's local clock (future timestamps
        within the same tolerance are accepted, absorbing skew).
        """
        age = self.now - timestamp
        return -max_age <= age <= max_age
