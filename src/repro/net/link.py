"""Lossy, delaying links.

A :class:`Link` joins adjacent path nodes ``F_i`` and ``F_{i+1}``. Each
traversal independently draws (a) a loss decision from the link's loss
model for that direction and (b) a propagation delay from the latency
model, matching §8.1's simulation setup. Delivery is an engine event, so
in-flight packets are naturally interleaved with timers.

Links are FIFO per direction: a packet sent after another on the same link
and direction never overtakes it (its arrival is clamped to the earlier
packet's arrival time). Real links do not reorder a flow, and the PAAI
protocols implicitly rely on this — a probe sent right after its data
packet must reach each node after the data packet did.

Links model only *natural* loss; adversarial drops happen at nodes (the
paper emulates a compromised node that drops traffic flowing through it).

Observability: links expose a **public hook API** — register a
:class:`LinkObserver` with :meth:`Link.add_listener` to see every
transmission, natural loss, and delivery without touching link internals
(this replaced the old tracer's monkey-patching of ``transmit`` and
``_receivers``). Listeners registered at any time see all subsequent
events: the delivery callback is resolved when the packet *arrives*, not
when it was sent. With a metrics registry active at construction, links
also publish per-link transmission/loss/byte counters.

Fault injection: a second, *mutating* hook stage — :class:`LinkInterceptor`
via :meth:`Link.add_interceptor` — runs at the head of ``transmit`` and may
consume or replace the packet (blackouts, corruption, jitter/duplication in
``repro.faults``). Interceptors see the packet before any accounting, so
injected faults never pollute the natural-loss statistics the estimators
are calibrated against.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.net.latency import LatencyModel
from repro.net.loss import LossModel
from repro.net.packets import Direction, Packet, PacketKind
from repro.net.stats import LinkStats
from repro.obs.registry import get_registry


class LinkObserver:
    """Base class for link event listeners (all hooks default to no-ops).

    Subclass and override any of the three hooks; every hook receives the
    link itself, so one observer can watch many links.
    """

    def on_transmit(self, link: "Link", packet: Packet,
                    direction: Direction) -> None:
        """``packet`` entered the link (before the loss draw)."""

    def on_loss(self, link: "Link", packet: Packet,
                direction: Direction) -> None:
        """``packet`` was consumed by natural loss on the link."""

    def on_deliver(self, link: "Link", packet: Packet,
                   direction: Direction) -> None:
        """``packet`` is being handed to the receiving node."""


class LinkInterceptor:
    """Mutating hook consulted at the head of :meth:`Link.transmit`.

    Observers (:class:`LinkObserver`) are read-only by contract; fault
    injection needs to *change* traffic — swallow a packet during a
    blackout window, replace it with a corrupted copy, or hold it back and
    re-inject it later (``repro.faults``). Interceptors run before the
    link's stats/listeners/loss draw, so a consumed packet never counts as
    a transmission: injected faults are accounted by the injector's own
    metrics, not by the link's natural-loss statistics.
    """

    def before_transmit(self, link: "Link", packet: Packet,
                        direction: Direction) -> Optional[Packet]:
        """Return the packet to carry (possibly replaced), or None to
        consume it before it enters the link."""
        return packet


class _LinkMetrics:
    """Pre-bound per-link counters, one series per (kind, direction).

    Series carry the owning path's id so two paths sharing a simulator
    never merge their counters (the labels are ``link`` — the hop index
    on the path — plus ``path``, ``kind``, ``direction``).
    """

    __slots__ = ("tx", "loss", "bytes")

    def __init__(self, registry, index: int, path_id: int) -> None:
        link = str(index)
        path = str(path_id)
        self.tx = {}
        self.loss = {}
        self.bytes = {}
        for kind in PacketKind:
            for direction in Direction:
                labels = {
                    "link": link,
                    "path": path,
                    "kind": kind.value,
                    "direction": direction.value,
                }
                self.tx[kind, direction] = registry.counter(
                    "net.link.transmissions", **labels
                )
                self.loss[kind, direction] = registry.counter(
                    "net.link.natural_losses", **labels
                )
                self.bytes[kind, direction] = registry.counter(
                    "net.link.bytes", **labels
                )


class Link:
    """One bidirectional link ``l_index`` between ``F_index`` and
    ``F_index+1``.

    Parameters
    ----------
    index:
        Link position on the path (0-based; ``l_i`` in the paper).
    simulator:
        The engine (provides ``now`` and event scheduling).
    loss_models:
        Per-direction loss models. Separate instances per direction keep
        stateful models (Gilbert-Elliott) independent.
    latency_model:
        Shared latency model (stateless).
    rng:
        Random stream dedicated to this link.
    path_id:
        Identifier of the owning path (-1 when standalone). Known at
        construction so the link's metric series carry it — counters
        from two paths sharing a simulator must never merge.
    """

    def __init__(
        self,
        index: int,
        simulator,
        loss_models: Dict[Direction, LossModel],
        latency_model: LatencyModel,
        rng: random.Random,
        path_id: int = -1,
    ) -> None:
        if set(loss_models) != {Direction.FORWARD, Direction.REVERSE}:
            raise ConfigurationError("loss_models must cover both directions")
        self.index = index
        self.path_id = path_id
        self._simulator = simulator
        self._loss = loss_models
        self._latency = latency_model
        self._rng = rng
        self.stats = LinkStats()
        self._last_arrival: Dict[Direction, float] = {
            Direction.FORWARD: 0.0,
            Direction.REVERSE: 0.0,
        }
        self._receivers: Dict[Direction, Optional[Callable[[Packet, Direction], None]]] = {
            Direction.FORWARD: None,
            Direction.REVERSE: None,
        }
        self._listeners: List[LinkObserver] = []
        self._interceptors: List[LinkInterceptor] = []
        registry = get_registry()
        self._metrics: Optional[_LinkMetrics] = (
            _LinkMetrics(registry, index, path_id) if registry.enabled else None
        )

    # -- hooks -------------------------------------------------------------

    def add_listener(self, listener: LinkObserver) -> None:
        """Register a :class:`LinkObserver`; adding twice is a no-op."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: LinkObserver) -> None:
        """Unregister a listener; removing an absent one is a no-op."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    @property
    def listeners(self) -> List[LinkObserver]:
        return list(self._listeners)

    def add_interceptor(self, interceptor: LinkInterceptor) -> None:
        """Register a :class:`LinkInterceptor`; adding twice is a no-op."""
        if interceptor not in self._interceptors:
            self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: LinkInterceptor) -> None:
        """Unregister an interceptor; removing an absent one is a no-op."""
        try:
            self._interceptors.remove(interceptor)
        except ValueError:
            pass

    @property
    def interceptors(self) -> List[LinkInterceptor]:
        return list(self._interceptors)

    # -- wiring ------------------------------------------------------------

    def connect(
        self,
        forward_receiver: Callable[[Packet, Direction], None],
        reverse_receiver: Callable[[Packet, Direction], None],
    ) -> None:
        """Attach endpoint delivery callbacks.

        ``forward_receiver`` is the downstream node (receives packets
        traveling FORWARD); ``reverse_receiver`` the upstream node.
        """
        self._receivers[Direction.FORWARD] = forward_receiver
        self._receivers[Direction.REVERSE] = reverse_receiver

    # -- traffic -----------------------------------------------------------

    def transmit(self, packet: Packet, direction: Direction) -> bool:
        """Send ``packet`` across the link.

        Returns True when the packet will be delivered (an event has been
        scheduled), False when natural loss consumed it. The return value
        exists for tracing; protocol code must not branch on it — real
        nodes cannot observe downstream loss.
        """
        if self._receivers[direction] is None:
            raise ConfigurationError(f"link {self.index} has no {direction} receiver")
        for interceptor in self._interceptors:
            replacement = interceptor.before_transmit(self, packet, direction)
            if replacement is None:
                return False
            packet = replacement
        self.stats.record_transmission(packet, direction)
        metrics = self._metrics
        if metrics is not None:
            metrics.tx[packet.kind, direction].inc()
            metrics.bytes[packet.kind, direction].inc(packet.size)
        for listener in self._listeners:
            listener.on_transmit(self, packet, direction)
        if self._loss[direction].is_lost(self._rng):
            self.stats.record_natural_loss(packet, direction)
            if metrics is not None:
                metrics.loss[packet.kind, direction].inc()
            for listener in self._listeners:
                listener.on_loss(self, packet, direction)
            return False
        arrival = self._simulator.now + self._latency.delay(self._rng)
        # FIFO per direction: never overtake the previous packet.
        arrival = max(arrival, self._last_arrival[direction])
        self._last_arrival[direction] = arrival
        def deliver() -> None:
            self._deliver(packet, direction)

        self._simulator.schedule_at(arrival, deliver)
        return True

    def _deliver(self, packet: Packet, direction: Direction) -> None:
        """Engine callback: hand ``packet`` to the receiving node.

        The receiver is looked up at delivery time, so listeners and
        re-wired endpoints installed while the packet was in flight are
        honored.
        """
        for listener in self._listeners:
            listener.on_deliver(self, packet, direction)
        receiver = self._receivers[direction]
        if receiver is not None:
            receiver(packet, direction)

    @property
    def max_one_way_latency(self) -> float:
        return self._latency.maximum

    @property
    def simulator(self):
        """The engine this link schedules on (for interceptor tooling)."""
        return self._simulator
