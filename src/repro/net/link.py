"""Lossy, delaying links.

A :class:`Link` joins adjacent path nodes ``F_i`` and ``F_{i+1}``. Each
traversal independently draws (a) a loss decision from the link's loss
model for that direction and (b) a propagation delay from the latency
model, matching §8.1's simulation setup. Delivery is an engine event, so
in-flight packets are naturally interleaved with timers.

Links are FIFO per direction: a packet sent after another on the same link
and direction never overtakes it (its arrival is clamped to the earlier
packet's arrival time). Real links do not reorder a flow, and the PAAI
protocols implicitly rely on this — a probe sent right after its data
packet must reach each node after the data packet did.

Links model only *natural* loss; adversarial drops happen at nodes (the
paper emulates a compromised node that drops traffic flowing through it).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.exceptions import ConfigurationError
from repro.net.latency import LatencyModel
from repro.net.loss import LossModel
from repro.net.packets import Direction, Packet
from repro.net.stats import LinkStats


class Link:
    """One bidirectional link ``l_index`` between ``F_index`` and
    ``F_index+1``.

    Parameters
    ----------
    index:
        Link position on the path (0-based; ``l_i`` in the paper).
    simulator:
        The engine (provides ``now`` and event scheduling).
    loss_models:
        Per-direction loss models. Separate instances per direction keep
        stateful models (Gilbert-Elliott) independent.
    latency_model:
        Shared latency model (stateless).
    rng:
        Random stream dedicated to this link.
    """

    def __init__(
        self,
        index: int,
        simulator,
        loss_models: Dict[Direction, LossModel],
        latency_model: LatencyModel,
        rng: random.Random,
    ) -> None:
        if set(loss_models) != {Direction.FORWARD, Direction.REVERSE}:
            raise ConfigurationError("loss_models must cover both directions")
        self.index = index
        self._simulator = simulator
        self._loss = loss_models
        self._latency = latency_model
        self._rng = rng
        self.stats = LinkStats()
        self._last_arrival: Dict[Direction, float] = {
            Direction.FORWARD: 0.0,
            Direction.REVERSE: 0.0,
        }
        self._receivers: Dict[Direction, Optional[Callable[[Packet, Direction], None]]] = {
            Direction.FORWARD: None,
            Direction.REVERSE: None,
        }

    def connect(
        self,
        forward_receiver: Callable[[Packet, Direction], None],
        reverse_receiver: Callable[[Packet, Direction], None],
    ) -> None:
        """Attach endpoint delivery callbacks.

        ``forward_receiver`` is the downstream node (receives packets
        traveling FORWARD); ``reverse_receiver`` the upstream node.
        """
        self._receivers[Direction.FORWARD] = forward_receiver
        self._receivers[Direction.REVERSE] = reverse_receiver

    def transmit(self, packet: Packet, direction: Direction) -> bool:
        """Send ``packet`` across the link.

        Returns True when the packet will be delivered (an event has been
        scheduled), False when natural loss consumed it. The return value
        exists for tracing; protocol code must not branch on it — real
        nodes cannot observe downstream loss.
        """
        receiver = self._receivers[direction]
        if receiver is None:
            raise ConfigurationError(f"link {self.index} has no {direction} receiver")
        self.stats.record_transmission(packet, direction)
        if self._loss[direction].is_lost(self._rng):
            self.stats.record_natural_loss(packet, direction)
            return False
        arrival = self._simulator.now + self._latency.delay(self._rng)
        # FIFO per direction: never overtake the previous packet.
        arrival = max(arrival, self._last_arrival[direction])
        self._last_arrival[direction] = arrival
        self._simulator.schedule_at(arrival, lambda: receiver(packet, direction))
        return True

    @property
    def max_one_way_latency(self) -> float:
        return self._latency.maximum
