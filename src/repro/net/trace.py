"""Packet-level tracing.

Debugging an AAI protocol means answering "where did this packet's round
go wrong?" — which node saw the data packet, whether the probe overtook
it, which hop lost the report. :class:`PacketTracer` hooks a path's links
and records every transmission, natural loss, and delivery as a compact
event stream that can be filtered by packet identifier.

Tracing is opt-in and non-invasive: it wraps link callbacks without
changing protocol behavior, and a bounded ring buffer keeps long runs from
accumulating unbounded state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

from repro.exceptions import ConfigurationError
from repro.net.packets import Direction, Packet


@dataclass
class TraceEvent:
    """One traced link event."""

    time: float
    link: int
    direction: Direction
    kind: str  # "send", "loss", "deliver"
    packet_kind: str
    identifier: bytes
    sequence: int

    def describe(self) -> str:
        arrow = "->" if self.direction is Direction.FORWARD else "<-"
        return (
            f"t={self.time * 1000:9.3f}ms l{self.link} {arrow} "
            f"{self.packet_kind:<5} #{self.sequence:<6} {self.kind}"
        )


class PacketTracer:
    """Records link-level events for a path.

    Parameters
    ----------
    path:
        The :class:`~repro.net.path.Path` to trace.
    capacity:
        Ring-buffer size (oldest events are discarded beyond it).
    """

    def __init__(self, path, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self.path = path
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._install()

    def _install(self) -> None:
        for link in self.path.links:
            self._wrap_link(link)

    def _wrap_link(self, link) -> None:
        original_transmit = link.transmit
        tracer = self

        def traced_transmit(packet: Packet, direction: Direction) -> bool:
            tracer._record(link.index, packet, direction, "send")
            delivered = original_transmit(packet, direction)
            if not delivered:
                tracer._record(link.index, packet, direction, "loss")
            return delivered

        link.transmit = traced_transmit
        # Wrap deliveries by intercepting the receivers at connect time;
        # links are already connected, so wrap the stored callbacks.
        for direction in (Direction.FORWARD, Direction.REVERSE):
            receiver = link._receivers[direction]
            if receiver is None:
                continue

            def traced_receiver(packet, packet_direction,
                                _receiver=receiver, _index=link.index):
                tracer._record(_index, packet, packet_direction, "deliver")
                _receiver(packet, packet_direction)

            link._receivers[direction] = traced_receiver

    def _record(self, index: int, packet: Packet, direction: Direction,
                kind: str) -> None:
        self.events.append(
            TraceEvent(
                time=self.path.simulator.now,
                link=index,
                direction=direction,
                kind=kind,
                packet_kind=packet.kind.value,
                identifier=packet.identifier,
                sequence=packet.sequence,
            )
        )

    # -- querying ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def for_identifier(self, identifier: bytes) -> List[TraceEvent]:
        """All events concerning one data packet's round, in time order."""
        return [event for event in self.events if event.identifier == identifier]

    def losses(self) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == "loss"]

    def story(self, identifier: bytes) -> str:
        """Human-readable life of one packet round."""
        events = self.for_identifier(identifier)
        if not events:
            return "(no events recorded for this identifier)"
        return "\n".join(event.describe() for event in events)
