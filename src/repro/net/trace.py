"""Packet-level tracing.

Debugging an AAI protocol means answering "where did this packet's round
go wrong?" — which node saw the data packet, whether the probe overtook
it, which hop lost the report. :class:`PacketTracer` subscribes to a
path's public observer API (:meth:`repro.net.path.Path.add_observer`) and
records every transmission, natural loss, delivery, and adversarial node
drop as a compact event stream that can be filtered by packet identifier.

Tracing is opt-in and non-invasive: it observes through supported hooks
without changing protocol behavior (no monkey-patching — an earlier
implementation rebound ``link.transmit`` and reached into private
receiver tables, double-counting when installed twice and missing links
wired up later). Installation is idempotent, :meth:`PacketTracer.uninstall`
detaches cleanly, and a bounded ring buffer keeps long runs from
accumulating unbounded state.

For structured, per-round span export (JSONL), see
:class:`repro.obs.tracing.RoundTraceCollector`, which builds on the same
hook API.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.exceptions import ConfigurationError
from repro.net.packets import Direction, Packet
from repro.net.path import PathObserver


@dataclass
class TraceEvent:
    """One traced link or node event."""

    time: float
    link: int
    direction: Direction
    kind: str  # "send", "loss", "deliver", "drop"
    packet_kind: str
    identifier: bytes
    sequence: int
    #: Node position for adversarial "drop" events; None for link events.
    node: Optional[int] = None

    def describe(self) -> str:
        arrow = "->" if self.direction is Direction.FORWARD else "<-"
        where = f"F{self.node}" if self.kind == "drop" else f"l{self.link}"
        return (
            f"t={self.time * 1000:9.3f}ms {where} {arrow} "
            f"{self.packet_kind:<5} #{self.sequence:<6} {self.kind}"
        )


class PacketTracer(PathObserver):
    """Records link-level events for a path.

    Parameters
    ----------
    path:
        The :class:`~repro.net.path.Path` to trace.
    capacity:
        Ring-buffer size (oldest events are discarded beyond it).
    """

    def __init__(self, path, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self.path = path
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._installed = False
        self.install()

    # -- lifecycle ---------------------------------------------------------

    @property
    def installed(self) -> bool:
        return self._installed

    def install(self) -> None:
        """Attach to the path; calling twice never double-records."""
        if self._installed:
            return
        self.path.add_observer(self)
        self._installed = True

    def uninstall(self) -> None:
        """Detach from the path; recorded events remain queryable."""
        if not self._installed:
            return
        self.path.remove_observer(self)
        self._installed = False

    # -- observer hooks ----------------------------------------------------

    def on_transmit(self, link, packet: Packet, direction: Direction) -> None:
        self._record(link.index, packet, direction, "send")

    def on_loss(self, link, packet: Packet, direction: Direction) -> None:
        self._record(link.index, packet, direction, "loss")

    def on_deliver(self, link, packet: Packet, direction: Direction) -> None:
        self._record(link.index, packet, direction, "deliver")

    def on_node_drop(self, node, packet: Packet, direction: Direction,
                     cause: str) -> None:
        # The drop manifests on the node's adjacent link in the travel
        # direction; record the node position alongside it.
        if direction is Direction.FORWARD:
            link = node.position
        else:
            link = node.position - 1
        self._record(link, packet, direction, "drop", node=node.position)

    def _record(self, index: int, packet: Packet, direction: Direction,
                kind: str, node: Optional[int] = None) -> None:
        self.events.append(
            TraceEvent(
                time=self.path.simulator.now,
                link=index,
                direction=direction,
                kind=kind,
                packet_kind=packet.kind.value,
                identifier=packet.identifier,
                sequence=packet.sequence,
                node=node,
            )
        )

    # -- querying ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def for_identifier(self, identifier: bytes) -> List[TraceEvent]:
        """All events concerning one data packet's round, in time order."""
        return [event for event in self.events if event.identifier == identifier]

    def losses(self) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == "loss"]

    def drops(self) -> List[TraceEvent]:
        """Adversarial node drops (requires an installed adversary)."""
        return [event for event in self.events if event.kind == "drop"]

    def story(self, identifier: bytes) -> str:
        """Human-readable life of one packet round."""
        events = self.for_identifier(identifier)
        if not events:
            return "(no events recorded for this identifier)"
        return "\n".join(event.describe() for event in events)
