"""Event queue for the discrete-event engine.

A classic binary-heap future event list. Events scheduled for the same
instant fire in insertion order (a monotone sequence number breaks ties),
which keeps runs deterministic — essential for reproducing packet-level
traces from a seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.exceptions import SchedulingError


@dataclass(order=True)
class _Entry:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`; supports cancel()."""

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired."""
        self._entry.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


class EventQueue:
    """Time-ordered queue of callbacks."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def size(self) -> int:
        """O(1) heap size *including* cancelled entries.

        The cheap variant the engine's ``sim.queue_depth`` gauge samples
        every event; ``len()`` walks the heap to skip cancelled entries.
        """
        return len(self._heap)

    def schedule(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Enqueue ``action`` to fire at absolute ``time``."""
        if time < 0:
            raise SchedulingError(f"cannot schedule at negative time {time}")
        entry = _Entry(time=time, sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def pop(self) -> Optional[Tuple[float, Callable[[], None]]]:
        """Remove and return the next live ``(time, action)``, or None."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry.cancelled:
                return entry.time, entry.action
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
