"""The discrete-event engine.

Minimal by design: a clock, an event queue, and deterministic random
streams. Protocol agents and links schedule callbacks; :meth:`Simulator.run`
drains the queue in time order. There is no parallelism and no wall-clock
coupling — simulated seconds are free, which is what lets the storage
experiments replay the paper's 1000-packets-per-second workloads exactly.

With a metrics registry active when the simulator is constructed, the run
loop publishes ``sim.events`` counters labeled by the dispatched
callback's qualified name and a ``sim.queue_depth`` gauge — the engine's
own health metrics. With the (default) null registry the loop takes a
single pre-computed branch per event.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from repro.net.clock import SimClock
from repro.net.events import EventHandle, EventQueue
from repro.net.rng import RngFactory
from repro.obs.registry import Counter, get_registry


class Simulator:
    """Discrete-event engine.

    Parameters
    ----------
    seed:
        Root seed for all random streams in this simulation.
    """

    def __init__(self, seed: int = 0) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        self.rng = RngFactory(seed)
        self._events_processed = 0
        self._path_ids = itertools.count()
        registry = get_registry()
        self._metrics = registry if registry.enabled else None
        self._event_counters: Dict[str, Counter] = {}
        self._queue_gauge = registry.gauge("sim.queue_depth")

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def next_path_id(self) -> int:
        """Allocate the next path id on this simulator (0, 1, ...).

        Path ids are scoped to the simulator — not the process — so the
        ids stamped on trace spans depend only on construction order
        within one experiment and are identical run-to-run, whether the
        experiment executes serially or in a parallel worker.
        """
        return next(self._path_ids)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute simulation ``time``."""
        return self.queue.schedule(time, action)

    def schedule_in(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` after ``delay`` seconds from now."""
        return self.queue.schedule(self.now + delay, action)

    def _count_event(self, action: Callable[[], None]) -> None:
        """Count one dispatched event, labeled by callback qualname."""
        name = getattr(action, "__qualname__", None) or type(action).__name__
        counter = self._event_counters.get(name)
        if counter is None:
            # "Link.transmit.<locals>.deliver" -> "Link.transmit.deliver";
            # closures are how links/timers schedule, so flatten the noise.
            label = name.replace(".<locals>", "")
            counter = self._metrics.counter("sim.events", type=label)
            self._event_counters[name] = counter
        counter.inc()
        self._queue_gauge.set(float(self.queue.size()))

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time (the
            clock is left at ``until``).
        max_events:
            Safety valve for tests; stop after this many events.

        Returns the number of events processed by this call.

        An exception raised by an event's action propagates to the caller
        with the event's scheduled time attached (``sim_event_time``
        attribute, plus an exception note on Python ≥3.11); the event
        counters and clock remain consistent — the failing event counts
        as processed, since it was dequeued and dispatched.
        """
        processed = 0
        metrics_on = self._metrics is not None
        while True:
            if max_events is not None and processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            popped = self.queue.pop()
            if popped is None:
                break
            time, action = popped
            self.clock.advance_to(time)
            processed += 1
            self._events_processed += 1
            if metrics_on:
                self._count_event(action)
            try:
                action()
            except Exception as exc:
                exc.sim_event_time = time
                if hasattr(exc, "add_note"):
                    exc.add_note(
                        f"while dispatching simulation event scheduled at "
                        f"t={time!r}"
                    )
                raise
        if until is not None and until > self.now:
            self.clock.advance_to(until)
        return processed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the queue completely."""
        return self.run(until=None, max_events=max_events)
