"""The discrete-event engine.

Minimal by design: a clock, an event queue, and deterministic random
streams. Protocol agents and links schedule callbacks; :meth:`Simulator.run`
drains the queue in time order. There is no parallelism and no wall-clock
coupling — simulated seconds are free, which is what lets the storage
experiments replay the paper's 1000-packets-per-second workloads exactly.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.clock import SimClock
from repro.net.events import EventHandle, EventQueue
from repro.net.rng import RngFactory


class Simulator:
    """Discrete-event engine.

    Parameters
    ----------
    seed:
        Root seed for all random streams in this simulation.
    """

    def __init__(self, seed: int = 0) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        self.rng = RngFactory(seed)
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute simulation ``time``."""
        return self.queue.schedule(time, action)

    def schedule_in(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` after ``delay`` seconds from now."""
        return self.queue.schedule(self.now + delay, action)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time (the
            clock is left at ``until``).
        max_events:
            Safety valve for tests; stop after this many events.

        Returns the number of events processed by this call.
        """
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            popped = self.queue.pop()
            if popped is None:
                break
            time, action = popped
            self.clock.advance_to(time)
            action()
            processed += 1
            self._events_processed += 1
        if until is not None and until > self.now:
            self.clock.advance_to(until)
        return processed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the queue completely."""
        return self.run(until=None, max_events=max_events)
