"""Packet taxonomy.

The protocols exchange exactly three packet kinds (§5): *data* packets from
the source, *probes* (ack requests) from the source, and *acks* carrying
reports back toward the source. §5 also fixes the adversary-facing
semantics: altering a packet is equivalent to dropping it, so packets carry
enough structure for the crypto layer to detect alteration, and the scoring
layer treats both events identically.

Sizes are modeled explicitly (bytes) because Table 1's communication
overhead column is measured in packet sizes: O(1) acks vs O(d) onion
reports matter to the reproduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.constants import DEFAULT_PACKET_SIZE, IDENTIFIER_SIZE
from repro.crypto.hashing import packet_identifier


class PacketKind(enum.Enum):
    """Wire-level packet category."""

    DATA = "data"
    PROBE = "probe"
    ACK = "ack"


class Direction(enum.Enum):
    """Travel direction on the (symmetric) path."""

    FORWARD = "forward"  # toward the destination
    REVERSE = "reverse"  # toward the source


@dataclass
class Packet:
    """Base packet: every packet carries the data-packet identifier it
    concerns, a size for overhead accounting, and a monotone sequence
    number assigned by the source for tracing."""

    identifier: bytes
    size: int
    sequence: int = 0

    kind: PacketKind = field(init=False)

    def __post_init__(self) -> None:
        self.kind = PacketKind.DATA  # overridden by subclasses


@dataclass
class DataPacket(Packet):
    """A source data packet ``m = <data || timestamp>``.

    ``timestamp`` is the source clock reading embedded for the freshness
    check of PAAI phase 1.
    """

    payload: bytes = b""
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        self.kind = PacketKind.DATA

    @classmethod
    def create(
        cls,
        payload: bytes,
        timestamp: float,
        sequence: int = 0,
        size: int = DEFAULT_PACKET_SIZE,
    ) -> "DataPacket":
        """Build a data packet, deriving its identifier ``H(m)``."""
        return cls(
            identifier=packet_identifier(payload, timestamp),
            size=size,
            sequence=sequence,
            payload=payload,
            timestamp=timestamp,
        )


@dataclass
class ProbePacket(Packet):
    """An ack request for an earlier data packet.

    ``challenge`` carries PAAI-2's random challenge ``Z`` (empty for
    protocols that do not use one). ``hop_macs`` optionally carries the
    footnote-7 per-hop authentication chain; when present the probe is
    O(d)-sized, which the size accounting reflects.
    """

    challenge: bytes = b""
    hop_macs: tuple = ()

    def __post_init__(self) -> None:
        self.kind = PacketKind.PROBE

    @classmethod
    def create(
        cls,
        identifier: bytes,
        sequence: int = 0,
        challenge: bytes = b"",
        hop_macs: tuple = (),
    ) -> "ProbePacket":
        size = IDENTIFIER_SIZE + len(challenge) + sum(len(t) for t in hop_macs)
        return cls(
            identifier=identifier,
            size=size,
            sequence=sequence,
            challenge=challenge,
            hop_macs=hop_macs,
        )


@dataclass
class AckPacket(Packet):
    """An acknowledgment ``a_i = <H(m) || A_i>``.

    ``report`` is the opaque report blob ``A_i`` — an onion report
    (full-ack, PAAI-1), an oblivious ciphertext (PAAI-2), or a bare MAC tag
    (end-to-end acks). ``origin`` records the position of the node that
    most recently built/rebuilt the report, for tracing only (the wire
    format of PAAI-2 would not reveal it).
    """

    report: bytes = b""
    origin: int = 0
    #: False for plain end-to-end acks ``a_d``; True for report-carrying
    #: acks produced in a probe round (onion or oblivious reports). On a
    #: real wire this is a type bit in the ack header.
    is_report: bool = False

    def __post_init__(self) -> None:
        self.kind = PacketKind.ACK

    @classmethod
    def create(
        cls,
        identifier: bytes,
        report: bytes,
        origin: int,
        sequence: int = 0,
        is_report: bool = False,
    ) -> "AckPacket":
        return cls(
            identifier=identifier,
            size=IDENTIFIER_SIZE + len(report),
            sequence=sequence,
            report=report,
            origin=origin,
            is_report=is_report,
        )


def clone_with_report(ack: AckPacket, report: bytes, origin: int) -> AckPacket:
    """Return a copy of ``ack`` carrying a transformed report.

    Used on the return path where every hop rewrites the report (onion
    wrapping or oblivious re-encryption) while the identifier and sequence
    are preserved.
    """
    return AckPacket.create(
        identifier=ack.identifier,
        report=report,
        origin=origin,
        sequence=ack.sequence,
        is_report=ack.is_report,
    )
