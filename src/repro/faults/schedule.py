"""Compiling fault specs into concrete, seed-deterministic schedules.

A :class:`FaultSchedule` turns the declarative clauses of a
:class:`~repro.faults.spec.FaultSpec` into concrete artifacts:

* **windows** — explicit ``[start, end)`` intervals for blackout and
  crash clauses (drawn uniformly over the spec horizon when the clause
  gives no explicit times);
* **clock events** — ``(time, node, kind, magnitude)`` tuples for clock
  steps and drift onsets;
* **per-packet streams** — one dedicated ``random.Random`` stream per
  probabilistic clause (duplicate/jitter/corrupt), consumed by the
  injectors at interception time.

Every draw comes from a labeled :class:`repro.net.rng.RngFactory` stream
derived from ``factory.spawn(f"faults:{spec.name}")``, so the schedule —
and, given identical traffic, every per-packet decision — is a pure
function of (seed, spec). :meth:`FaultSchedule.describe` returns the
precomputed artifacts as plain data; determinism tests compare it across
runs, and the chaos report embeds it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.spec import FaultClause, FaultSpec, LINK_KINDS, NODE_KINDS
from repro.net.rng import RngFactory


@dataclass(frozen=True)
class CompiledClause:
    """One clause with its schedule-time artifacts resolved."""

    #: Position of the clause in the spec (stable identity for streams).
    index: int
    clause: FaultClause
    #: ``[start, end)`` windows (blackout/crash) in schedule order.
    windows: Tuple[Tuple[float, float], ...] = ()
    #: Event times (clock-step/clock-drift).
    times: Tuple[float, ...] = ()

    @property
    def kind(self) -> str:
        return self.clause.kind

    @property
    def target(self) -> int:
        return self.clause.target


class FaultSchedule:
    """A fault spec compiled against one experiment's RNG factory.

    Parameters
    ----------
    spec:
        The declarative fault specification.
    factory:
        The experiment's root :class:`RngFactory` (typically
        ``simulator.rng``); the schedule spawns its own sub-factory so
        fault draws never perturb link/adversary/protocol streams.
    """

    def __init__(self, spec: FaultSpec, factory: RngFactory) -> None:
        self.spec = spec
        self._factory = factory.spawn(f"faults:{spec.name}")
        self.compiled: List[CompiledClause] = []
        self._streams: Dict[int, random.Random] = {}
        for index, clause in enumerate(spec.clauses):
            self.compiled.append(self._compile(index, clause))
            if clause.kind in ("duplicate", "jitter", "corrupt"):
                self._streams[index] = self._factory.stream(
                    f"clause-{index}:{clause.kind}"
                )

    # -- compilation -------------------------------------------------------

    def _compile(self, index: int, clause: FaultClause) -> CompiledClause:
        if clause.kind in ("blackout", "crash"):
            return CompiledClause(
                index=index, clause=clause,
                windows=self._place_windows(index, clause),
            )
        if clause.kind in ("clock-step", "clock-drift"):
            if clause.at:
                times = clause.at
            else:
                stream = self._factory.stream(f"clause-{index}:times")
                times = (stream.uniform(0.0, self.spec.horizon),)
            return CompiledClause(index=index, clause=clause, times=times)
        return CompiledClause(index=index, clause=clause)

    def _place_windows(
        self, index: int, clause: FaultClause
    ) -> Tuple[Tuple[float, float], ...]:
        duration = clause.magnitude
        if clause.at:
            starts = list(clause.at)
        else:
            stream = self._factory.stream(f"clause-{index}:windows")
            span = max(self.spec.horizon - duration, 0.0)
            starts = [stream.uniform(0.0, span) for _ in range(clause.windows)]
        starts.sort()
        return tuple((start, start + duration) for start in starts)

    # -- lookup ------------------------------------------------------------

    def stream(self, compiled: CompiledClause) -> random.Random:
        """The dedicated per-packet stream for a probabilistic clause."""
        return self._streams[compiled.index]

    def link_clauses(self, link_index: int) -> List[CompiledClause]:
        """Compiled link clauses targeting ``link_index``, in spec order."""
        return [
            compiled for compiled in self.compiled
            if compiled.kind in LINK_KINDS and compiled.target == link_index
        ]

    def crash_windows(self, position: int) -> Tuple[Tuple[float, float], ...]:
        """Merged crash windows for node ``position``, sorted by start."""
        windows: List[Tuple[float, float]] = []
        for compiled in self.compiled:
            if compiled.kind == "crash" and compiled.target == position:
                windows.extend(compiled.windows)
        windows.sort()
        return tuple(windows)

    def clock_events(self) -> List[Tuple[float, int, str, float]]:
        """All ``(time, node, kind, magnitude)`` clock events, time order."""
        events: List[Tuple[float, int, str, float]] = []
        for compiled in self.compiled:
            if compiled.kind in ("clock-step", "clock-drift"):
                for time in compiled.times:
                    events.append(
                        (time, compiled.target, compiled.kind,
                         compiled.clause.magnitude)
                    )
        events.sort()
        return events

    @property
    def link_targets(self) -> List[int]:
        """Sorted link indices that have at least one clause."""
        return sorted(
            {c.target for c in self.compiled if c.kind in LINK_KINDS}
        )

    @property
    def node_targets(self) -> List[int]:
        """Sorted node positions with crash or clock clauses."""
        return sorted(
            {c.target for c in self.compiled if c.kind in NODE_KINDS}
        )

    # -- introspection -----------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Plain-data schedule summary (determinism artifact).

        Two runs with the same seed and spec produce byte-identical
        JSON for this structure.
        """
        return {
            "spec": self.spec.to_dict(),
            "seed": self._factory.seed,
            "clauses": [
                {
                    "index": compiled.index,
                    "kind": compiled.kind,
                    "target": compiled.target,
                    "windows": [list(w) for w in compiled.windows],
                    "times": list(compiled.times),
                }
                for compiled in self.compiled
            ],
        }


def compile_spec(
    spec: FaultSpec, factory: Optional[RngFactory] = None, seed: int = 0
) -> FaultSchedule:
    """Convenience: compile ``spec`` against ``factory`` (or a fresh
    :class:`RngFactory` built from ``seed``)."""
    if factory is None:
        factory = RngFactory(seed)
    return FaultSchedule(spec, factory)
