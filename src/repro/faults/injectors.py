"""Simulator-level fault injectors.

:class:`FaultInjector` installs a compiled
:class:`~repro.faults.schedule.FaultSchedule` onto a wired
:class:`~repro.net.path.Path` using only public hook APIs:

* link clauses via :class:`repro.net.link.LinkInterceptor`
  (:meth:`Link.add_interceptor`) — blackout windows consume packets,
  corruption replaces them, jitter holds them back and re-injects them
  later, duplication schedules a delayed extra transmit;
* crash clauses via ``Node.fault_gate`` — traffic through the node is
  discarded inside each window, and a restart event clears the node's
  packet store at the window end (state held in RAM does not survive);
* clock clauses via engine events that step or drift the node's
  :class:`~repro.net.clock.NodeClock`.

Injected faults are accounted separately from both natural link loss and
adversarial node drops: they increment ``faults.injected`` counters (and
the injector's :attr:`FaultInjector.injected` dict), never the link's
natural-loss stats nor ``path.stats.node_drop_stats`` — those two are the
ground truth the estimators and experiments are calibrated against.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import ConfigurationError
from repro.faults.schedule import CompiledClause, FaultSchedule
from repro.faults.spec import FaultSpec
from repro.net.link import Link, LinkInterceptor
from repro.net.node import Node
from repro.net.packets import AckPacket, Direction, Packet
from repro.net.path import Path
from repro.net.rng import RngFactory
from repro.obs.ledger import get_ledger
from repro.obs.registry import get_registry


def flip_byte(data: bytes, stream: random.Random) -> bytes:
    """Return ``data`` with one byte XOR-flipped (never a no-op)."""
    if not data:
        return b"\x00"
    index = stream.randrange(len(data))
    mask = stream.randrange(1, 256)
    return data[:index] + bytes([data[index] ^ mask]) + data[index + 1:]


def corrupt_packet(packet: Packet, stream: random.Random) -> Packet:
    """Return a corrupted copy of ``packet``.

    Acks get a byte of their report blob flipped (exercising MAC, onion,
    and oblivious verification-failure paths); data packets and probes
    get their identifier flipped, modeling altered content hashing to a
    different ``H(m)`` — per §5, alteration is equivalent to a drop.
    """
    if isinstance(packet, AckPacket):
        return AckPacket.create(
            identifier=packet.identifier,
            report=flip_byte(packet.report, stream),
            origin=packet.origin,
            sequence=packet.sequence,
            is_report=packet.is_report,
        )
    return replace(packet, identifier=flip_byte(packet.identifier, stream))


class FaultInjector(LinkInterceptor):
    """Installs a fault schedule onto a path and accounts injections.

    One injector instance serves the whole path; link interception is
    routed by link index. Build it, then call :meth:`install` once the
    path's nodes are attached (clocks must exist for clock faults).
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        #: Injection counts by fault kind (plain data, registry-free).
        self.injected: Dict[str, int] = {}
        self._path: Optional[Path] = None
        self._clauses_by_link: Dict[int, List[CompiledClause]] = {}
        self._crash_windows: Dict[int, Tuple[Tuple[float, float], ...]] = {}
        #: Packets re-injected by jitter/duplication: pass through
        #: untouched on their second trip into ``transmit``.
        self._passthrough: Set[int] = set()
        registry = get_registry()
        self._metrics = registry if registry.enabled else None

    # -- installation ------------------------------------------------------

    def install(self, path: Path) -> None:
        """Wire the schedule into ``path`` (idempotent per injector)."""
        if not path.nodes:
            raise ConfigurationError(
                "install() needs an attached path (call attach_nodes first)"
            )
        self._path = path
        for link_index in self.schedule.link_targets:
            if link_index >= path.length:
                raise ConfigurationError(
                    f"fault spec targets link {link_index} but the path "
                    f"has only {path.length} links"
                )
            self._clauses_by_link[link_index] = self.schedule.link_clauses(
                link_index
            )
            path.links[link_index].add_interceptor(self)
        for position in self.schedule.node_targets:
            if position > path.length:
                raise ConfigurationError(
                    f"fault spec targets node {position} but the path has "
                    f"only {path.length + 1} nodes"
                )
        self._install_crashes(path)
        self._install_clock_events(path)

    def _install_crashes(self, path: Path) -> None:
        for position in self.schedule.node_targets:
            windows = self.schedule.crash_windows(position)
            if not windows:
                continue
            node = path.nodes[position]
            self._crash_windows[position] = windows
            node.fault_gate = self._gate
            for _, end in windows:
                self._schedule_restart(path, node, end)

    def _schedule_restart(self, path: Path, node: Node, end: float) -> None:
        def restart() -> None:
            # A restarted node loses all RAM-held per-packet state.
            node.store.clear(path.simulator.now)

        path.simulator.schedule_at(end, restart)

    def _install_clock_events(self, path: Path) -> None:
        for time, position, kind, magnitude in self.schedule.clock_events():
            node = path.nodes[position]

            def apply(node=node, kind=kind, magnitude=magnitude,
                      time=time) -> None:
                if node.clock is None:
                    return
                if kind == "clock-step":
                    node.clock.step(magnitude)
                else:
                    node.clock.set_drift(magnitude, origin=time)
                self._count(kind)

            path.simulator.schedule_at(time, apply)

    # -- accounting --------------------------------------------------------

    def _count(self, kind: str, **labels: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self._metrics is not None:
            self._metrics.counter("faults.injected", kind=kind, **labels).inc()
        ledger = get_ledger()
        if ledger.enabled:
            now = (
                self._path.simulator.now if self._path is not None else 0.0
            )
            ledger.record("fault", time=float(now), fault=kind, **labels)

    # -- node gate (crash windows) ----------------------------------------

    def _gate(self, node: Node, packet: Packet, direction: Direction,
              stage: str) -> bool:
        windows = self._crash_windows.get(node.position, ())
        now = node.path.simulator.now
        for start, end in windows:
            if start <= now < end:
                self._count("crash", node=str(node.position), stage=stage)
                return False
        return True

    # -- link interception -------------------------------------------------

    def before_transmit(self, link: Link, packet: Packet,
                        direction: Direction) -> Optional[Packet]:
        marker = id(packet)
        if marker in self._passthrough:
            self._passthrough.discard(marker)
            return packet
        for compiled in self._clauses_by_link.get(link.index, ()):
            clause = compiled.clause
            if clause.direction is not None and clause.direction != direction.value:
                continue
            if clause.packet_kinds and packet.kind.value not in clause.packet_kinds:
                continue
            if clause.kind == "blackout":
                if self._in_window(compiled, link):
                    self._count("blackout", link=str(link.index),
                                direction=direction.value)
                    return None
            elif clause.kind == "corrupt":
                stream = self.schedule.stream(compiled)
                if stream.random() < clause.probability:
                    self._count("corrupt", link=str(link.index),
                                direction=direction.value)
                    packet = corrupt_packet(packet, stream)
            elif clause.kind == "jitter":
                stream = self.schedule.stream(compiled)
                if stream.random() < clause.probability:
                    delay = stream.uniform(0.0, clause.magnitude)
                    self._count("jitter", link=str(link.index),
                                direction=direction.value)
                    self._reinject(link, packet, direction, delay)
                    return None
            elif clause.kind == "duplicate":
                stream = self.schedule.stream(compiled)
                if stream.random() < clause.probability:
                    delay = stream.uniform(0.0, max(clause.magnitude, 1e-9))
                    self._count("duplicate", link=str(link.index),
                                direction=direction.value)
                    self._reinject(link, packet, direction, delay)
        return packet

    def _in_window(self, compiled: CompiledClause, link: Link) -> bool:
        if self._path is None:
            return False
        now = self._path.simulator.now
        for start, end in compiled.windows:
            if start <= now < end:
                return True
        return False

    def _reinject(self, link: Link, packet: Packet, direction: Direction,
                  delay: float) -> None:
        """Schedule ``packet`` to enter ``link`` again after ``delay``,
        bypassing fault processing on the second trip."""

        def retransmit() -> None:
            self._passthrough.add(id(packet))
            try:
                link.transmit(packet, direction)
            finally:
                self._passthrough.discard(id(packet))

        link.simulator.schedule_in(delay, retransmit)

    # -- teardown ----------------------------------------------------------

    def uninstall(self) -> None:
        """Detach link interceptors and node gates (scheduled clock and
        restart events, if still pending, fire harmlessly)."""
        if self._path is None:
            return
        for link_index in list(self._clauses_by_link):
            self._path.links[link_index].remove_interceptor(self)
        for position in list(self._crash_windows):
            self._path.nodes[position].fault_gate = None
        self._clauses_by_link.clear()
        self._crash_windows.clear()


def install_faults(
    path: Path,
    spec: FaultSpec,
    factory: Optional[RngFactory] = None,
) -> FaultInjector:
    """Compile ``spec`` against the path's simulator RNG (or ``factory``)
    and install the resulting schedule. Returns the injector for
    accounting and teardown."""
    if factory is None:
        factory = path.simulator.rng
    injector = FaultInjector(FaultSchedule(spec, factory))
    injector.install(path)
    return injector
