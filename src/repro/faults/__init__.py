"""Seed-deterministic fault injection (docs/ROBUSTNESS.md).

Declarative :class:`FaultSpec` specs compile into :class:`FaultSchedule`
artifacts whose randomness comes only from labeled
:class:`repro.net.rng.RngFactory` streams; :class:`FaultInjector` wires a
schedule into a path through the public Link/Node hook APIs. The chaos
harness (:mod:`repro.experiments.chaos`, ``repro-aai chaos``) runs named
fault matrices against the protocols and gates on zero unhandled
exceptions and zero confident false accusations of honest nodes.
"""

from repro.faults.injectors import (
    FaultInjector,
    corrupt_packet,
    flip_byte,
    install_faults,
)
from repro.faults.schedule import CompiledClause, FaultSchedule, compile_spec
from repro.faults.spec import (
    FAULT_KINDS,
    LINK_KINDS,
    NODE_KINDS,
    PRESETS,
    FaultClause,
    FaultSpec,
    baseline_spec,
    preset,
)

__all__ = [
    "FAULT_KINDS",
    "LINK_KINDS",
    "NODE_KINDS",
    "PRESETS",
    "CompiledClause",
    "FaultClause",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "baseline_spec",
    "compile_spec",
    "corrupt_packet",
    "flip_byte",
    "install_faults",
    "preset",
]
