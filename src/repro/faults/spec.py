"""Declarative fault specifications.

A :class:`FaultSpec` names a set of *fault clauses* to inject into one
simulated run: link blackout windows, packet duplication, delay jitter,
payload/report corruption, node crash/restart windows, and clock
steps/drift. Specs are plain data (dict/JSON round-trippable) so a chaos
matrix is reviewable configuration, not code; compiling a spec into
concrete windows and per-packet coin flips happens in
:mod:`repro.faults.schedule`, where every random draw comes from a
labeled :class:`repro.net.rng.RngFactory` stream — same seed + same spec
always yields the same fault schedule.

Taxonomy (docs/ROBUSTNESS.md):

=============  ======  ==============================================
kind           target  meaning
=============  ======  ==============================================
``blackout``   link    full loss on the link during burst windows
``duplicate``  link    per-packet chance of a delayed extra copy
``jitter``     link    per-packet chance of extra head-of-line delay
``corrupt``    link    per-packet chance of a flipped byte (payload,
                       report, or MAC — alteration == drop, §5)
``crash``      node    node discards all traffic during windows, then
                       restarts with an empty packet store
``clock-step`` node    node clock jumps by ``magnitude`` seconds
``clock-drift`` node   node clock gains ``magnitude`` s/s from ``at``
=============  ======  ==============================================

Links are FIFO per direction and the protocols rely on probe-after-data
ordering, so "reordering" is modeled as head-of-line *jitter* (extra
delay before the FIFO clamp) — true packet reordering is outside the
paper's link model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from dataclasses import replace as field_replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Fault kinds that attach to a link (``target`` is a link index).
LINK_KINDS = ("blackout", "duplicate", "jitter", "corrupt")
#: Fault kinds that attach to a node (``target`` is a node position).
NODE_KINDS = ("crash", "clock-step", "clock-drift")
#: All recognized fault kinds.
FAULT_KINDS = LINK_KINDS + NODE_KINDS

#: Valid ``direction`` filters for link clauses.
DIRECTIONS = ("forward", "reverse")
#: Valid ``packet_kinds`` filters for link clauses.
PACKET_KINDS = ("data", "probe", "ack")


@dataclass(frozen=True)
class FaultClause:
    """One normalized fault clause.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        Link index (link kinds) or node position (node kinds).
    probability:
        Per-eligible-packet fault probability (duplicate/jitter/corrupt).
    magnitude:
        Seconds for jitter delay bound, blackout/crash window duration,
        and clock steps; seconds-per-second for ``clock-drift``.
    windows:
        Number of windows to place (blackout/crash) when ``at`` is empty.
    at:
        Explicit event/window start times; empty means the schedule draws
        them uniformly over the spec horizon from its RNG stream.
    direction:
        Restrict a link clause to one direction (None = both).
    packet_kinds:
        Restrict a link clause to packet kinds (empty = all).
    """

    kind: str
    target: int
    probability: float = 0.0
    magnitude: float = 0.0
    windows: int = 0
    at: Tuple[float, ...] = ()
    direction: Optional[str] = None
    packet_kinds: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.target < 0:
            raise ConfigurationError(
                f"{self.kind}: target must be >= 0, got {self.target}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"{self.kind}: probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.kind in ("duplicate", "jitter", "corrupt") and self.probability == 0.0:
            raise ConfigurationError(
                f"{self.kind}: per-packet clause needs probability > 0"
            )
        if self.kind in ("blackout", "crash"):
            if self.magnitude <= 0.0:
                raise ConfigurationError(
                    f"{self.kind}: needs a positive window duration "
                    "(magnitude, seconds)"
                )
            if self.windows <= 0 and not self.at:
                raise ConfigurationError(
                    f"{self.kind}: needs windows > 0 or explicit `at` times"
                )
        if self.kind == "jitter" and self.magnitude <= 0.0:
            raise ConfigurationError(
                "jitter: needs a positive max extra delay (magnitude)"
            )
        if self.kind == "clock-step" and self.magnitude == 0.0:
            raise ConfigurationError("clock-step: needs a nonzero step")
        if self.kind == "clock-drift" and self.magnitude == 0.0:
            raise ConfigurationError("clock-drift: needs a nonzero rate")
        if self.direction is not None and self.direction not in DIRECTIONS:
            raise ConfigurationError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )
        if self.direction is not None and self.kind in NODE_KINDS:
            raise ConfigurationError(
                f"{self.kind}: node clauses take no direction filter"
            )
        for packet_kind in self.packet_kinds:
            if packet_kind not in PACKET_KINDS:
                raise ConfigurationError(
                    f"packet kind must be one of {PACKET_KINDS}, "
                    f"got {packet_kind!r}"
                )
        if self.packet_kinds and self.kind in NODE_KINDS:
            raise ConfigurationError(
                f"{self.kind}: node clauses take no packet-kind filter"
            )
        for time in self.at:
            if time < 0.0:
                raise ConfigurationError(
                    f"{self.kind}: `at` times must be >= 0, got {time}"
                )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form (stable key order, defaults omitted)."""
        out: Dict[str, Any] = {"kind": self.kind, "target": self.target}
        if self.probability:
            out["probability"] = self.probability
        if self.magnitude:
            out["magnitude"] = self.magnitude
        if self.windows:
            out["windows"] = self.windows
        if self.at:
            out["at"] = list(self.at)
        if self.direction is not None:
            out["direction"] = self.direction
        if self.packet_kinds:
            out["packet_kinds"] = list(self.packet_kinds)
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultClause":
        known = {
            "kind", "target", "probability", "magnitude", "windows", "at",
            "direction", "packet_kinds",
        }
        extra = sorted(set(raw) - known)
        if extra:
            raise ConfigurationError(
                f"unknown fault clause keys: {', '.join(extra)}"
            )
        if "kind" not in raw or "target" not in raw:
            raise ConfigurationError("fault clause needs `kind` and `target`")
        return cls(
            kind=str(raw["kind"]),
            target=int(raw["target"]),
            probability=float(raw.get("probability", 0.0)),
            magnitude=float(raw.get("magnitude", 0.0)),
            windows=int(raw.get("windows", 0)),
            at=tuple(float(t) for t in raw.get("at", ())),
            direction=raw.get("direction"),
            packet_kinds=tuple(str(k) for k in raw.get("packet_kinds", ())),
        )


@dataclass(frozen=True)
class FaultSpec:
    """A named, declarative set of fault clauses for one run.

    ``horizon`` is the simulated-time span (seconds) over which the
    schedule places randomly-timed windows and clock events; clauses with
    explicit ``at`` times ignore it.
    """

    name: str
    clauses: Tuple[FaultClause, ...] = ()
    horizon: float = 10.0
    description: str = ""
    #: Free-form tag: "benign" schedules stay within the paper's fault
    #: assumptions (no false accusation expected); anything else may
    #: legitimately shift estimates and is only required not to crash.
    benign: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fault spec needs a name")
        if self.horizon <= 0.0:
            raise ConfigurationError(
                f"horizon must be positive, got {self.horizon}"
            )

    def with_horizon(self, horizon: float) -> "FaultSpec":
        """Copy of this spec with window/event placement spanning
        ``horizon`` seconds (the chaos runner sets it to the traffic
        span so randomly-placed windows land inside the run). Window
        *durations* and explicit ``at`` times are absolute and unchanged."""
        return field_replace(self, horizon=float(horizon))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "benign": self.benign,
            "horizon": self.horizon,
            "clauses": [clause.to_dict() for clause in self.clauses],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultSpec":
        known = {"name", "description", "benign", "horizon", "clauses"}
        extra = sorted(set(raw) - known)
        if extra:
            raise ConfigurationError(
                f"unknown fault spec keys: {', '.join(extra)}"
            )
        clauses = raw.get("clauses", ())
        if isinstance(clauses, (str, bytes)) or not isinstance(
            clauses, Sequence
        ):
            raise ConfigurationError("`clauses` must be a list of clauses")
        return cls(
            name=str(raw.get("name", "")),
            description=str(raw.get("description", "")),
            benign=bool(raw.get("benign", True)),
            horizon=float(raw.get("horizon", 120.0)),
            clauses=tuple(FaultClause.from_dict(c) for c in clauses),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fault spec is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ConfigurationError("fault spec JSON must be an object")
        return cls.from_dict(raw)


def _benign(name: str, description: str, clauses, horizon: float = 120.0,
            benign: bool = True) -> FaultSpec:
    return FaultSpec(
        name=name, description=description, benign=benign,
        horizon=horizon, clauses=tuple(clauses),
    )


def baseline_spec() -> FaultSpec:
    """No injected faults at all — the control cell of every matrix."""
    return _benign("baseline", "no injected faults (control)", ())


#: Named example specs used by the chaos matrices and the property suite.
#: Rates are deliberately small relative to the calibration margin
#: ``epsilon/2`` so benign schedules stay within the paper's assumptions.
PRESETS: Dict[str, FaultSpec] = {
    spec.name: spec
    for spec in (
        baseline_spec(),
        _benign(
            "benign-jitter",
            "5% of packets on link 1 gain up to 2ms of head-of-line "
            "delay — well inside the timers' worst-case allowance",
            [FaultClause(kind="jitter", target=1, probability=0.05,
                         magnitude=0.002)],
        ),
        _benign(
            "benign-dup",
            "2% of packets on link 0 are duplicated shortly after",
            [FaultClause(kind="duplicate", target=0, probability=0.02,
                         magnitude=0.002)],
        ),
        _benign(
            "burst-blackout",
            "two 30ms full-loss bursts on link 2 (forward) — total "
            "blackout time stays below the epsilon/2 calibration margin",
            [FaultClause(kind="blackout", target=2, direction="forward",
                         windows=2, magnitude=0.03)],
        ),
        _benign(
            "clock-skew",
            "node 2's clock steps by a third of the default freshness "
            "window mid-run (within the loose-sync bound)",
            [FaultClause(kind="clock-step", target=2, magnitude=0.02)],
        ),
        _benign(
            "crash-restart",
            "node 3 crashes for two 40ms windows and restarts with an "
            "empty store",
            [FaultClause(kind="crash", target=3, windows=2, magnitude=0.04)],
        ),
        _benign(
            "corrupt-acks",
            "0.5% of acks on link 1 (reverse) get one byte flipped — "
            "exercises MAC/onion/oblivious verification-failure paths; "
            "alteration == drop (§5), so this is adversarial, not benign",
            [FaultClause(kind="corrupt", target=1, direction="reverse",
                         probability=0.005, packet_kinds=("ack",))],
            benign=False,
        ),
        _benign(
            "clock-wild",
            "node 1's clock steps far beyond the loose-sync bound and "
            "drifts — degraded accuracy allowed, crashes are not",
            [
                FaultClause(kind="clock-step", target=1, magnitude=5.0),
                FaultClause(kind="clock-drift", target=1, magnitude=0.01),
            ],
            benign=False,
        ),
    )
}


def preset(name: str) -> FaultSpec:
    """Look up a named preset spec."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault preset {name!r}; available: "
            f"{', '.join(sorted(PRESETS))}"
        ) from None
