"""Command-line interface: regenerate every table and figure.

Usage::

    python -m repro.cli table1
    python -m repro.cli table2 [--runs N]
    python -m repro.cli figure2 --protocol {full-ack,paai1,paai2,...}
    python -m repro.cli figure3 --panel {a,b,c}
    python -m repro.cli example-rates
    python -m repro.cli practicality
    python -m repro.cli report [--scale full] [--out report.txt]
    python -m repro.cli ablation {corollary1,corollary2,corollary3,
                                  incrimination,burst,window}
    python -m repro.cli netexp --topology fat-tree --size 4 --paths 8
    python -m repro.cli obs summary --metrics m.json --trace t.jsonl
    python -m repro.cli explain --ledger ledger.jsonl [--run N]
    python -m repro.cli bench trend [--check|--strict]

Every command prints a plain-text table; ``--json`` dumps the structured
result instead.

Observability: experiment commands accept ``--metrics-out FILE`` (metrics
registry snapshot as JSON), ``--trace-out FILE`` (round spans as JSONL),
``--ledger-out FILE`` (the evidence ledger as JSONL, reconstructable via
``explain``), and ``--profile`` (phase timers into the metrics
snapshot). Monte-Carlo experiments (figure2, table2) have no wire
packets, so when tracing is requested there, a companion wire run of the
same protocol/scenario is captured on the event-driven simulator.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from contextlib import contextmanager
from typing import Optional, Sequence

from repro.analysis.detection import (
    statfl_detection_packets,
    tau1_fullack,
    tau2_paai1,
    tau3_paai2,
)
from repro.analysis.overhead import practicality_summary
from repro.core.params import ProtocolParams
from repro.experiments.ablations import (
    run_burst_loss,
    run_corollary1,
    run_corollary2,
    run_corollary3,
    run_incrimination,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3_panel
from repro.experiments.report import render_table
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.protocols.registry import available_protocols


def _json_default(value):
    if dataclasses.is_dataclass(value):
        return dataclasses.asdict(value)
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, set):
        return sorted(value)
    return str(value)


def _emit(args, result) -> None:
    if getattr(args, "json", False):
        print(json.dumps(result, default=_json_default, indent=2))
    else:
        print(result.render() if hasattr(result, "render") else result)


class _ObsSession:
    """Handle yielded by :func:`_observability` while capture is active.

    ``extra`` entries are merged into the metrics payload at write time,
    letting commands annotate the snapshot (e.g. figure2's
    ``wire_backend`` section) without owning the file format.
    """

    def __init__(self, registry) -> None:
        self.registry = registry
        self.extra: dict = {}


@contextmanager
def _observability(args, wire_protocol: Optional[str] = None, seed: int = 0):
    """Activate metrics/tracing/ledger capture when a command's flags ask.

    Inside the block the fresh registry, collector, evidence ledger, and
    phase profiler are process-active, so every simulator, path, crypto
    substrate, and agent constructed by the command reports into them.
    The requested files are written on the way out **even when the
    experiment raises** — the partial snapshot is marked ``"status":
    "failed"``, because telemetry matters most exactly when a run
    crashes.

    When ``wire_protocol`` is given and the command produced no wire
    packets (a Monte-Carlo experiment), a companion wire run of that
    protocol is captured so the trace has real round spans. The companion
    runs under its *own* registry — its counters land in the snapshot's
    ``"companion_wire_run"`` section, never mixed into the experiment's
    metrics.
    """
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    ledger_out = getattr(args, "ledger_out", None)
    profile = getattr(args, "profile", False)
    if profile and not metrics_out:
        raise SystemExit(
            "error: --profile exports through the metrics snapshot; "
            "add --metrics-out FILE"
        )
    if not metrics_out and not trace_out and not ledger_out:
        yield None
        return
    _check_output_dirs(metrics_out, trace_out, ledger_out)
    from contextlib import ExitStack

    from repro.obs.ledger import EvidenceLedger, using_ledger
    from repro.obs.profile import PhaseProfiler, using_profiler
    from repro.obs.registry import MetricsRegistry, using_registry
    from repro.obs.tracing import RoundTraceCollector, using_collector

    registry = MetricsRegistry()
    collector = RoundTraceCollector()
    ledger = EvidenceLedger() if ledger_out else None
    session = _ObsSession(registry)
    failed = False
    companion_snapshot = None
    try:
        with ExitStack() as stack:
            stack.enter_context(using_registry(registry))
            stack.enter_context(using_collector(collector))
            if ledger is not None:
                stack.enter_context(using_ledger(ledger))
            if profile:
                stack.enter_context(
                    using_profiler(PhaseProfiler(registry))
                )
            yield session
            if wire_protocol is not None and len(collector) == 0:
                from repro.obs.capture import capture_wire_run

                companion_registry = MetricsRegistry()
                with using_registry(companion_registry):
                    capture = capture_wire_run(wire_protocol, seed=seed)
                companion_snapshot = companion_registry.snapshot()
                print(capture.describe(), file=sys.stderr)
    except BaseException:
        failed = True
        raise
    finally:
        if metrics_out:
            payload = registry.snapshot()
            payload["status"] = "failed" if failed else "ok"
            if companion_snapshot is not None:
                payload["companion_wire_run"] = companion_snapshot
            payload.update(session.extra)
            with open(metrics_out, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            note = " (partial: run failed)" if failed else ""
            print(f"metrics written to {metrics_out}{note}", file=sys.stderr)
        if trace_out:
            written = collector.write_jsonl(trace_out)
            print(f"{written} round spans written to {trace_out}",
                  file=sys.stderr)
        if ledger_out and ledger is not None:
            written = ledger.write_jsonl(ledger_out)
            print(
                f"{written} ledger entries written to {ledger_out} "
                "(inspect with: repro-aai explain --ledger "
                f"{ledger_out})",
                file=sys.stderr,
            )


def _check_output_dirs(*paths: Optional[str]) -> None:
    """Fail before the experiment runs, not at write time after it."""
    for out in paths:
        if out:
            parent = os.path.dirname(out) or "."
            if not os.path.isdir(parent):
                raise SystemExit(
                    f"error: output directory does not exist: {parent}"
                )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", type=str, default=None, dest="metrics_out",
        metavar="FILE", help="write a metrics-registry snapshot (JSON)",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, dest="trace_out",
        metavar="FILE", help="write per-round tracing spans (JSONL)",
    )
    parser.add_argument(
        "--ledger-out", type=str, default=None, dest="ledger_out",
        metavar="FILE",
        help="write the evidence ledger (JSONL); reconstruct verdicts "
             "with 'repro-aai explain'",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="time pipeline phases (setup/wire-replay/scoring/conviction) "
             "into the metrics snapshot; requires --metrics-out",
    )


def _cmd_table1(args) -> None:
    _emit(args, run_table1(sending_rate=args.rate))


def _cmd_table2(args) -> None:
    _emit(args, run_table2(runs=args.runs, seed=args.seed, jobs=args.jobs,
                           backend=args.backend))


def _cmd_figure2(args) -> None:
    with _observability(
        args, wire_protocol=args.protocol, seed=args.seed
    ) as session:
        result = run_figure2(
            args.protocol, runs=args.runs, horizon=args.horizon,
            seed=args.seed, jobs=args.jobs, backend=args.backend,
        )
        detection = result.detection
        if session is not None and detection.backend != "model":
            engines = detection.engines
            session.extra["wire_backend"] = {
                "backend": detection.backend,
                "engines": {
                    name: engines.count(name)
                    for name in sorted(set(engines))
                },
                "fallback_reasons": sorted(detection.reasons),
            }
    if getattr(args, "json", False):
        _emit(args, result)
    else:
        # Figure 2(c)'s per-link view is the point of the PAAI-2 panel.
        per_link = args.per_link or args.protocol == "paai2"
        print(result.render(per_link=per_link))


def _cmd_figure3(args) -> None:
    with _observability(args, seed=args.seed):
        result = run_figure3_panel(
            args.panel, packets=args.packets, seed=args.seed
        )
    _emit(args, result)


def _cmd_example_rates(args) -> None:
    params = ProtocolParams()
    table = render_table(
        headers=["quantity", "packets"],
        rows=[
            ["tau1 (full-ack)", tau1_fullack(params)],
            ["tau2 (PAAI-1)", tau2_paai1(params)],
            ["tau3 (PAAI-2)", tau3_paai2(params)],
            ["statistical FL", statfl_detection_packets(params)],
        ],
        title="§7.2 example detection rates",
    )
    print(table)


def _cmd_practicality(args) -> None:
    params = ProtocolParams(probe_frequency=1.0 / (5 * 36))
    summary = practicality_summary(params, args.rate)
    rows = [
        [
            name,
            values["detection_minutes"],
            values["comm_overhead_units"],
            values["storage_worst_packets"],
        ]
        for name, values in summary.items()
    ]
    print(
        render_table(
            headers=[
                "protocol",
                "detection (min)",
                "comm (units/pkt)",
                "storage worst (pkts)",
            ],
            rows=rows,
            title=f"§9 practicality at p=1/(5 d^2), rate {args.rate:g} pkt/s",
        )
    )


def _cmd_comm_table(args) -> None:
    from repro.experiments.comm_table import run_comm_table

    with _observability(args, seed=args.seed):
        result = run_comm_table(packets=args.packets, seed=args.seed)
    _emit(args, result)


def _cmd_sweeps(args) -> None:
    from repro.experiments.sweeps import run_corollary3_measured

    for result in run_corollary3_measured(runs=args.runs, seed=args.seed):
        print(result.render())
        print()


def _cmd_report(args) -> None:
    from repro.experiments.runner import run_all

    from contextlib import ExitStack

    _check_output_dirs(args.metrics_out, args.trace_out, args.out, args.resume)
    jobs = args.jobs
    if args.trace_out and jobs != 1:
        # Round spans live in the workers' process-local collectors and
        # are not shipped back; tracing forces a serial report.
        print("--trace-out requires a serial report; forcing --jobs 1",
              file=sys.stderr)
        jobs = 1
    retry = None
    if args.max_attempts > 1 or args.task_timeout is not None:
        from repro.parallel.engine import RetryPolicy

        retry = RetryPolicy(
            max_attempts=args.max_attempts, timeout=args.task_timeout
        )
    collector = None
    with ExitStack() as stack:
        if args.trace_out:
            from repro.obs.tracing import RoundTraceCollector, using_collector

            collector = RoundTraceCollector()
            stack.enter_context(using_collector(collector))
        report = run_all(
            scale=args.scale, seed=args.seed,
            progress=lambda name: print(f"[done] {name}", flush=True),
            collect_metrics=args.metrics_out is not None,
            jobs=jobs,
            resume_path=args.resume,
            retry=retry,
        )
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"experiment telemetry written to {args.metrics_out}",
              file=sys.stderr)
    if args.trace_out:
        written = collector.write_jsonl(args.trace_out)
        print(f"{written} round spans written to {args.trace_out}",
              file=sys.stderr)
    if args.out:
        report.save(args.out)
        print(f"report written to {args.out}")
    else:
        print(report.render())


def _cmd_chaos(args) -> None:
    from repro.experiments.chaos import run_chaos_matrix

    _check_output_dirs(args.out, args.json_out)
    report = run_chaos_matrix(
        matrix=args.matrix,
        seed=args.seed,
        packets=args.packets,
        rate=args.rate,
        protocols=args.protocols,
        progress=lambda cell: print(
            f"[{'ok' if cell.ok else 'FAIL'}] {cell.protocol} / {cell.spec}",
            file=sys.stderr,
            flush=True,
        ),
    )
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"chaos report written to {args.json_out}", file=sys.stderr)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.render())
            handle.write("\n")
    if getattr(args, "json", False):
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif not args.out:
        print(report.render())
    if not report.ok:
        raise SystemExit(1)


def _cmd_obs(args) -> None:
    from repro.obs.summary import summarize_files

    if args.obs_command == "summary":
        if args.metrics is None and args.trace is None:
            print("obs summary: need --metrics and/or --trace", file=sys.stderr)
            raise SystemExit(2)
        print(summarize_files(
            metrics_path=args.metrics, trace_path=args.trace, top=args.top
        ))


def _cmd_netexp(args) -> None:
    from repro.mc.netexp import NetworkExperiment
    from repro.topology import (
        build_topology,
        generate_routes,
        most_shared_links,
        place_link_adversaries,
    )

    with _observability(args, seed=args.seed):
        topology = build_topology(
            args.topology, args.size, degree=args.degree, seed=args.seed
        )
        routes = generate_routes(topology, args.paths, seed=args.seed)
        if args.adversaries > 0:
            if args.on_shared:
                for link_id in most_shared_links(
                    routes, count=args.adversaries
                ):
                    topology.compromise_link(link_id, args.adversary_rate)
            else:
                place_link_adversaries(
                    topology, args.adversaries, args.adversary_rate,
                    seed=args.seed,
                )
        experiment = NetworkExperiment(
            topology,
            routes,
            protocol=args.protocol,
            rho=args.rho,
            horizon=args.horizon,
            seed=args.seed,
            shards=args.shards,
        )
        result = experiment.run(jobs=args.jobs)
    if getattr(args, "json", False):
        final = result.fusion
        payload = {
            "protocol": result.protocol,
            "topology": topology.describe(),
            "routes": len(routes),
            "checkpoints": result.checkpoints,
            "malicious_links": topology.malicious_links,
            "convicted": final.convicted,
            "exonerated": final.exonerated,
            "undecided": final.undecided,
            "confusion": result.confusion(),
            "first_convicted": {
                str(k): result.checkpoints[v]
                for k, v in sorted(result.first_convicted.items())
            },
            "best_single": {
                str(k): result.checkpoints[v]
                for k, v in sorted(result.best_single.items())
            },
        }
        print(json.dumps(payload, default=_json_default, indent=2))
    else:
        print(result.render())


def _cmd_explain(args) -> None:
    from repro.exceptions import ConfigurationError
    from repro.obs.ledger import (
        ledger_runs,
        read_ledger_jsonl,
        render_explanation,
    )

    run = args.run
    if run is not None:
        try:
            run = int(run)
        except ValueError:
            print(
                f"explain: --run expects an integer run index, got {run!r}",
                file=sys.stderr,
            )
            raise SystemExit(2)
    try:
        entries = read_ledger_jsonl(args.ledger)
    except OSError as exc:
        print(f"explain: cannot read ledger: {exc}", file=sys.stderr)
        raise SystemExit(2)
    except ConfigurationError as exc:
        print(f"explain: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not entries:
        print(
            f"explain: ledger {args.ledger} contains no entries",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if run is not None:
        known = sorted(ledger_runs(entries))
        if run not in known:
            span = (
                f"known runs: {known[0]}..{known[-1]}"
                if known
                else "ledger has no per-run entries"
            )
            print(
                f"explain: run {run} not in ledger ({span})",
                file=sys.stderr,
            )
            raise SystemExit(2)
    print(render_explanation(entries, run=run))


def _cmd_bench(args) -> None:
    from repro.obs.trend import (
        DEFAULT_BENCH_FILES,
        build_baseline,
        compare_to_baseline,
        load_baseline,
    )

    if args.bench_command != "trend":  # pragma: no cover - argparse gate
        raise SystemExit(2)
    paths = args.bench or list(DEFAULT_BENCH_FILES)
    if args.update_baseline:
        payload = build_baseline(paths, cpu_count=os.cpu_count())
        with open(args.baseline, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"baseline written to {args.baseline} "
            f"({len(payload['benchmarks'])} benchmarks)"
        )
        return
    if not os.path.exists(args.baseline):
        print(
            f"bench trend: no baseline at {args.baseline} "
            "(create one with --update-baseline)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    baseline = load_baseline(args.baseline)
    report = compare_to_baseline(baseline, paths, threshold=args.threshold)
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"delta report written to {args.json_out}", file=sys.stderr)
    if not report.ok:
        if args.strict:
            raise SystemExit(1)
        if args.check:
            print(
                f"bench-trend: {len(report.regressions)} regression(s) "
                "beyond threshold (warn-only; use --strict to gate)",
                file=sys.stderr,
            )


def _cmd_audit(args) -> None:
    from repro.audit.cli import run_audit

    code = run_audit(args)
    if code:
        raise SystemExit(code)


def _cmd_ablation(args) -> None:
    with _observability(args, seed=args.seed):
        if args.name == "corollary1":
            _emit(args, run_corollary1(seed=args.seed))
        elif args.name == "corollary2":
            _emit(args, run_corollary2(seed=args.seed))
        elif args.name == "corollary3":
            _emit(args, run_corollary3())
        elif args.name == "incrimination":
            _emit(args, run_incrimination(packets=args.packets, seed=args.seed))
        elif args.name == "burst":
            _emit(args, run_burst_loss(seed=args.seed))
        elif args.name == "window":
            from repro.experiments.ablations import run_window_ablation

            _emit(args, run_window_ablation(seed=args.seed))
        elif args.name == "theorem1":
            from repro.experiments.ablations import run_theorem1_sharpness

            _emit(args, run_theorem1_sharpness(seed=args.seed))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-aai",
        description=(
            "Reproduction harness for 'Packet-dropping Adversary "
            "Identification for Data Plane Security' (CoNEXT 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1: analytic comparison")
    p.add_argument("--rate", type=float, default=100.0)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="Table 2: theory vs simulation")
    p.add_argument("--runs", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the Monte-Carlo shards "
                        "(0 = all cores; output is identical for any value)")
    p.add_argument("--backend", choices=["model", "fastpath", "event"],
                   default="model",
                   help="detection-average engine: closed-form models "
                        "(default), vectorized wire replay, or full "
                        "event simulation (docs/PERFORMANCE.md)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("figure2", help="Figure 2: FP/FN over time")
    p.add_argument(
        "--protocol", choices=available_protocols(), default="paai1"
    )
    p.add_argument("--runs", type=int, default=2000)
    p.add_argument("--horizon", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the Monte-Carlo shards "
                        "(0 = all cores; output is identical for any value)")
    p.add_argument("--backend", choices=["model", "fastpath", "event"],
                   default="model",
                   help="execution engine: closed-form models (default), "
                        "vectorized wire replay, or full event simulation "
                        "(docs/PERFORMANCE.md)")
    p.add_argument("--per-link", action="store_true", dest="per_link",
                   help="also print per-link error curves (Figure 2c view)")
    p.add_argument("--json", action="store_true")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_figure2)

    p = sub.add_parser("figure3", help="Figure 3: storage over time")
    p.add_argument("--panel", choices=["a", "b", "c"], default="a")
    p.add_argument("--packets", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_figure3)

    p = sub.add_parser("example-rates", help="§7.2 in-text example")
    p.set_defaults(func=_cmd_example_rates)

    p = sub.add_parser("practicality", help="§9 practicality numbers")
    p.add_argument("--rate", type=float, default=100.0)
    p.set_defaults(func=_cmd_practicality)

    p = sub.add_parser(
        "comm-table", help="measured communication overhead (extension)"
    )
    p.add_argument("--packets", type=int, default=1500)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_comm_table)

    p = sub.add_parser(
        "sweeps", help="measured Corollary 3 parameter sweeps (extension)"
    )
    p.add_argument("--runs", type=int, default=500)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_sweeps)

    p = sub.add_parser(
        "report", help="regenerate every table/figure into one report"
    )
    p.add_argument("--scale", choices=["smoke", "quick", "full"],
                   default="quick")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the report's experiments "
                        "(0 = all cores; the report is identical for any "
                        "value, only runtimes differ)")
    p.add_argument("--resume", type=str, default=None, metavar="FILE",
                   help="checkpoint file: skip experiments already recorded "
                        "there and persist each newly finished experiment "
                        "immediately")
    p.add_argument("--out", type=str, default=None)
    p.add_argument(
        "--metrics-out", type=str, default=None, dest="metrics_out",
        metavar="FILE",
        help="write per-experiment runtime + metrics telemetry (JSON)",
    )
    p.add_argument(
        "--trace-out", type=str, default=None, dest="trace_out",
        metavar="FILE", help="write per-round tracing spans (JSONL)",
    )
    p.add_argument("--max-attempts", type=int, default=1, dest="max_attempts",
                   help="attempts per experiment before the report fails; "
                        ">1 retries crashed/failed experiments on a fresh "
                        "worker pool (docs/ROBUSTNESS.md)")
    p.add_argument("--task-timeout", type=float, default=None,
                   dest="task_timeout", metavar="SECONDS",
                   help="per-round deadline after which unfinished "
                        "experiments are treated as failed and retried")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "chaos",
        help="run a named fault-injection matrix (docs/ROBUSTNESS.md)",
    )
    p.add_argument("--matrix", choices=["small", "full"], default="small")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--packets", type=int, default=300,
                   help="data packets per cell")
    p.add_argument("--rate", type=float, default=50.0,
                   help="sending rate (packets/second)")
    p.add_argument("--protocols", type=lambda v: v.split(","), default=None,
                   metavar="NAME[,NAME...]",
                   help="restrict the matrix's protocol axis")
    p.add_argument("--out", type=str, default=None, metavar="FILE",
                   help="write the text report to FILE")
    p.add_argument("--json-out", type=str, default=None, dest="json_out",
                   metavar="FILE",
                   help="write the machine-readable report (JSON) to FILE")
    p.add_argument("--json", action="store_true",
                   help="print the JSON report to stdout")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("ablation", help="Corollary / attack ablations")
    p.add_argument(
        "name",
        choices=["corollary1", "corollary2", "corollary3", "incrimination",
                 "burst", "window", "theorem1"],
    )
    p.add_argument("--packets", type=int, default=20000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser(
        "audit",
        help="static determinism & crypto-boundary auditor (docs/AUDIT.md)",
    )
    from repro.audit.cli import configure_audit_parser

    configure_audit_parser(p)
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser(
        "netexp",
        help="network-scale detection: fused per-link verdicts over a "
             "mesh topology (docs/TOPOLOGY.md)",
    )
    p.add_argument("--topology",
                   choices=["line", "tree", "fat-tree", "random-regular"],
                   default="fat-tree",
                   help="graph family (see docs/TOPOLOGY.md for the size "
                        "semantics of each)")
    p.add_argument("--size", type=int, default=4,
                   help="family-specific size: line length, tree depth, "
                        "fat-tree k, or random-regular node count")
    p.add_argument("--degree", type=int, default=3,
                   help="node degree (random-regular only)")
    p.add_argument("--paths", type=int, default=8,
                   help="number of monitored routes")
    p.add_argument("--adversaries", type=int, default=1,
                   help="number of compromised topology links")
    p.add_argument("--adversary-rate", type=float, default=0.1,
                   dest="adversary_rate",
                   help="per-crossing adversarial drop rate beta")
    p.add_argument("--on-shared", action="store_true", dest="on_shared",
                   default=True,
                   help="place adversaries on the most-shared links "
                        "(default; the fusion showcase)")
    p.add_argument("--random-placement", action="store_false",
                   dest="on_shared",
                   help="place adversaries on seeded random links instead")
    p.add_argument("--protocol",
                   choices=["full-ack", "sig-ack", "paai1", "paai2",
                            "combo1", "combo2"],
                   default="paai2")
    p.add_argument("--rho", type=float, default=0.01,
                   help="per-link natural loss rate")
    p.add_argument("--horizon", type=int, default=10_000,
                   help="data packets per route")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=None,
                   help="route chunks for parallel execution (default: "
                        "one per 8 routes; output identical for any value)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the route shards "
                        "(0 = all cores; output is identical for any value)")
    p.add_argument("--json", action="store_true")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_netexp)

    p = sub.add_parser(
        "explain",
        help="reconstruct verdict evidence chains from a --ledger-out file",
    )
    p.add_argument("--ledger", type=str, required=True, metavar="FILE",
                   help="evidence-ledger JSONL written by --ledger-out")
    p.add_argument("--run", type=str, default=None, metavar="N",
                   help="render run N's full causal chain (default: list "
                        "every run's verdict)")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("bench", help="benchmark telemetry tools")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    pt = bench_sub.add_parser(
        "trend",
        help="compare BENCH_*.json telemetry against bench-baseline.json",
    )
    pt.add_argument("--baseline", type=str, default="bench-baseline.json",
                    metavar="FILE",
                    help="committed baseline (default: bench-baseline.json)")
    pt.add_argument("--bench", action="append", default=None, metavar="FILE",
                    help="telemetry file to ingest (repeatable; default: "
                         "the three BENCH_*.json files)")
    pt.add_argument("--threshold", type=float, default=0.25,
                    help="relative slowdown that counts as a regression "
                         "(default 0.25 = 25%%)")
    pt.add_argument("--check", action="store_true",
                    help="CI mode: report regressions as warnings, exit 0")
    pt.add_argument("--strict", action="store_true",
                    help="exit 1 when any benchmark regressed beyond the "
                         "threshold")
    pt.add_argument("--json-out", type=str, default=None, dest="json_out",
                    metavar="FILE",
                    help="write the machine-readable delta report (JSON)")
    pt.add_argument("--update-baseline", action="store_true",
                    dest="update_baseline",
                    help="rewrite the baseline from the current BENCH files "
                         "instead of comparing")
    pt.set_defaults(func=_cmd_bench)

    p = sub.add_parser("obs", help="observability artifact tools")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    ps = obs_sub.add_parser(
        "summary", help="summarize --metrics-out / --trace-out files"
    )
    ps.add_argument("--metrics", type=str, default=None, metavar="FILE",
                    help="metrics snapshot JSON to summarize")
    ps.add_argument("--trace", type=str, default=None, metavar="FILE",
                    help="round-span JSONL to summarize")
    ps.add_argument("--top", type=int, default=0,
                    help="only show the N largest counter series")
    ps.set_defaults(func=_cmd_obs)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
