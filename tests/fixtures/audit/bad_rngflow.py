# repro: module=repro.net.fake_rngflow
"""Fixture: every rng-flow rule (RNG001-RNG003) must fire here.

Never imported — read as data by tests/unit/test_audit_rules.py.
"""

import os


def correlated_routes(factory):
    # Same `spawn` label twice: both "independent" children share a stream.
    first = factory.spawn("route-0")
    second = factory.spawn("route-0")
    return first, second


def correlated_streams(rng):
    alpha = rng.stream("adversary")
    beta = rng.stream("adversary")
    return alpha, beta


def tainted_by_pid(rng):
    # Worker-dependent label: the derived stream differs per process.
    return rng.stream(f"trial-{os.getpid()}")


def tainted_by_identity(rng, node):
    # `id(...)` varies across runs: label entropy in disguise.
    return rng.stream("node-" + str(id(node)))


def opaque(rng, node):
    # Provenance statically unknowable: audit cannot prove uniqueness.
    return rng.stream(node.make_label())
