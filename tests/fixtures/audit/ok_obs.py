# repro: module=repro.core.fake_scoring_clean
"""Fixture: emission routed through the structured channels (OBS001-clean)."""

from repro.obs.ledger import get_ledger
from repro.obs.registry import get_registry


def identify(estimates, thresholds):
    convicted = [e > t for e, t in zip(estimates, thresholds)]
    registry = get_registry()
    registry.counter("core.identifications").inc()
    ledger = get_ledger()
    if ledger.enabled:
        ledger.record(
            "identify",
            estimates=[float(value) for value in estimates],
            convicted=[bool(flag) for flag in convicted],
        )
    return convicted


def load_calibration(path):
    # Reading is fine — only ad-hoc *writes* leak state.
    with open(path) as handle:
        return [float(line) for line in handle]
