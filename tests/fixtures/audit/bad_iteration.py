# repro: module=repro.experiments.fake_results
"""Fixture: iteration-order hazards (ITER001 error, ITER002 warning)."""


def rows(results: dict):
    out = []
    for key in {"b", "a", "c"}:
        out.append(results[key])
    ordered = list(set(results))
    for name, value in results.items():
        out.append((name, value))
    return out, ordered
