# repro: module=repro.experiments.fake_results_ok
"""Fixture: ordered/suppressed twins of bad_iteration.py."""


def rows(results: dict):
    out = []
    for key in sorted({"b", "a", "c"}):
        out.append(results[key])
    for key in {"b", "a"}:  # repro: allow(ITER001)
        out.append(key)
    for name, value in sorted(results.items()):
        out.append((name, value))
    return out
