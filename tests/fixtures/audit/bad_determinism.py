# repro: module=repro.core.fake_determinism
"""Fixture: every determinism rule (DET001-DET004) must fire here.

Never imported — read as data by tests/unit/test_audit_rules.py.
"""

import os
import random
import time

import numpy as np

_SHARED_RNG = random.Random(7)


def jitter():
    return random.random()


def np_jitter():
    return np.random.uniform(0.0, 1.0)


def stamp():
    return time.time()


def hurry(start):
    # repro.core is not telemetry scope, so even monotonic timers flag.
    return time.monotonic() - start


def nonce():
    return os.urandom(16)
