# repro: module=repro.mc.fake_chain_ok
"""Fixture: interproc twin — pure helpers and sanctioned sink lines."""

from repro_vendor.util import excused_now, pure_span


def duration(start, end):
    return pure_span(start, end)


def excused(log):
    # The sink line in helpers.py carries `# repro: allow(DET003)`,
    # which sanctions this transitive reach as well.
    log.append(excused_now())
