# repro: module=repro_vendor.util
"""Fixture: vendor-style helpers outside ``repro.*`` scope.

Per-file clean by design — ``repro_vendor`` is not a repro module, so
the scoped per-file rules (DET003/ST001) never look at it. The wall
clock hides two calls deep behind ``wrapped_now``; only the
whole-program pass can see a sim-scope caller reach it.
"""

import time


def slow_now():
    return time.time()


def wrapped_now():
    return slow_now()


def excused_now():
    # The sanctioned boundary: an excused sink line is excused for
    # transitive callers too.
    return time.time()  # repro: allow(DET003)


def pure_span(start, end):
    return end - start
