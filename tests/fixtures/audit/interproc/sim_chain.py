# repro: module=repro.mc.fake_chain
"""Fixture: sim-scope code laundering the wall clock through helpers.

``record_event`` never touches ``time`` itself — the per-file engine
sees nothing — yet its call chain ends at ``time.time()`` two hops away.
ST002 must anchor its finding here, on the first hop.
"""

from repro_vendor.util import wrapped_now


def record_event(log):
    log.append(wrapped_now())
