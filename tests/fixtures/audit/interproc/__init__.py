# Marker only: fixtures in this directory are audited together as one
# project so cross-file call chains resolve; they are never imported.
