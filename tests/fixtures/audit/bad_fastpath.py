# repro: module=repro.mc.fake_batch
"""Fixture: per-packet Python loops in batch-eligible code (FP001)."""


def per_packet_scores(num_packets, rng):
    scores = []
    for _ in range(num_packets):
        scores.append(rng.random())
    return scores


def replay(config, rng):
    total = 0.0
    for _ in range(config.horizon):
        total += rng.random()
    for _ in range(len(config.packets)):
        total += rng.random()
    return total
