# repro: module=repro.mc.fake_batch_ok
"""Fixture twin: batched draws, allowed driver loops, out-of-scope names."""


def batched_scores(num_packets, rng):
    return rng.random(num_packets)  # one batched draw, no Python loop


def round_driver(checkpoint, replay):
    for index in range(checkpoint):  # repro: allow(FP001) -- per-round driver
        replay(index)


def unrelated(width):
    return [0] * sum(1 for _ in range(width))  # not a packet-scale bound
