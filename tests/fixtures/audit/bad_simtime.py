# repro: module=repro.net.fake_node
"""Fixture: sim-time hygiene violations (ST001)."""

import time
from datetime import datetime


def ack_deadline() -> float:
    # Even a monotonic host timer is banned in simulator scope.
    return time.monotonic() + 1.0


def freshness_now():
    return datetime.now()
