# repro: module=repro.net.fake_rngflow_ok
"""Fixture: rng-flow twin — derived, unique, or excused labels only."""


def independent_routes(factory, count):
    # Loop-index labels: unique by construction, fully derived.
    return [factory.spawn(f"route-{index}") for index in range(count)]


def derived(rng, adversary_name):
    return rng.stream("adv-" + adversary_name)


def formatted(rng, trial):
    return rng.stream("trial-{}".format(trial))


def cross_namespace(factory):
    # One label across namespaces is legal: `stream`, `spawn`, and
    # `nonce_source` prefix their key material differently.
    stream = factory.stream("alpha")
    child = factory.spawn("alpha")
    nonces = factory.nonce_source("alpha")
    return stream, child, nonces


def excused(rng, registry):
    return rng.stream(registry.unique_label())  # repro: allow(RNG003)


def unrelated_receiver(schedule):
    # FaultSchedule.stream is not an RNG label site; no receiver hint.
    return schedule.stream("alpha")
