# repro: module=repro.net.fake_node_ok
"""Fixture: simulator code reading simulated time only."""

import time  # repro: allow(ST001)


def ack_deadline(clock) -> float:
    # The injected NodeClock view of SimClock — the sanctioned source.
    return clock.now + 1.0


def excused_timer() -> float:
    return time.monotonic()  # repro: allow(ST001)
