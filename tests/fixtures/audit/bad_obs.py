# repro: module=repro.core.fake_scoring
"""Fixture: ad-hoc emission in an instrumented scope (OBS001)."""

import sys


def identify(estimates, thresholds):
    convicted = [e > t for e, t in zip(estimates, thresholds)]
    print("convicted:", convicted)
    sys.stderr.write("debug: thresholds crossed\n")
    return convicted


def dump_estimates(estimates, path):
    with open(path, "w") as handle:
        for value in estimates:
            handle.write(f"{value}\n")


def append_log(path, line):
    with open(path, mode="a") as handle:
        handle.write(line)
