# repro: module=repro.topology.fake_shared_ok
"""Fixture: shared-state twin — per-instance, shadowed, or excused."""

from dataclasses import dataclass, field

#: Deliberately shared: insertion order never observed (sorted on read).
_INTERNED = {}

#: Module-level container that every function shadows locally.
_SCRATCH = []


def intern_label(label):
    return _INTERNED.setdefault(label, label)  # repro: allow(RACE001)


def local_scratch(items):
    # Rebinding `_SCRATCH` makes it a local: no shared-state write.
    _SCRATCH = []
    for item in items:
        _SCRATCH.append(item)
    return _SCRATCH


class PerRouteTally:
    def __init__(self):
        # Per-instance containers: the RACE002-clean idiom.
        self.counts = {}
        self.labels = []


@dataclass
class FrozenTally:
    # `field(default_factory=...)` builds per-instance state; not flagged.
    counts: dict = field(default_factory=dict)
    labels: list = field(default_factory=list)
