# repro: module=repro.experiments.fake_telemetry
"""Fixture: the allowed/suppressed twins of bad_determinism.py."""

import random
import time

_EXCUSED_RNG = random.Random(7)  # repro: allow(DET002)


def jitter(stream: random.Random) -> float:
    # Injected stream — instance methods never touch global state.
    return stream.random()


def elapsed(start: float) -> float:
    # Monotonic timing inside telemetry scope (repro.experiments).
    return time.monotonic() - start


def excused_jitter() -> float:
    return random.random()  # repro: allow(DET001)
