# repro: module=repro.topology.fake_shared
"""Fixture: every shared-state rule (RACE001-RACE002) must fire here.

Never imported — read as data by tests/unit/test_audit_rules.py.
"""

_ROUTE_VERDICTS = {}
_EVENT_LOG = []


class RouteTally:
    # One dict and one list shared by every instance (every route).
    counts = {}
    labels: list = []


def record_verdict(route, verdict):
    # Subscript write into a module-level dict from per-route code.
    _ROUTE_VERDICTS[route] = verdict


def log_event(event):
    # In-place mutation of a module-level list from per-route code.
    _EVENT_LOG.append(event)
