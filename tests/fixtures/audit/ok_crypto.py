# repro: module=repro.protocols.fake_crypto_ok
"""Fixture: proper key roles plus an inline-allowed stdlib import."""

import hashlib  # repro: allow(CB001)

from repro.crypto.cipher import StreamCipher
from repro.crypto.keys import derive_key
from repro.crypto.mac import mac


def proper_roles(keys, node: int):
    cipher = StreamCipher(keys.encryption_key(node))
    tag = mac(keys.mac_key(node), b"payload")
    return cipher, tag


def proper_derivation(master: bytes):
    return StreamCipher(derive_key(master, "enc"))


def checksum(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()
