# repro: module=repro.protocols.fake_agent_ok
"""Fixture: accounted/narrowed twins of bad_faults.py."""


def handle(packets, node):
    for packet in packets:
        try:
            packet.decode()
        except ValueError:  # narrow: only the expected malformed input
            pass
    try:
        packets[0].verify()
    except Exception:
        node.record_fault("verify_failure")  # accounted, not swallowed
    try:
        packets[1].replay()
    except Exception:  # repro: allow(FI001) -- measured harmless in bench
        pass
