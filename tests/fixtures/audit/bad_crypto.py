# repro: module=repro.protocols.fake_crypto
"""Fixture: crypto-boundary violations (CB001, CB002)."""

import hashlib
import hmac

from repro.crypto.cipher import StreamCipher
from repro.crypto.keys import derive_key
from repro.crypto.mac import mac


def shortcut_digest(data: bytes) -> bytes:
    return hmac.new(b"k", data, hashlib.sha256).digest()


def crossed_roles(keys, node: int):
    cipher = StreamCipher(keys.mac_key(node))
    tag = mac(keys.encryption_key(node), b"payload")
    return cipher, tag


def crossed_derivation(master: bytes):
    return StreamCipher(derive_key(master, "mac"))
