# repro: module=repro.protocols.fake_agent
"""Fixture: silently swallowed exceptions (FI001)."""


def handle(packets):
    for packet in packets:
        try:
            packet.decode()
        except:  # noqa: E722
            pass
    try:
        packets[0].verify()
    except Exception:
        ...
    try:
        packets[-1].settle()
    except (ValueError, Exception):
        continue_ = None  # not a swallow: has an observable statement
    try:
        packets[1].replay()
    except (KeyError, BaseException):
        pass
    return continue_
