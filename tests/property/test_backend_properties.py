"""Property suite: the fastpath replay is byte-identical to the event
engine — detection outcomes, metrics snapshots, evidence-ledger JSONL,
and conviction rounds — for every ported protocol, across random seeds,
loss placements, and adversary configurations; requests it cannot replay
exactly provably route to the event engine.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ProtocolParams
from repro.faults.spec import preset
from repro.net.backend import DetectionRequest, get_backend
from repro.net.fastpath import (
    PORTED_FAMILIES,
    classify_reasons,
    classify_request,
)
from repro.obs.ledger import EvidenceLedger, using_ledger
from repro.obs.registry import MetricsRegistry, using_registry
from repro.protocols.registry import available_protocols, protocol_class
from repro.workloads.scenarios import Scenario

#: Protocols with a vectorized round model (family in PORTED_FAMILIES).
PORTED = [
    name for name in available_protocols()
    if getattr(protocol_class(name), "fastpath_family", None)
    in PORTED_FAMILIES
]
UNPORTED = [name for name in available_protocols() if name not in PORTED]

#: Counter families that must match across engines (nonzero series).
SCOPED_COUNTERS = frozenset({
    "net.link.transmissions",
    "net.link.natural_losses",
    "net.node.drops",
    "protocol.rounds",
    "protocol.probes_sent",
    "protocol.acks_verified",
    "protocol.report_timeouts",
    "protocol.sampling_hits",
})


def _scoped(registry):
    out = {}
    for entry in registry.snapshot()["counters"]:
        if entry["name"] in SCOPED_COUNTERS and entry["value"]:
            key = (entry["name"], tuple(sorted(entry["labels"].items())))
            out[key] = entry["value"]
    return out


def _run(backend_name, request):
    registry = MetricsRegistry()
    ledger = EvidenceLedger()
    with using_registry(registry), using_ledger(ledger):
        result = get_backend(backend_name).run(request)
    return result, _scoped(registry), list(ledger.to_jsonl_lines())


def _request(protocol, scenario, seed, horizon):
    return DetectionRequest(
        protocol=protocol,
        scenario=scenario,
        runs=1,
        horizon=horizon,
        checkpoints=[horizon // 2, horizon],
        seed=seed,
        # Aggressive statfl sketch parameters so short horizons exercise
        # the interval-request machinery several times over.
        fl_sampling=0.25,
        fl_interval=20,
    )


adversary_placements = st.dictionaries(
    keys=st.integers(min_value=1, max_value=5),
    values=st.floats(min_value=0.0, max_value=0.3,
                     allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=2,
)


class TestEngineEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        protocol=st.sampled_from(PORTED),
        seed=st.integers(min_value=0, max_value=2**48),
        placement=adversary_placements,
        # params require natural_loss < alpha (0.03 by default).
        rho=st.floats(min_value=0.0, max_value=0.025, allow_nan=False),
    )
    def test_outcomes_and_metrics_identical(
        self, protocol, seed, placement, rho
    ):
        params = ProtocolParams(natural_loss=rho)
        scenario = Scenario(params=params, malicious_nodes=placement)
        horizon = 40 if protocol in ("full-ack", "sig-ack") else 80
        request = _request(protocol, scenario, seed, horizon)
        fast, fast_counters, fast_ledger = _run("fastpath", request)
        event, event_counters, event_ledger = _run("event", request)
        assert fast.engines == ["fastpath"]
        assert np.array_equal(fast.convictions, event.convictions)
        assert np.array_equal(fast.estimates_last, event.estimates_last)
        assert fast_counters == event_counters
        # The provenance gate: both engines must emit byte-identical
        # evidence-ledger JSONL (same entries, same order, same floats).
        assert fast_ledger and fast_ledger == event_ledger

    @settings(max_examples=8, deadline=None)
    @given(
        protocol=st.sampled_from(PORTED),
        seed=st.integers(min_value=0, max_value=2**48),
    )
    def test_conviction_rounds_identical(self, protocol, seed):
        """Per-checkpoint conviction tensors agree at every checkpoint,
        so the first-conviction round is identical across engines."""
        scenario = Scenario(malicious_nodes={4: 0.15})
        horizon = 60
        request = DetectionRequest(
            protocol=protocol,
            scenario=scenario,
            runs=1,
            horizon=horizon,
            checkpoints=[15, 30, 45, 60],
            seed=seed,
            fl_sampling=0.25,
            fl_interval=20,
        )
        fast, _, _ = _run("fastpath", request)
        event, _, _ = _run("event", request)
        first_fast = np.argmax(fast.convictions.any(axis=2), axis=0)
        first_event = np.argmax(event.convictions.any(axis=2), axis=0)
        assert np.array_equal(fast.convictions, event.convictions)
        assert np.array_equal(first_fast, first_event)


class TestFallbackRouting:
    def test_unported_protocols_delegate_to_event(self):
        scenario = Scenario(malicious_nodes={4: 0.02})
        for protocol in UNPORTED:
            request = _request(protocol, scenario, seed=3, horizon=20)
            reason = classify_request(request)
            assert reason is not None and "vectorized" in reason
            result, _, _ = _run("fastpath", request)
            assert result.engines == ["event"]
            assert result.reasons == [reason]

    def test_fault_schedules_route_to_event(self):
        scenario = Scenario(malicious_nodes={4: 0.02})
        request = _request("full-ack", scenario, seed=3, horizon=20)
        request.faults = preset("benign-jitter")
        assert "fault schedule" in classify_request(request)
        result, _, _ = _run("fastpath", request)
        assert result.engines == ["event"]

    def test_bidirectional_adversaries_route_to_event(self):
        scenario = Scenario(
            malicious_nodes={4: 0.02}, bidirectional=True
        )
        request = _request("full-ack", scenario, seed=3, horizon=20)
        assert "reverse path" in classify_request(request)
        result, _, _ = _run("fastpath", request)
        assert result.engines == ["event"]

    def test_adversarial_timing_knobs_route_to_event(self):
        scenario_for = lambda params: Scenario(  # noqa: E731
            params=params, malicious_nodes={4: 0.02}
        )
        retried = _request(
            "full-ack", scenario_for(ProtocolParams(probe_retries=2)),
            seed=3, horizon=20,
        )
        assert "retransmission" in classify_request(retried)
        windowed = _request(
            "full-ack", scenario_for(ProtocolParams(score_window=50)),
            seed=3, horizon=20,
        )
        assert "windowed" in classify_request(windowed)
        params = ProtocolParams()
        tight = _request(
            "full-ack",
            scenario_for(
                ProtocolParams(freshness_window=0.1 * params.r0)
            ),
            seed=3, horizon=20,
        )
        assert "freshness" in classify_request(tight)

    def test_eligible_request_classifies_clean(self):
        scenario = Scenario(malicious_nodes={4: 0.02})
        for protocol in PORTED:
            assert classify_request(
                _request(protocol, scenario, seed=3, horizon=20)
            ) is None

class TestClassifyReasonsProperties:
    """classify_reasons must return EVERY tripped clause, deduplicated,
    in canonical sorted order — independent of clause evaluation order —
    and classify_request must be its first element."""

    @settings(max_examples=60, deadline=None)
    @given(
        unported=st.booleans(),
        faulted=st.booleans(),
        bidirectional=st.booleans(),
        retries=st.booleans(),
        windowed=st.booleans(),
        tight_freshness=st.booleans(),
    )
    def test_all_tripped_clauses_reported_sorted(
        self, unported, faulted, bidirectional, retries, windowed,
        tight_freshness,
    ):
        params = ProtocolParams(
            probe_retries=2 if retries else 0,
            score_window=50 if windowed else None,
            freshness_window=(
                0.1 * ProtocolParams().r0 if tight_freshness
                else ProtocolParams().freshness_window
            ),
        )
        scenario = Scenario(
            params=params,
            malicious_nodes={4: 0.02},
            bidirectional=bidirectional,
        )
        request = _request(
            UNPORTED[0] if unported else PORTED[0],
            scenario, seed=3, horizon=20,
        )
        if faulted:
            request.faults = preset("benign-jitter")
        reasons = classify_reasons(request)

        # Sorted and deduplicated.
        assert reasons == sorted(set(reasons))
        # Exactly the tripped clauses, no more, no less.
        expectations = {
            "vectorized": unported,
            "fault schedule": faulted,
            "reverse path": bidirectional,
            "retransmission": retries,
            "windowed": windowed,
            "freshness": tight_freshness,
        }
        for marker, tripped in expectations.items():
            matches = [r for r in reasons if marker in r]
            assert len(matches) == (1 if tripped else 0), marker
        assert len(reasons) == sum(expectations.values())
        # classify_request is the canonical head of the same list.
        assert classify_request(request) == (
            reasons[0] if reasons else None
        )

    def test_multi_clause_request_is_order_stable(self):
        """A request tripping several clauses yields the same list no
        matter how it was built (regression for evaluation-order leaks)."""
        params = ProtocolParams(probe_retries=2, score_window=50)
        scenario = Scenario(
            params=params, malicious_nodes={4: 0.02}, bidirectional=True
        )
        request = _request(UNPORTED[0], scenario, seed=3, horizon=20)
        request.faults = preset("benign-jitter")
        reasons = classify_reasons(request)
        assert len(reasons) == 5
        assert reasons == sorted(reasons)
        assert classify_reasons(request) == reasons
