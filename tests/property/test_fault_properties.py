"""Property suite for the robustness contract (ISSUE satellite):

no *benign* fault schedule — faults inside the paper's §3 operating
assumptions — may make any registered protocol falsely accuse an honest
link at a rate above §7's Hoeffding bound. We assert the strictly
stronger statement that the confidence-aware verdict convicts nobody at
all (an empirical false-accusation rate of zero, which no bound can be
below), and that every cell survives the schedule without an unhandled
exception.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.experiments.chaos import (
    cell_seed,
    run_chaos_cell,
    section7_bound,
)
from repro.faults import PRESETS
from repro.protocols.registry import available_protocols

BENIGN_SPECS = sorted(
    name for name, spec in PRESETS.items() if spec.benign
)

ALL_PROTOCOLS = available_protocols()

#: Packet budget per cell, tuned per protocol so the grid stays fast:
#: sig-ack pays for hash-based signatures on every ack, and statfl needs
#: a multiple of its 100-packet chaos reporting interval (a short final
#: partial interval yields degenerate count ratios).
PACKETS = {"sig-ack": 100, "statfl": 200}
DEFAULT_PACKETS = 160


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("spec_name", BENIGN_SPECS)
class TestNoFalseAccusationsUnderBenignFaults:
    @settings(max_examples=2, deadline=None)
    @given(root=st.integers(0, 10_000))
    def test_benign_schedule_convicts_nobody(self, protocol, spec_name, root):
        spec = PRESETS[spec_name]
        cell = run_chaos_cell(
            protocol,
            spec,
            seed=cell_seed(root, protocol, spec_name),
            packets=PACKETS.get(protocol, DEFAULT_PACKETS),
        )
        assert cell.error is None, (
            f"{protocol}/{spec_name} crashed:\n{cell.error}"
        )
        assert cell.false_accusations == [], (
            f"{protocol}/{spec_name} falsely convicted "
            f"{cell.false_accusations} (estimates={cell.estimates}, "
            f"thresholds={cell.thresholds})"
        )
        # Zero observed false accusations trivially satisfies any §7
        # bound; record the comparison explicitly so the contract reads
        # off the test: rate (0.0) <= bound.
        assert 0.0 <= cell.fp_bound <= 1.0
        assert len(cell.false_accusations) / max(cell.rounds, 1) <= (
            cell.fp_bound if cell.fp_bound > 0 else 1.0
        ) or cell.false_accusations == []


class TestSection7Bound:
    @settings(max_examples=50)
    @given(
        rounds=st.integers(0, 10_000_000),
        epsilon=st.floats(1e-4, 1.0, allow_nan=False),
        links=st.integers(1, 16),
    )
    def test_bound_is_a_probability(self, rounds, epsilon, links):
        bound = section7_bound(rounds, epsilon, links)
        assert 0.0 <= bound <= 1.0

    @settings(max_examples=25)
    @given(
        rounds=st.integers(1, 1_000_000),
        epsilon=st.floats(1e-3, 0.5, allow_nan=False),
        links=st.integers(1, 16),
    )
    def test_bound_decreases_with_more_rounds(self, rounds, epsilon, links):
        assert section7_bound(2 * rounds, epsilon, links) <= (
            section7_bound(rounds, epsilon, links)
        )

    def test_vacuous_at_zero_rounds(self):
        assert section7_bound(0, 0.06) == 1.0

    def test_union_bound_over_links(self):
        one = section7_bound(100_000, 0.06, links=1)
        six = section7_bound(100_000, 0.06, links=6)
        assert six == pytest.approx(min(1.0, 6 * one))

    def test_matches_hoeffding_closed_form(self):
        rounds, epsilon = 50_000, 0.06
        expected = 2.0 * math.exp(-2.0 * rounds * (epsilon / 2.0) ** 2)
        assert section7_bound(rounds, epsilon) == pytest.approx(expected)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ConfigurationError):
            section7_bound(10, 0.0)
        with pytest.raises(ConfigurationError):
            section7_bound(10, 0.1, links=0)
