"""Property-based tests (hypothesis) for the crypto substrate."""

import hashlib
import hmac as stdlib_hmac

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cipher import NONCE_SIZE, StreamCipher
from repro.crypto.keys import KeyManager
from repro.crypto.mac import hmac_sha256, mac, verify_mac
from repro.crypto.oblivious import ObliviousDecoder, ObliviousReport
from repro.crypto.onion import OnionReport, OnionVerifier
from repro.crypto.prf import PRF

keys = st.binary(min_size=0, max_size=100)
messages = st.binary(min_size=0, max_size=500)
payloads = st.binary(min_size=0, max_size=64)


class TestHmacProperties:
    @given(key=keys, message=messages)
    def test_matches_stdlib_everywhere(self, key, message):
        expected = stdlib_hmac.new(key, message, hashlib.sha256).digest()
        assert hmac_sha256(key, message) == expected

    @given(key=keys, message=messages, size=st.integers(1, 32))
    def test_truncation_is_prefix(self, key, message, size):
        assert mac(key, message, size) == hmac_sha256(key, message)[:size]

    @given(key=keys, message=messages, size=st.integers(1, 32))
    def test_verify_accepts_own_tag(self, key, message, size):
        assert verify_mac(key, message, mac(key, message, size))

    @given(key=keys, message=messages, flip=st.integers(0, 7))
    def test_verify_rejects_any_single_bit_flip(self, key, message, flip):
        tag = bytearray(mac(key, message))
        tag[flip] ^= 1 << (flip % 8) or 1
        assert not verify_mac(key, message, bytes(tag))


class TestCipherProperties:
    @given(key=st.binary(min_size=1, max_size=64), plaintext=messages)
    def test_roundtrip(self, key, plaintext):
        cipher = StreamCipher(key)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    @given(key=st.binary(min_size=1, max_size=64), plaintext=messages)
    def test_length_overhead_is_exactly_nonce(self, key, plaintext):
        cipher = StreamCipher(key)
        assert len(cipher.encrypt(plaintext)) == len(plaintext) + NONCE_SIZE

    @given(
        key=st.binary(min_size=1, max_size=64),
        nonce=st.binary(min_size=1, max_size=32),
        length=st.integers(0, 200),
        prefix=st.integers(0, 200),
    )
    def test_keystream_prefix_consistency(self, key, nonce, length, prefix):
        prf = PRF(key, label="ks")
        shorter = min(length, prefix)
        assert prf.keystream(nonce, length)[:shorter] == prf.keystream(
            nonce, shorter
        )


class TestPrfProperties:
    @given(key=st.binary(min_size=1, max_size=64), data=messages,
           modulus=st.integers(1, 10_000))
    def test_integer_in_range(self, key, data, modulus):
        value = PRF(key).integer(data, modulus)
        assert 0 <= value < modulus

    @given(key=st.binary(min_size=1, max_size=64), data=messages)
    def test_fraction_in_unit_interval(self, key, data):
        value = PRF(key).fraction(data)
        assert 0.0 <= value < 1.0

    @given(key=st.binary(min_size=1, max_size=64), data=messages)
    def test_deterministic(self, key, data):
        prf = PRF(key, label="det")
        assert prf.digest(data) == prf.digest(data)


class TestOnionProperties:
    @settings(max_examples=25)
    @given(
        depth=st.integers(1, 8),
        path_length=st.integers(1, 8),
        payload=payloads,
    )
    def test_honest_chain_verifies_to_its_origin(self, depth, path_length, payload):
        depth = min(depth, path_length)
        manager = KeyManager(path_length=path_length, seed=b"prop")
        report = OnionReport.originate(depth, payload, manager.mac_key(depth))
        for node in range(depth - 1, 0, -1):
            report = OnionReport.wrap(node, payload, report, manager.mac_key(node))
        verdict = OnionVerifier(manager.all_mac_keys()).verify(report)
        assert verdict.deepest_valid == depth
        assert verdict.complete
        assert all(layer.payload == payload for layer in verdict.layers)

    @settings(max_examples=25)
    @given(
        depth=st.integers(2, 6),
        corrupt_at=st.integers(0, 10_000),
        payload=payloads,
    )
    def test_any_corruption_reduces_depth_or_is_detected(
        self, depth, corrupt_at, payload
    ):
        manager = KeyManager(path_length=6, seed=b"prop2")
        report = OnionReport.originate(depth, payload, manager.mac_key(depth))
        for node in range(depth - 1, 0, -1):
            report = OnionReport.wrap(node, payload, report, manager.mac_key(node))
        mangled = bytearray(report)
        mangled[corrupt_at % len(mangled)] ^= 0xA5
        verdict = OnionVerifier(manager.all_mac_keys()).verify(bytes(mangled))
        # A corrupted report can never verify deeper than the honest one,
        # and cannot verify completely to the same depth.
        assert verdict.deepest_valid <= depth
        assert not (verdict.complete and verdict.deepest_valid == depth) or (
            # unless the flip hit a length prefix making a shorter valid
            # parse impossible — in which case depth must have shrunk
            verdict.deepest_valid < depth
        )


class TestObliviousProperties:
    @settings(max_examples=25)
    @given(
        selected=st.integers(1, 6),
        challenge=st.binary(min_size=1, max_size=64),
        ack=st.one_of(st.none(), st.binary(min_size=0, max_size=32)),
    )
    def test_roundtrip_matches(self, selected, challenge, ack):
        manager = KeyManager(path_length=6, seed=b"prop3")
        decoder = ObliviousDecoder(
            [manager.encryption_key(i) for i in range(1, 7)],
            [manager.mac_key(i) for i in range(1, 7)],
        )
        report = ObliviousReport.originate(
            selected, challenge, ack,
            manager.mac_key(selected), manager.encryption_key(selected),
        )
        for node in range(selected - 1, 0, -1):
            report = ObliviousReport.reencrypt(report, manager.encryption_key(node))
        decoded = decoder.decode(report, selected=selected, challenge=challenge)
        assert decoded.matches
        expected_ack = ack if ack else None
        assert decoded.dest_ack == expected_ack

    @settings(max_examples=25)
    @given(
        selected=st.integers(1, 6),
        wrong=st.integers(1, 6),
        challenge=st.binary(min_size=1, max_size=32),
    )
    def test_wrong_selection_never_matches(self, selected, wrong, challenge):
        if selected == wrong:
            return
        manager = KeyManager(path_length=6, seed=b"prop4")
        decoder = ObliviousDecoder(
            [manager.encryption_key(i) for i in range(1, 7)],
            [manager.mac_key(i) for i in range(1, 7)],
        )
        report = ObliviousReport.originate(
            selected, challenge, None,
            manager.mac_key(selected), manager.encryption_key(selected),
        )
        for node in range(selected - 1, 0, -1):
            report = ObliviousReport.reencrypt(report, manager.encryption_key(node))
        assert not decoder.decode(report, selected=wrong, challenge=challenge).matches


class TestSignatureProperties:
    @settings(max_examples=10, deadline=None)
    @given(messages_to_sign=st.lists(st.binary(min_size=0, max_size=64),
                                     min_size=1, max_size=4),
           seed=st.binary(min_size=1, max_size=16))
    def test_merkle_sign_verify_roundtrip(self, messages_to_sign, seed):
        from repro.crypto.merkle import MerkleSigner, MerkleVerifier

        signer = MerkleSigner(seed, height=2)
        verifier = MerkleVerifier(signer.public_root)
        for message in messages_to_sign:
            signature = signer.sign(message)
            assert verifier.verify(message, signature)

    @settings(max_examples=10, deadline=None)
    @given(message=st.binary(min_size=0, max_size=64),
           other=st.binary(min_size=0, max_size=64))
    def test_signature_does_not_transfer(self, message, other):
        from repro.crypto.merkle import MerkleSigner, MerkleVerifier

        if message == other:
            return
        signer = MerkleSigner(b"prop-seed", height=1)
        verifier = MerkleVerifier(signer.public_root)
        signature = signer.sign(message)
        assert not verifier.verify(other, signature)

    @settings(max_examples=10, deadline=None)
    @given(blob_mutation=st.integers(0, 10_000),
           message=st.binary(min_size=1, max_size=32))
    def test_encoded_signature_corruption_detected(self, blob_mutation, message):
        from repro.crypto.merkle import (
            MerkleSigner,
            MerkleVerifier,
            decode_signature,
            encode_signature,
        )
        from repro.exceptions import ConfigurationError

        signer = MerkleSigner(b"prop-seed-2", height=1)
        verifier = MerkleVerifier(signer.public_root)
        blob = bytearray(encode_signature(signer.sign(message)))
        blob[blob_mutation % len(blob)] ^= 0x5A
        try:
            signature = decode_signature(bytes(blob))
        except ConfigurationError:
            return  # structural rejection is also a pass
        assert not verifier.verify(message, signature)
