"""Property-based tests for the outcome models and estimators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import DifferenceEstimator, DirectEstimator
from repro.core.identification import identify_links
from repro.core.params import ProtocolParams
from repro.core.scoring import ScoreBoard
from repro.protocols import models

rates = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
rate_arrays = st.lists(rates, min_size=2, max_size=8)


def _params_for(d):
    return ProtocolParams(path_length=d, probe_frequency=1.0 / d ** 2)


@st.composite
def rate_triples(draw):
    d = draw(st.integers(2, 7))
    f = draw(st.lists(rates, min_size=d, max_size=d))
    b_ack = draw(st.lists(rates, min_size=d, max_size=d))
    b_report = draw(st.lists(rates, min_size=d, max_size=d))
    return f, b_ack, b_report


class TestModelDistributions:
    @settings(max_examples=40)
    @given(triple=rate_triples(),
           name=st.sampled_from(["full-ack", "paai1", "paai2", "combo1", "combo2"]))
    def test_probabilities_form_distribution(self, triple, name):
        f, b_ack, b_report = triple
        model = models.build_model(name, f, b_ack, b_report, _params_for(len(f)))
        total = model.probabilities.sum()
        assert abs(total - 1.0) < 1e-9
        assert (model.probabilities >= -1e-12).all()

    @settings(max_examples=30)
    @given(triple=rate_triples())
    def test_estimates_nonnegative_and_bounded(self, triple):
        f, b_ack, b_report = triple
        for name in ("full-ack", "paai2"):
            model = models.build_model(name, f, b_ack, b_report, _params_for(len(f)))
            for estimate in model.expected_estimates():
                assert -1e-12 <= estimate <= len(f) + 1e-9

    @settings(max_examples=30)
    @given(
        d=st.integers(2, 6),
        link=st.integers(0, 5),
        low=st.floats(0.0, 0.2),
        high=st.floats(0.2, 0.6),
    )
    def test_blame_estimate_monotone_in_forward_rate(self, d, link, low, high):
        """Raising a link's forward drop rate cannot lower its expected
        blame estimate under the onion observers."""
        link = link % d
        params = _params_for(d)
        base = [0.01] * d
        f_low, f_high = list(base), list(base)
        f_low[link] = low
        f_high[link] = high
        low_model = models.build_model("full-ack", f_low, base, base, params)
        high_model = models.build_model("full-ack", f_high, base, base, params)
        assert (
            high_model.expected_estimates()[link]
            >= low_model.expected_estimates()[link] - 1e-9
        )

    @settings(max_examples=25)
    @given(d=st.integers(2, 7))
    def test_thresholds_strictly_separate_hypotheses(self, d):
        params = _params_for(d)
        thresholds = models.calibrated_thresholds("paai1", params)
        natural = models.natural_estimates("paai1", params)
        for link in range(d):
            malicious = models.malicious_estimates("paai1", params, link)[link]
            assert natural[link] < thresholds[link] < malicious


class TestEstimatorAlgebra:
    @settings(max_examples=40)
    @given(
        scores=st.lists(st.integers(0, 1000), min_size=1, max_size=8),
        rounds=st.integers(1, 2000),
    )
    def test_direct_estimates_are_frequencies(self, scores, rounds):
        board = ScoreBoard(len(scores))
        for _ in range(rounds):
            board.record_round()
        for link, score in enumerate(scores):
            board.add(link, score)
        estimates = DirectEstimator(board).estimates()
        for score, estimate in zip(scores, estimates):
            assert estimate == score / rounds

    @settings(max_examples=40)
    @given(
        increments=st.lists(st.integers(1, 8), min_size=1, max_size=300),
        d=st.integers(2, 8),
    )
    def test_difference_estimates_nonnegative(self, increments, d):
        """Whatever sequence of valid PAAI-2 interval increments occurs,
        the per-link estimates stay non-negative."""
        board = ScoreBoard(d)
        for selected in increments:
            board.record_round()
            board.add_upstream_interval((selected % d) + 1)
        estimates = DifferenceEstimator(board).estimates()
        assert all(value >= 0.0 for value in estimates)

    @settings(max_examples=40)
    @given(
        estimates=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=10),
        threshold=st.floats(0.001, 1.0),
    )
    def test_identify_matches_manual_comparison(self, estimates, threshold):
        result = identify_links(estimates, threshold)
        expected = {
            index for index, value in enumerate(estimates) if value > threshold
        }
        assert result.convicted == expected


class TestMcEstimatorEquivalence:
    @settings(max_examples=20)
    @given(
        score_rows=st.lists(
            st.lists(st.integers(0, 50), min_size=6, max_size=6),
            min_size=1,
            max_size=5,
        ),
        rounds=st.integers(1, 500),
    )
    def test_vectorized_interval_estimator_matches_scalar(self, score_rows, rounds):
        """The MC engine's vectorized difference estimator must agree with
        the reference ScoreBoard/DifferenceEstimator implementation."""
        from repro.mc.detection import DetectionExperiment

        d = 6
        # Make rows valid interval-score profiles (non-increasing in j),
        # as real PAAI-2 scoring always produces.
        profiles = []
        for row in score_rows:
            profile = sorted(row, reverse=True)
            profiles.append(profile)
        scores = np.array(profiles)
        rounds_vector = np.full(len(profiles), rounds)
        vectorized = DetectionExperiment._estimates(
            scores, rounds_vector, models.KIND_INTERVAL, d
        )
        for row_index, profile in enumerate(profiles):
            board = ScoreBoard(d)
            for _ in range(rounds):
                board.record_round()
            for link, score in enumerate(profile):
                board.add(link, score)
            reference = DifferenceEstimator(board).estimates()
            assert np.allclose(vectorized[row_index], reference)


class TestWindowedBoardProperties:
    @settings(max_examples=40)
    @given(
        events=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 3)),
            min_size=1,
            max_size=200,
        ),
        window=st.integers(1, 50),
    )
    def test_window_equals_suffix_sum(self, events, window):
        """The windowed totals must equal the sum of the last `window`
        rounds' scores, for any event sequence."""
        from repro.core.windows import WindowedScoreBoard

        d = 6
        board = WindowedScoreBoard(d, window=window)
        history = []
        for link, amount in events:
            board.record_round()
            history.append([0] * d)
            if amount:
                board.add(link, amount)
                history[-1][link] += amount
        expected = [0] * d
        for round_scores in history[-window:]:
            for index, value in enumerate(round_scores):
                expected[index] += value
        assert board.window_scores == expected
        assert board.window_rounds == min(len(history), window)
        # Cumulative view unaffected by windowing.
        totals = [0] * d
        for round_scores in history:
            for index, value in enumerate(round_scores):
                totals[index] += value
        assert board.scores == totals
