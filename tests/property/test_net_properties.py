"""Property-based tests for the network substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.events import EventQueue
from repro.net.node import Node, PacketStore
from repro.net.packets import DataPacket, Direction
from repro.net.path import Path
from repro.net.simulator import Simulator


class Collector(Node):
    def __init__(self, position):
        super().__init__(position)
        self.received = []

    def on_packet(self, packet, direction):
        self.received.append(packet.sequence)


class TestEventOrdering:
    @given(times=st.lists(st.floats(0.0, 1000.0, allow_nan=False,
                                    allow_infinity=False),
                          min_size=1, max_size=100))
    def test_events_fire_in_time_order(self, times):
        queue = EventQueue()
        fired = []
        for time in times:
            queue.schedule(time, lambda t=time: fired.append(t))
        while (item := queue.pop()) is not None:
            item[1]()
        assert fired == sorted(times)

    @given(times=st.lists(st.floats(0.0, 100.0, allow_nan=False),
                          min_size=1, max_size=60))
    def test_simulator_clock_never_regresses(self, times):
        simulator = Simulator()
        observed = []
        for time in times:
            simulator.schedule_at(time, lambda: observed.append(simulator.now))
        simulator.run()
        assert observed == sorted(observed)


class TestFifoLinks:
    @settings(max_examples=25)
    @given(
        count=st.integers(2, 60),
        seed=st.integers(0, 10_000),
        gap=st.floats(0.0, 0.002),
    )
    def test_no_reordering_on_a_link(self, count, seed, gap):
        """Packets sent in order on a link arrive in order regardless of
        the per-packet latency draws — FIFO is what lets a probe trail its
        data packet safely."""
        simulator = Simulator(seed=seed)
        path = Path(simulator, length=1, natural_loss=0.0, max_latency=0.005)
        sender, receiver = Collector(0), Collector(1)
        path.attach_nodes([sender, receiver])

        for index in range(count):
            simulator.schedule_at(
                index * gap,
                lambda i=index: sender.send_forward(
                    DataPacket.create(b"p%d" % i, timestamp=0.0, sequence=i)
                ),
            )
        simulator.run()
        assert receiver.received == sorted(receiver.received)
        assert len(receiver.received) == count


class TestPacketStoreInvariants:
    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["add", "pop"]), st.integers(0, 15)),
            max_size=100,
        )
    )
    def test_size_and_peak_consistency(self, operations):
        store = PacketStore()
        alive = set()
        clock = 0.0
        peak = 0
        for action, key in operations:
            clock += 1.0
            identifier = bytes([key])
            if action == "add":
                store.add(identifier, clock)
                alive.add(identifier)
            else:
                store.pop(identifier, clock)
                alive.discard(identifier)
            peak = max(peak, len(alive))
            assert len(store) == len(alive)
            for identifier in alive:
                assert identifier in store
        assert store.peak == peak
