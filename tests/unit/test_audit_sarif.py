"""SARIF 2.1.0 export: structure GitHub code scanning will accept."""

import json
import os

from repro.audit import audit_paths, to_sarif, write_sarif
from repro.audit.catalog import known_rule_ids
from repro.audit.engine import apply_baseline

FIXTURES = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "fixtures", "audit")
)


def fixture_findings():
    return audit_paths([FIXTURES], root=FIXTURES)


def test_log_skeleton_is_sarif_2_1_0():
    log = to_sarif(fixture_findings())
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(log["runs"]) == 1
    driver = log["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-audit"
    assert driver["semanticVersion"]


def test_driver_declares_every_known_rule():
    log = to_sarif([])
    driver_ids = {
        rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]
    }
    # The full catalogue plus the engine meta rules (AUD001/AUD002):
    # results always resolve by ruleIndex, never dangle.
    assert driver_ids == known_rule_ids()


def test_results_carry_location_fingerprint_and_rule_index():
    findings = fixture_findings()
    log = to_sarif(findings)
    run = log["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert len(run["results"]) == len(findings)
    for finding, result in zip(findings, run["results"]):
        assert result["ruleId"] == finding.rule
        assert rules[result["ruleIndex"]]["id"] == finding.rule
        assert result["level"] in ("error", "warning")
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == finding.path
        assert "\\" not in location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] == finding.line
        assert location["region"]["startColumn"] >= 1
        assert (
            result["partialFingerprints"]["reproAuditFingerprint/v1"]
            == finding.fingerprint
        )


def test_baseline_state_mirrors_grandfathering():
    findings = fixture_findings()
    grandfathered = {findings[0].fingerprint}
    baselined = apply_baseline(findings, grandfathered)
    log = to_sarif(baselined)
    states = [r["baselineState"] for r in log["runs"][0]["results"]]
    assert states[0] == "unchanged"
    assert set(states[1:]) == {"new"}


def test_write_sarif_round_trips_through_json(tmp_path):
    path = tmp_path / "out.sarif"
    findings = fixture_findings()
    write_sarif(str(path), findings)
    loaded = json.loads(path.read_text())
    assert loaded == to_sarif(findings)
