"""Tests for the deterministic process-pool engine (repro.parallel)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.registry import NullRegistry, get_registry
from repro.parallel import (
    call_with_metrics,
    default_jobs,
    resolve_jobs,
    run_tasks,
    run_tasks_completed,
    shard_seed,
    shard_sizes,
)


def _square(value):
    """Module-level so it pickles across the pool boundary."""
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("scripted shard failure")
    return value


def _counting_task():
    registry = get_registry()
    registry.counter("task.calls").inc()
    return "done"


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) == default_jobs()
        assert resolve_jobs(0) == default_jobs()
        assert default_jobs() >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)


class TestShardSizes:
    def test_sizes_sum_to_total(self):
        for total in (1, 7, 256, 1000, 2001):
            for shards in (1, 2, 3, 8):
                sizes = shard_sizes(total, shards)
                assert sum(sizes) == total

    def test_sizes_are_near_equal(self):
        sizes = shard_sizes(10, 4)
        assert sizes == [3, 3, 2, 2]
        assert max(sizes) - min(sizes) <= 1

    def test_shards_never_outnumber_items(self):
        assert shard_sizes(3, 8) == [1, 1, 1]

    def test_zero_total_gives_single_empty_shard(self):
        assert shard_sizes(0, 4) == [0]

    def test_decomposition_is_deterministic(self):
        assert shard_sizes(1000, 7) == shard_sizes(1000, 7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            shard_sizes(-1, 2)
        with pytest.raises(ConfigurationError):
            shard_sizes(10, 0)


class TestShardSeed:
    def test_deterministic(self):
        assert shard_seed(42, 0) == shard_seed(42, 0)
        assert shard_seed(42, 3) == shard_seed(42, 3)

    def test_distinct_per_index_and_root(self):
        seeds = {shard_seed(42, index) for index in range(32)}
        assert len(seeds) == 32
        assert shard_seed(42, 0) != shard_seed(43, 0)

    def test_labels_separate_streams(self):
        assert shard_seed(42, 0, label="mc-shard") != shard_seed(42, 0)


class TestRunTasks:
    def test_serial_preserves_order(self):
        assert run_tasks(_square, [3, 1, 4, 1, 5], jobs=1) == [9, 1, 16, 1, 25]

    def test_parallel_matches_serial(self):
        payloads = list(range(9))
        assert run_tasks(_square, payloads, jobs=4) == (
            run_tasks(_square, payloads, jobs=1)
        )

    def test_single_payload_short_circuits(self):
        assert run_tasks(_square, [6], jobs=8) == [36]

    def test_empty_payloads(self):
        assert run_tasks(_square, [], jobs=4) == []


class TestRunTasksCompleted:
    def test_serial_yields_in_payload_order(self):
        pairs = list(run_tasks_completed(_square, [2, 3, 4], jobs=1))
        assert pairs == [(0, 4), (1, 9), (2, 16)]

    def test_parallel_yields_every_result_once(self):
        pairs = list(run_tasks_completed(_square, list(range(8)), jobs=4))
        assert sorted(pairs) == [(i, i * i) for i in range(8)]

    def test_serial_failure_propagates(self):
        with pytest.raises(ValueError, match="scripted shard failure"):
            list(run_tasks_completed(_fail_on_three, [1, 2, 3, 4], jobs=1))

    def test_parallel_failure_propagates(self):
        with pytest.raises(ValueError, match="scripted shard failure"):
            list(run_tasks_completed(_fail_on_three, [3] * 4, jobs=2))


class TestCallWithMetrics:
    def test_disabled_returns_no_snapshot(self):
        result, snapshot = call_with_metrics(lambda: 7, collect_metrics=False)
        assert result == 7
        assert snapshot is None

    def test_enabled_returns_fresh_snapshot(self):
        result, snapshot = call_with_metrics(
            _counting_task, collect_metrics=True
        )
        assert result == "done"
        counters = {e["name"]: e["value"] for e in snapshot["counters"]}
        assert counters == {"task.calls": 1}

    def test_registry_is_scoped_to_the_call(self):
        call_with_metrics(_counting_task, collect_metrics=True)
        assert isinstance(get_registry(), NullRegistry)
