"""Tests for the deterministic process-pool engine (repro.parallel)."""

import os

import pytest

from repro.exceptions import ConfigurationError, TaskRetryError
from repro.obs.registry import MetricsRegistry, NullRegistry, get_registry, using_registry
from repro.parallel import (
    RetryPolicy,
    call_with_metrics,
    default_jobs,
    resolve_jobs,
    run_tasks,
    run_tasks_completed,
    shard_seed,
    shard_sizes,
)


def _square(value):
    """Module-level so it pickles across the pool boundary."""
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("scripted shard failure")
    return value


def _flaky_square(arg):
    """Fails once (tracked by a marker file), then computes the square."""
    value, marker = arg
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("failed-once")
        raise RuntimeError("scripted transient failure")
    return value * value


def _always_fails(value):
    raise RuntimeError(f"permanent failure for {value}")


def _counting_task():
    registry = get_registry()
    registry.counter("task.calls").inc()
    return "done"


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) == default_jobs()
        assert resolve_jobs(0) == default_jobs()
        assert default_jobs() >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)


class TestShardSizes:
    def test_sizes_sum_to_total(self):
        for total in (1, 7, 256, 1000, 2001):
            for shards in (1, 2, 3, 8):
                sizes = shard_sizes(total, shards)
                assert sum(sizes) == total

    def test_sizes_are_near_equal(self):
        sizes = shard_sizes(10, 4)
        assert sizes == [3, 3, 2, 2]
        assert max(sizes) - min(sizes) <= 1

    def test_shards_never_outnumber_items(self):
        assert shard_sizes(3, 8) == [1, 1, 1]

    def test_zero_total_gives_single_empty_shard(self):
        assert shard_sizes(0, 4) == [0]

    def test_decomposition_is_deterministic(self):
        assert shard_sizes(1000, 7) == shard_sizes(1000, 7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            shard_sizes(-1, 2)
        with pytest.raises(ConfigurationError):
            shard_sizes(10, 0)


class TestShardSeed:
    def test_deterministic(self):
        assert shard_seed(42, 0) == shard_seed(42, 0)
        assert shard_seed(42, 3) == shard_seed(42, 3)

    def test_distinct_per_index_and_root(self):
        seeds = {shard_seed(42, index) for index in range(32)}
        assert len(seeds) == 32
        assert shard_seed(42, 0) != shard_seed(43, 0)

    def test_labels_separate_streams(self):
        assert shard_seed(42, 0, label="mc-shard") != shard_seed(42, 0)


class TestRunTasks:
    def test_serial_preserves_order(self):
        assert run_tasks(_square, [3, 1, 4, 1, 5], jobs=1) == [9, 1, 16, 1, 25]

    def test_parallel_matches_serial(self):
        payloads = list(range(9))
        assert run_tasks(_square, payloads, jobs=4) == (
            run_tasks(_square, payloads, jobs=1)
        )

    def test_single_payload_short_circuits(self):
        assert run_tasks(_square, [6], jobs=8) == [36]

    def test_empty_payloads(self):
        assert run_tasks(_square, [], jobs=4) == []


class TestRunTasksCompleted:
    def test_serial_yields_in_payload_order(self):
        pairs = list(run_tasks_completed(_square, [2, 3, 4], jobs=1))
        assert pairs == [(0, 4), (1, 9), (2, 16)]

    def test_parallel_yields_every_result_once(self):
        pairs = list(run_tasks_completed(_square, list(range(8)), jobs=4))
        assert sorted(pairs) == [(i, i * i) for i in range(8)]

    def test_serial_failure_propagates(self):
        with pytest.raises(ValueError, match="scripted shard failure"):
            list(run_tasks_completed(_fail_on_three, [1, 2, 3, 4], jobs=1))

    def test_parallel_failure_propagates(self):
        with pytest.raises(ValueError, match="scripted shard failure"):
            list(run_tasks_completed(_fail_on_three, [3] * 4, jobs=2))


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout is None

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError, match="timeout"):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ConfigurationError, match="backoff"):
            RetryPolicy(backoff=-1.0)

    def test_backoff_doubles_per_attempt(self):
        policy = RetryPolicy(backoff=0.1)
        assert policy.delay_before(1) == 0.0  # first attempt is free
        assert policy.delay_before(2) == pytest.approx(0.1)
        assert policy.delay_before(3) == pytest.approx(0.2)
        assert policy.delay_before(4) == pytest.approx(0.4)

    def test_zero_backoff_retries_immediately(self):
        assert RetryPolicy(backoff=0.0).delay_before(3) == 0.0


class TestSerialRetry:
    def test_transient_failure_is_retried_to_success(self, tmp_path):
        marker = str(tmp_path / "marker")
        policy = RetryPolicy(max_attempts=3, backoff=0.0)
        assert run_tasks(_flaky_square, [(7, marker)], jobs=1,
                         retry=policy) == [49]

    def test_exhausted_budget_raises_with_cause(self):
        policy = RetryPolicy(max_attempts=2, backoff=0.0)
        with pytest.raises(TaskRetryError, match="after 2 attempts") as info:
            run_tasks(_always_fails, [1], jobs=1, retry=policy)
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_no_policy_fails_fast(self):
        with pytest.raises(RuntimeError, match="permanent failure"):
            run_tasks(_always_fails, [1], jobs=1)

    def test_streaming_serial_retries_in_payload_order(self, tmp_path):
        marker = str(tmp_path / "marker")
        policy = RetryPolicy(max_attempts=2, backoff=0.0)
        pairs = list(run_tasks_completed(
            _flaky_square, [(2, marker), (3, str(tmp_path / "marker"))],
            jobs=1, retry=policy,
        ))
        assert pairs == [(0, 4), (1, 9)]

    def test_retry_and_failure_counters_recorded(self, tmp_path):
        marker = str(tmp_path / "marker")
        policy = RetryPolicy(max_attempts=3, backoff=0.0)
        with using_registry(MetricsRegistry()) as registry:
            run_tasks(_flaky_square, [(5, marker)], jobs=1, retry=policy)
            snapshot = registry.snapshot()
        counters = {e["name"]: e["value"] for e in snapshot["counters"]}
        assert counters["parallel.task_retries"] == 1
        assert counters["parallel.task_failures"] == 1


class TestCallWithMetrics:
    def test_disabled_returns_no_snapshot(self):
        result, snapshot = call_with_metrics(lambda: 7, collect_metrics=False)
        assert result == 7
        assert snapshot is None

    def test_enabled_returns_fresh_snapshot(self):
        result, snapshot = call_with_metrics(
            _counting_task, collect_metrics=True
        )
        assert result == "done"
        counters = {e["name"]: e["value"] for e in snapshot["counters"]}
        assert counters == {"task.calls": 1}

    def test_registry_is_scoped_to_the_call(self):
        call_with_metrics(_counting_task, collect_metrics=True)
        assert isinstance(get_registry(), NullRegistry)
