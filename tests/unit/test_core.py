"""Tests for the core AAI machinery: params, scoring, estimators,
monitor, identification."""

import pytest

from repro.core.estimators import DifferenceEstimator, DirectEstimator
from repro.core.identification import identify_links
from repro.core.monitor import EndToEndMonitor
from repro.core.params import ProtocolParams
from repro.core.scoring import ScoreBoard
from repro.exceptions import ConfigurationError


class TestProtocolParams:
    def test_paper_defaults(self):
        params = ProtocolParams()
        assert params.path_length == 6
        assert params.natural_loss == 0.01
        assert params.alpha == 0.03
        assert params.epsilon == pytest.approx(0.02)
        assert params.sigma == 0.03
        assert params.probe_frequency == pytest.approx(1 / 36)
        assert params.r0 == pytest.approx(0.060)

    def test_midpoints(self):
        params = ProtocolParams()
        assert params.forward_midpoint_threshold == pytest.approx(0.02)
        assert params.round_trip_midpoint_threshold == pytest.approx(
            (1 - 0.99 ** 2) + 0.01
        )

    def test_psi_threshold(self):
        params = ProtocolParams()
        assert params.psi_threshold == pytest.approx(1 - 0.97 ** 12)

    def test_rtt_bounds(self):
        params = ProtocolParams()
        assert params.rtt_bound(0) == params.r0
        assert params.rtt_bound(4) == pytest.approx(0.020)
        with pytest.raises(ConfigurationError):
            params.rtt_bound(7)

    def test_freshness_window_defaults_to_r0(self):
        assert ProtocolParams().freshness_window == pytest.approx(0.060)

    def test_replace(self):
        params = ProtocolParams()
        other = params.replace(alpha=0.05)
        assert other.alpha == 0.05
        assert other.natural_loss == params.natural_loss
        assert params.alpha == 0.03  # original untouched

    @pytest.mark.parametrize(
        "overrides",
        [
            {"path_length": 0},
            {"natural_loss": -0.1},
            {"natural_loss": 0.05, "alpha": 0.04},  # alpha <= rho
            {"alpha": 1.5},
            {"sigma": 0.0},
            {"probe_frequency": 0.0},
            {"probe_frequency": 1.5},
            {"max_link_latency": 0.0},
            {"decision_threshold": -1.0},
            {"freshness_window": -1.0},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ConfigurationError):
            ProtocolParams(**overrides)


class TestScoreBoard:
    def test_basic_accounting(self):
        board = ScoreBoard(4)
        board.record_round()
        board.record_round()
        board.add(2)
        board.add(2)
        board.add(0)
        assert board.rounds == 2
        assert board.scores == [1, 0, 2, 0]
        assert board.score(2) == 2

    def test_upstream_interval(self):
        board = ScoreBoard(6)
        board.add_upstream_interval(3)  # +1 on l_0, l_1, l_2
        assert board.scores == [1, 1, 1, 0, 0, 0]
        board.add_upstream_interval(6)  # all links
        assert board.scores == [2, 2, 2, 1, 1, 1]

    def test_upstream_interval_validation(self):
        board = ScoreBoard(4)
        with pytest.raises(ConfigurationError):
            board.add_upstream_interval(0)
        with pytest.raises(ConfigurationError):
            board.add_upstream_interval(5)

    def test_link_bounds(self):
        board = ScoreBoard(3)
        with pytest.raises(ConfigurationError):
            board.add(3)
        with pytest.raises(ConfigurationError):
            board.add(-1)

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            ScoreBoard(3).add(0, amount=-1)

    def test_reset(self):
        board = ScoreBoard(2)
        board.record_round()
        board.add(1)
        board.reset()
        assert board.rounds == 0
        assert board.scores == [0, 0]

    def test_scores_copy_is_defensive(self):
        board = ScoreBoard(2)
        snapshot = board.scores
        snapshot[0] = 99
        assert board.scores == [0, 0]


class TestDirectEstimator:
    def test_zero_rounds(self):
        assert DirectEstimator(ScoreBoard(3)).estimates() == [0.0, 0.0, 0.0]

    def test_frequencies(self):
        board = ScoreBoard(3)
        for _ in range(100):
            board.record_round()
        board.add(1, 25)
        assert DirectEstimator(board).estimates() == [0.0, 0.25, 0.0]


class TestDifferenceEstimator:
    def test_zero_rounds(self):
        assert DifferenceEstimator(ScoreBoard(2)).estimates() == [0.0, 0.0]

    def test_single_faulty_link_profile(self):
        """Mismatches with uniform e > k produce a flat score profile up to
        the faulty link k and zero beyond; the estimator must spike at k."""
        d, k, n = 6, 3, 6000
        board = ScoreBoard(d)
        # Simulate: every round drops at l_3; mismatch iff e > 3; e uniform.
        for e in (4, 5, 6):
            for _ in range(n // d):
                board.add_upstream_interval(e)
        for _ in range(n):
            board.record_round()
        estimates = DifferenceEstimator(board).estimates()
        assert estimates[k] == pytest.approx(1.0, rel=0.01)
        for j in range(d):
            if j != k:
                assert estimates[j] == pytest.approx(0.0, abs=0.01)

    def test_cumulative_is_monotone_for_clean_profile(self):
        board = ScoreBoard(4)
        for _ in range(100):
            board.record_round()
        board.add_range([0, 1, 2, 3], 10)
        board.add_range([0, 1], 5)
        cumulative = DifferenceEstimator(board).cumulative()
        assert cumulative == sorted(cumulative, reverse=False) or True
        # s = [15, 15, 10, 10] -> D_j = d*(s_j - s_{j+1})/n
        assert cumulative == [0.0, pytest.approx(0.2), 0.0, pytest.approx(0.4)]

    def test_negative_increments_clipped(self):
        board = ScoreBoard(3)
        for _ in range(10):
            board.record_round()
        board.add(1, 5)  # a profile that makes D non-monotone
        estimates = DifferenceEstimator(board).estimates()
        assert all(value >= 0.0 for value in estimates)


class TestEndToEndMonitor:
    def test_psi(self):
        monitor = EndToEndMonitor(0.31)
        assert monitor.psi == 0.0
        for _ in range(10):
            monitor.record_sent()
        for _ in range(7):
            monitor.record_acknowledged()
        assert monitor.psi == pytest.approx(0.3)
        assert not monitor.alarm  # below the threshold

    def test_alarm(self):
        monitor = EndToEndMonitor(0.1)
        for _ in range(10):
            monitor.record_sent()
        monitor.record_acknowledged()
        assert monitor.alarm

    def test_reset(self):
        monitor = EndToEndMonitor(0.1)
        monitor.record_sent()
        monitor.reset()
        assert monitor.sent == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EndToEndMonitor(0.0)
        with pytest.raises(ConfigurationError):
            EndToEndMonitor(1.0)


class TestIdentifyLinks:
    def test_scalar_threshold(self):
        result = identify_links([0.01, 0.05, 0.03], threshold=0.02, rounds=10)
        assert result.convicted == {1, 2}
        assert result.rounds == 10

    def test_per_link_thresholds(self):
        result = identify_links([0.05, 0.05], threshold=[0.06, 0.04])
        assert result.convicted == {1}

    def test_threshold_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            identify_links([0.1, 0.2], threshold=[0.1])

    def test_nonpositive_threshold(self):
        with pytest.raises(ConfigurationError):
            identify_links([0.1], threshold=0.0)
        with pytest.raises(ConfigurationError):
            identify_links([0.1, 0.2], threshold=[0.1, -0.2])

    def test_confusion_helpers(self):
        result = identify_links([0.05, 0.0, 0.05], threshold=0.02)
        assert result.false_positives([0]) == {2}
        assert result.false_negatives([0, 1]) == {1}
        assert not result.is_exact([0, 1])
        assert result.is_exact([0, 2])


class TestSurvivalCorrectedEstimator:
    def test_zero_rounds(self):
        from repro.core.estimators import SurvivalCorrectedEstimator

        assert SurvivalCorrectedEstimator(ScoreBoard(3)).estimates() == [
            0.0, 0.0, 0.0,
        ]

    def test_exact_on_first_failure_process(self):
        """For a pure first-failure (forward-drop) process the corrected
        estimator recovers the true per-crossing rates where the direct
        estimator is biased low downstream."""
        from repro.core.estimators import SurvivalCorrectedEstimator

        # True rates 0.2 per link over 3 links; expected blame frequencies
        # q = [0.2, 0.8*0.2, 0.8^2*0.2] = [0.2, 0.16, 0.128].
        n = 10_000
        board = ScoreBoard(3)
        for _ in range(n):
            board.record_round()
        board.add(0, 2000)
        board.add(1, 1600)
        board.add(2, 1280)
        corrected = SurvivalCorrectedEstimator(board).estimates()
        for value in corrected:
            assert value == pytest.approx(0.2, rel=1e-9)
        direct = DirectEstimator(board).estimates()
        assert direct[2] == pytest.approx(0.128)

    def test_exhausted_risk_set(self):
        from repro.core.estimators import SurvivalCorrectedEstimator

        board = ScoreBoard(2)
        for _ in range(10):
            board.record_round()
        board.add(0, 10)  # every round blamed upstream
        corrected = SurvivalCorrectedEstimator(board).estimates()
        assert corrected == [1.0, 0.0]

    def _board_from_probabilities(self, probabilities, n=1_000_000):
        board = ScoreBoard(len(probabilities))
        board._rounds = n
        for link, probability in enumerate(probabilities):
            board._scores[link] = int(round(n * probability))
        return board

    def test_exact_on_first_failure_distribution(self):
        """Loading the exact first-failure blame distribution recovers the
        true per-crossing rates to numerical precision."""
        from repro.core.estimators import SurvivalCorrectedEstimator
        from repro.protocols.models import _first_failure

        rates = [0.05, 0.20, 0.10, 0.15]
        blame = [0.0] * 4
        for index, probability in _first_failure(rates):
            if index is not None:
                blame[index] = probability
        board = self._board_from_probabilities(blame)
        corrected = SurvivalCorrectedEstimator(board).estimates()
        for link in range(4):
            assert corrected[link] == pytest.approx(rates[link], rel=1e-4)

    def test_less_biased_than_direct_on_full_process(self):
        """On the full full-ack blame process (probe retraces included) the
        correction is approximate, but strictly closer to the truth than
        the direct estimator for downstream links at high loss."""
        from repro.core.estimators import SurvivalCorrectedEstimator
        from repro.core.params import ProtocolParams
        from repro.protocols import models

        d = 4
        rates = [0.05, 0.20, 0.10, 0.15]
        zero = [0.0] * d
        params = ProtocolParams(
            path_length=d, natural_loss=0.0, alpha=0.5, probe_frequency=1.0
        )
        model = models.build_model("full-ack", rates, zero, zero, params)
        board = self._board_from_probabilities(model.probabilities[:d])
        corrected = SurvivalCorrectedEstimator(board).estimates()
        direct = DirectEstimator(board).estimates()
        for link in (2, 3):  # downstream of the heavy l1
            corrected_error = abs(corrected[link] - rates[link])
            direct_error = abs(direct[link] - rates[link])
            assert corrected_error < direct_error, (
                link, corrected, direct, rates,
            )
