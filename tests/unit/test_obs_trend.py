"""Unit coverage for the bench-trend observatory (repro.obs.trend)."""

import json
import math

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.trend import (
    build_baseline,
    collect_bench_seconds,
    compare_to_baseline,
    load_baseline,
    load_bench_records,
)


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoading:
    def test_bare_list_shape(self, tmp_path):
        path = _write(tmp_path / "obs.json", [
            {"name": "bench_a", "seconds": 1.5, "scale": 100},
            {"name": "bench_b", "status": "skipped"},
            {"name": "bench_c", "seconds": None},
            {"not-a-record": True},
        ])
        assert load_bench_records(path) == {"bench_a": 1.5}

    def test_records_object_shape(self, tmp_path):
        path = _write(tmp_path / "fast.json", {
            "cpu_count": 4,
            "records": [{"name": "bench_fast", "seconds": 0.2}],
        })
        assert load_bench_records(path) == {"bench_fast": 0.2}

    def test_bad_shapes_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_bench_records(_write(tmp_path / "scalar.json", 42))
        with pytest.raises(ConfigurationError):
            load_bench_records(
                _write(tmp_path / "norecords.json", {"cpu_count": 4})
            )

    def test_collect_merges_and_skips_missing_files(self, tmp_path):
        first = _write(tmp_path / "a.json", [{"name": "a", "seconds": 1.0}])
        second = _write(tmp_path / "b.json", [{"name": "b", "seconds": 2.0}])
        merged = collect_bench_seconds(
            [first, second, str(tmp_path / "absent.json")]
        )
        assert merged == {"a": 1.0, "b": 2.0}

    def test_baseline_round_trip(self, tmp_path):
        bench = _write(
            tmp_path / "a.json", [{"name": "a", "seconds": 1.23456789}]
        )
        payload = build_baseline([bench], cpu_count=2)
        assert payload == {
            "benchmarks": {"a": 1.234568}, "cpu_count": 2,
        }
        baseline_path = _write(tmp_path / "baseline.json", payload)
        assert load_baseline(baseline_path) == payload
        with pytest.raises(ConfigurationError):
            load_baseline(_write(tmp_path / "junk.json", {"records": []}))


class TestComparison:
    def _report(self, tmp_path, baseline, current, **kwargs):
        bench = _write(
            tmp_path / "bench.json",
            [
                {"name": name, "seconds": seconds}
                for name, seconds in current.items()
            ],
        )
        return compare_to_baseline(
            {"benchmarks": baseline}, [bench], **kwargs
        )

    def test_statuses_and_gate(self, tmp_path):
        report = self._report(
            tmp_path,
            baseline={
                "steady": 1.0, "regressed": 1.0,
                "improved": 1.0, "gone": 1.0,
            },
            current={
                "steady": 1.1, "regressed": 1.5,
                "improved": 0.5, "fresh": 2.0,
            },
        )
        statuses = {d.name: d.status for d in report.deltas}
        assert statuses == {
            "steady": "ok",
            "regressed": "slower",
            "improved": "faster",
            "gone": "missing",
            "fresh": "new",
        }
        assert [d.name for d in report.regressions] == ["regressed"]
        assert [d.name for d in report.improvements] == ["improved"]
        assert not report.ok

    def test_noise_floor_suppresses_sub_floor_jitter(self, tmp_path):
        report = self._report(
            tmp_path,
            baseline={"tiny": 0.001, "real": 1.0},
            current={"tiny": 0.01, "real": 1.0},
        )
        statuses = {d.name: d.status for d in report.deltas}
        # 10x slower but both sides under the 50 ms floor: jitter, not
        # signal.
        assert statuses == {"tiny": "ok", "real": "ok"}
        assert report.ok

    def test_new_and_missing_never_fail_the_gate(self, tmp_path):
        report = self._report(
            tmp_path, baseline={"gone": 5.0}, current={"fresh": 5.0}
        )
        assert {d.status for d in report.deltas} == {"missing", "new"}
        assert report.ok

    def test_threshold_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            self._report(tmp_path, baseline={}, current={}, threshold=0)

    def test_to_dict_and_render(self, tmp_path):
        report = self._report(
            tmp_path,
            baseline={"regressed": 1.0, "gone": 2.0},
            current={"regressed": 2.0, "fresh": 0.5},
        )
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["regressions"] == 1
        by_name = {d["name"]: d for d in payload["deltas"]}
        assert by_name["regressed"]["relative_delta"] == 1.0
        assert by_name["fresh"]["baseline_seconds"] is None
        text = report.render()
        assert "REGRESSIONS (1): regressed" in text
        assert "new" in text and "missing" in text

    def test_render_clean_report(self, tmp_path):
        report = self._report(
            tmp_path, baseline={"a": 1.0}, current={"a": 1.0}
        )
        assert "no regressions beyond threshold" in report.render()
        empty = self._report(tmp_path, baseline={}, current={})
        assert "(no benchmarks to compare)" in empty.render()


class TestNearZeroBaseline:
    """A zero/near-zero baseline must not explode the percent delta."""

    def _report(self, tmp_path, baseline, current, **kwargs):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(
            [{"name": n, "seconds": s} for n, s in current.items()]
        ))
        return compare_to_baseline(
            {"benchmarks": baseline}, [path], **kwargs
        )

    def test_zero_baseline_yields_finite_delta(self, tmp_path):
        report = self._report(
            tmp_path, baseline={"b": 0.0}, current={"b": 0.2}
        )
        (delta,) = report.deltas
        # Divided through the 50 ms floor, not the zero baseline:
        # (0.2 - 0) / 0.05 = 4.0, finite and well-defined.
        assert delta.relative_delta == pytest.approx(4.0)
        assert math.isfinite(delta.relative_delta)

    def test_near_zero_baseline_not_flagged_for_jitter(self, tmp_path):
        # 0.1 ms -> 40 ms is a 400x blowup by raw ratio but both sides
        # sit at/under the floor; the floor-normalized delta stays under
        # any sane threshold.
        report = self._report(
            tmp_path, baseline={"b": 0.0001}, current={"b": 0.04}
        )
        (delta,) = report.deltas
        assert delta.status == "ok"
        assert delta.relative_delta == pytest.approx(0.798, abs=1e-3)
        assert report.ok

    def test_real_regression_from_tiny_baseline_still_flags(self, tmp_path):
        # Baseline under the floor but the current run is genuinely
        # slow: still reported, with a sane percentage.
        report = self._report(
            tmp_path, baseline={"b": 0.001}, current={"b": 1.0}
        )
        (delta,) = report.deltas
        assert delta.status == "slower"
        assert delta.relative_delta == pytest.approx((1.0 - 0.001) / 0.05)

    def test_render_survives_zero_baseline(self, tmp_path):
        report = self._report(
            tmp_path, baseline={"b": 0.0}, current={"b": 0.2}
        )
        text = report.render()
        assert "inf" not in text and "nan" not in text.lower()


class TestBaselineCanonicalization:
    def test_update_baseline_writes_sorted_keys(self, tmp_path, capsys,
                                                monkeypatch):
        from repro import cli

        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps([
            {"name": "zeta", "seconds": 1.0},
            {"name": "alpha", "seconds": 2.0},
            {"name": "mid", "seconds": 3.0},
        ]))
        baseline = tmp_path / "baseline.json"
        assert cli.main([
            "bench", "trend", "--bench", str(bench),
            "--baseline", str(baseline), "--update-baseline",
        ]) == 0
        raw = baseline.read_text()
        parsed = json.loads(raw)
        assert list(parsed["benchmarks"]) == ["alpha", "mid", "zeta"]
        # Byte-canonical: re-serializing with sorted keys reproduces the
        # file exactly, so baseline diffs stay reviewable.
        assert raw == json.dumps(parsed, indent=2, sort_keys=True) + "\n"
