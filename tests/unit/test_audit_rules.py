"""Rule-family coverage: every family catches its fixture violations and
passes the suppressed/allowlisted twin (tests/fixtures/audit/)."""

import os
from collections import Counter

from repro.audit import audit_paths

FIXTURES = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "fixtures", "audit")
)


def audit_fixture(name):
    return audit_paths([os.path.join(FIXTURES, name)], root=FIXTURES)


def rule_counts(findings):
    return Counter(finding.rule for finding in findings)


class TestDeterminismFamily:
    def test_violations_caught(self):
        counts = rule_counts(audit_fixture("bad_determinism.py"))
        # random.random() and np.random.uniform() both hit global state.
        assert counts["DET001"] == 2
        # The module-level random.Random(7).
        assert counts["DET002"] == 1
        # time.time() wall clock + time.monotonic() outside telemetry.
        assert counts["DET003"] == 2
        # os.urandom(16).
        assert counts["DET004"] == 1

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_determinism.py") == []


class TestCryptoBoundaryFamily:
    def test_violations_caught(self):
        counts = rule_counts(audit_fixture("bad_crypto.py"))
        # `import hashlib` and `import hmac` outside repro.crypto.
        assert counts["CB001"] == 2
        # mac_key -> StreamCipher, encryption_key -> mac, and the
        # derive_key(master, "mac") -> StreamCipher variant.
        assert counts["CB002"] == 3

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_crypto.py") == []


class TestSimTimeFamily:
    def test_violations_caught(self):
        counts = rule_counts(audit_fixture("bad_simtime.py"))
        # time.monotonic() and datetime.now() inside simulator scope.
        assert counts["ST001"] == 2

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_simtime.py") == []


class TestIterationOrderFamily:
    def test_violations_caught(self):
        findings = audit_fixture("bad_iteration.py")
        counts = rule_counts(findings)
        # `for key in {...}` and `list(set(...))`.
        assert counts["ITER001"] == 2
        # `.items()` loop in experiment scope — warning severity.
        assert counts["ITER002"] == 1
        severities = {f.rule: f.severity for f in findings}
        assert severities["ITER001"] == "error"
        assert severities["ITER002"] == "warning"

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_iteration.py") == []


class TestFaultsFamily:
    def test_violations_caught(self):
        findings = audit_fixture("bad_faults.py")
        counts = rule_counts(findings)
        # bare `except: pass`, `except Exception: ...`, and the
        # `except (KeyError, BaseException): pass` tuple; the blanket
        # handler with an observable body is NOT a finding.
        assert counts["FI001"] == 3
        assert all(f.severity == "error" for f in findings)

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_faults.py") == []


class TestFastpathFamily:
    def test_violations_caught(self):
        findings = audit_fixture("bad_fastpath.py")
        counts = rule_counts(findings)
        # range(num_packets), range(config.horizon), range(len(packets)).
        assert counts["FP001"] == 3
        assert all(f.severity == "warning" for f in findings)

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_fastpath.py") == []


class TestObservabilityFamily:
    def test_violations_caught(self):
        findings = audit_fixture("bad_obs.py")
        counts = rule_counts(findings)
        # print(...), sys.stderr.write(...), open(path, "w"), and
        # open(path, mode="a").
        assert counts["OBS001"] == 4
        assert all(f.severity == "error" for f in findings)

    def test_registry_and_ledger_twin_passes(self):
        assert audit_fixture("ok_obs.py") == []


def test_fixture_files_never_leak_other_rules():
    """Each bad fixture triggers exactly its own family (plus nothing)."""
    expected_families = {
        "bad_determinism.py": {"DET001", "DET002", "DET003", "DET004"},
        "bad_crypto.py": {"CB001", "CB002"},
        "bad_simtime.py": {"ST001"},
        "bad_iteration.py": {"ITER001", "ITER002"},
        "bad_faults.py": {"FI001"},
        "bad_fastpath.py": {"FP001"},
        "bad_obs.py": {"OBS001"},
    }
    for name, expected in expected_families.items():
        seen = set(rule_counts(audit_fixture(name)))
        assert seen == expected, f"{name}: {seen} != {expected}"
