"""Rule-family coverage: every family catches its fixture violations and
passes the suppressed/allowlisted twin (tests/fixtures/audit/)."""

import os
import re
import textwrap
from collections import Counter

from repro.audit import audit_paths, audit_source
from repro.audit.catalog import all_rules, known_rule_ids
from repro.audit.engine import split_rules

FIXTURES = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "fixtures", "audit")
)
DOCS = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "docs", "AUDIT.md")
)


def audit_fixture(name):
    return audit_paths([os.path.join(FIXTURES, name)], root=FIXTURES)


def rule_counts(findings):
    return Counter(finding.rule for finding in findings)


class TestDeterminismFamily:
    def test_violations_caught(self):
        counts = rule_counts(audit_fixture("bad_determinism.py"))
        # random.random() and np.random.uniform() both hit global state.
        assert counts["DET001"] == 2
        # The module-level random.Random(7).
        assert counts["DET002"] == 1
        # time.time() wall clock + time.monotonic() outside telemetry.
        assert counts["DET003"] == 2
        # os.urandom(16).
        assert counts["DET004"] == 1

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_determinism.py") == []


class TestCryptoBoundaryFamily:
    def test_violations_caught(self):
        counts = rule_counts(audit_fixture("bad_crypto.py"))
        # `import hashlib` and `import hmac` outside repro.crypto.
        assert counts["CB001"] == 2
        # mac_key -> StreamCipher, encryption_key -> mac, and the
        # derive_key(master, "mac") -> StreamCipher variant.
        assert counts["CB002"] == 3

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_crypto.py") == []


class TestSimTimeFamily:
    def test_violations_caught(self):
        counts = rule_counts(audit_fixture("bad_simtime.py"))
        # time.monotonic() and datetime.now() inside simulator scope.
        assert counts["ST001"] == 2

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_simtime.py") == []


class TestIterationOrderFamily:
    def test_violations_caught(self):
        findings = audit_fixture("bad_iteration.py")
        counts = rule_counts(findings)
        # `for key in {...}` and `list(set(...))`.
        assert counts["ITER001"] == 2
        # `.items()` loop in experiment scope — warning severity.
        assert counts["ITER002"] == 1
        severities = {f.rule: f.severity for f in findings}
        assert severities["ITER001"] == "error"
        assert severities["ITER002"] == "warning"

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_iteration.py") == []


class TestFaultsFamily:
    def test_violations_caught(self):
        findings = audit_fixture("bad_faults.py")
        counts = rule_counts(findings)
        # bare `except: pass`, `except Exception: ...`, and the
        # `except (KeyError, BaseException): pass` tuple; the blanket
        # handler with an observable body is NOT a finding.
        assert counts["FI001"] == 3
        assert all(f.severity == "error" for f in findings)

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_faults.py") == []


class TestFastpathFamily:
    def test_violations_caught(self):
        findings = audit_fixture("bad_fastpath.py")
        counts = rule_counts(findings)
        # range(num_packets), range(config.horizon), range(len(packets)).
        assert counts["FP001"] == 3
        assert all(f.severity == "warning" for f in findings)

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_fastpath.py") == []


class TestObservabilityFamily:
    def test_violations_caught(self):
        findings = audit_fixture("bad_obs.py")
        counts = rule_counts(findings)
        # print(...), sys.stderr.write(...), open(path, "w"), and
        # open(path, mode="a").
        assert counts["OBS001"] == 4
        assert all(f.severity == "error" for f in findings)

    def test_registry_and_ledger_twin_passes(self):
        assert audit_fixture("ok_obs.py") == []


class TestRngFlowFamily:
    def test_violations_caught(self):
        counts = rule_counts(audit_fixture("bad_rngflow.py"))
        # The pid-interpolated label and the `id(...)` label.
        assert counts["RNG001"] == 2
        # The duplicated `spawn("route-0")` and `stream("adversary")`.
        assert counts["RNG002"] == 2
        # The `rng.stream(node.make_label())` opaque label.
        assert counts["RNG003"] == 1

    def test_duplicate_spawn_label_specifically_flagged(self):
        findings = [
            f for f in audit_fixture("bad_rngflow.py") if f.rule == "RNG002"
        ]
        spawn_dups = [f for f in findings if "route-0" in f.message]
        assert len(spawn_dups) == 1
        assert "spawn" in spawn_dups[0].message

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_rngflow.py") == []


class TestSharedStateFamily:
    def test_violations_caught(self):
        counts = rule_counts(audit_fixture("bad_shared.py"))
        # Subscript write into _ROUTE_VERDICTS + append to _EVENT_LOG.
        assert counts["RACE001"] == 2
        # RouteTally.counts and RouteTally.labels at class scope.
        assert counts["RACE002"] == 2

    def test_allowed_and_suppressed_twin_passes(self):
        assert audit_fixture("ok_shared.py") == []


class TestInterprocFamily:
    """The whole-program pass over tests/fixtures/audit/interproc/."""

    def test_two_hop_clock_chain_flagged(self):
        findings = audit_fixture("interproc")
        assert [f.rule for f in findings] == ["ST002"]
        (finding,) = findings
        assert finding.path == "interproc/sim_chain.py"
        # The message names the full chain and the concrete sink.
        assert "time.time" in finding.message
        assert (
            "repro.mc.fake_chain.record_event -> "
            "repro_vendor.util.wrapped_now -> "
            "repro_vendor.util.slow_now" in finding.message
        )

    def test_per_file_engine_alone_misses_the_chain(self):
        # The pre-whole-program engine: per-file rules only. The same
        # fixture set is completely clean — which is exactly why the
        # interprocedural pass exists.
        file_rules, _ = split_rules(all_rules())
        assert (
            audit_paths(
                [os.path.join(FIXTURES, "interproc")],
                rules=file_rules,
                root=FIXTURES,
            )
            == []
        )

    def test_transitive_entropy_flagged_with_direct_finding(self):
        source = textwrap.dedent(
            """
            import random


            def draw():
                return _hidden()


            def _hidden():
                return random.random()
            """
        )
        findings = audit_source(source, module="repro.mc.fake_entropy")
        counts = rule_counts(findings)
        # The helper's direct call is DET001; the two-hop reach from
        # `draw` is DET005 — different findings, different lines.
        assert counts["DET001"] == 1
        assert counts["DET005"] == 1
        det005 = next(f for f in findings if f.rule == "DET005")
        assert "random.random" in det005.message
        assert "draw" in det005.message


def test_fixture_files_never_leak_other_rules():
    """Each bad fixture triggers exactly its own family (plus nothing)."""
    expected_families = {
        "bad_determinism.py": {"DET001", "DET002", "DET003", "DET004"},
        "bad_crypto.py": {"CB001", "CB002"},
        "bad_simtime.py": {"ST001"},
        "bad_iteration.py": {"ITER001", "ITER002"},
        "bad_faults.py": {"FI001"},
        "bad_fastpath.py": {"FP001"},
        "bad_obs.py": {"OBS001"},
        "bad_rngflow.py": {"RNG001", "RNG002", "RNG003"},
        "bad_shared.py": {"RACE001", "RACE002"},
        "interproc": {"ST002"},
    }
    for name, expected in expected_families.items():
        seen = set(rule_counts(audit_fixture(name)))
        assert seen == expected, f"{name}: {seen} != {expected}"


def test_every_rule_id_documented_and_every_documented_id_exists():
    """docs/AUDIT.md and the catalogue agree exactly on rule ids.

    Both directions: an undocumented rule is invisible to users, and a
    documented id with no implementation is a broken promise.
    """
    with open(DOCS, encoding="utf-8") as handle:
        text = handle.read()
    catalogued = known_rule_ids()
    # Anchor the docs-side scan to the catalogue's id prefixes so prose
    # like "HMAC-SHA256" is not mistaken for a rule id.
    prefixes = sorted({re.match(r"[A-Z]+", rid).group(0) for rid in catalogued})
    pattern = rf"\b(?:{'|'.join(prefixes)})\d{{3}}\b"
    documented = set(re.findall(pattern, text))
    assert catalogued - documented == set(), "undocumented rule ids"
    assert documented - catalogued == set(), "documented but unknown ids"
