"""Tests for the keyed PRF."""

import pytest

from repro.crypto.prf import PRF


class TestDigest:
    def test_deterministic(self):
        prf = PRF(b"key")
        assert prf.digest(b"x") == prf.digest(b"x")

    def test_key_separation(self):
        assert PRF(b"key-a").digest(b"x") != PRF(b"key-b").digest(b"x")

    def test_label_separation(self):
        assert PRF(b"key", label="a").digest(b"x") != PRF(b"key", label="b").digest(b"x")

    def test_label_injection_resistance(self):
        # label="ab", data="c" must differ from label="a", data="bc": the
        # separator byte prevents boundary ambiguity.
        assert PRF(b"k", label="ab").digest(b"c") != PRF(b"k", label="a").digest(b"bc")

    def test_rejects_non_bytes_key(self):
        with pytest.raises(TypeError):
            PRF("string-key")


class TestInteger:
    def test_range(self):
        prf = PRF(b"key")
        for i in range(200):
            value = prf.integer(str(i).encode(), 7)
            assert 0 <= value < 7

    def test_modulus_one(self):
        assert PRF(b"key").integer(b"x", 1) == 0

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            PRF(b"key").integer(b"x", 0)

    def test_roughly_uniform(self):
        prf = PRF(b"key")
        counts = [0] * 4
        trials = 4000
        for i in range(trials):
            counts[prf.integer(i.to_bytes(4, "big"), 4)] += 1
        for count in counts:
            assert abs(count - trials / 4) < 150  # ~5 sigma


class TestFraction:
    def test_range(self):
        prf = PRF(b"key")
        for i in range(200):
            value = prf.fraction(str(i).encode())
            assert 0.0 <= value < 1.0

    def test_mean_near_half(self):
        prf = PRF(b"key")
        trials = 2000
        mean = sum(prf.fraction(i.to_bytes(4, "big")) for i in range(trials)) / trials
        assert abs(mean - 0.5) < 0.03


class TestBernoulli:
    @pytest.mark.parametrize("p", [0.0, 1.0])
    def test_degenerate_probabilities(self, p):
        prf = PRF(b"key")
        results = {prf.bernoulli(i.to_bytes(4, "big"), p) for i in range(100)}
        assert results == {p == 1.0}

    def test_empirical_rate(self):
        prf = PRF(b"key")
        trials = 10000
        hits = sum(prf.bernoulli(i.to_bytes(4, "big"), 0.2) for i in range(trials))
        assert abs(hits / trials - 0.2) < 0.02

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            PRF(b"key").bernoulli(b"x", 1.5)


class TestKeystream:
    def test_length(self):
        prf = PRF(b"key")
        for length in (0, 1, 31, 32, 33, 100):
            assert len(prf.keystream(b"nonce", length)) == length

    def test_deterministic_in_nonce(self):
        prf = PRF(b"key")
        assert prf.keystream(b"n1", 64) == prf.keystream(b"n1", 64)
        assert prf.keystream(b"n1", 64) != prf.keystream(b"n2", 64)

    def test_prefix_consistency(self):
        prf = PRF(b"key")
        assert prf.keystream(b"n", 64)[:16] == prf.keystream(b"n", 16)

    def test_negative_length(self):
        with pytest.raises(ValueError):
            PRF(b"key").keystream(b"n", -1)
