"""Tests for onion reports: construction, verification, fault localization,
and the security property that an adversary cannot shift blame off its own
adjacent links."""

import pytest

from repro.crypto.keys import KeyManager
from repro.crypto.onion import OnionReport, OnionVerifier
from repro.exceptions import ConfigurationError


def _build_chain(manager, origin, payloads=None):
    """Build an onion report originating at node ``origin`` and wrapped by
    nodes ``origin-1 .. 1``, as the protocol does on the return path."""
    d = manager.path_length
    payloads = payloads or {i: f"report-{i}".encode() for i in range(1, d + 1)}
    report = OnionReport.originate(origin, payloads[origin], manager.mac_key(origin))
    for node in range(origin - 1, 0, -1):
        report = OnionReport.wrap(node, payloads[node], report, manager.mac_key(node))
    return report


@pytest.fixture
def manager():
    return KeyManager(path_length=6)


@pytest.fixture
def verifier(manager):
    return OnionVerifier(manager.all_mac_keys())


class TestHappyPath:
    def test_full_chain_verifies(self, manager, verifier):
        report = _build_chain(manager, origin=6)
        verdict = verifier.verify(report)
        assert verdict.deepest_valid == 6
        assert verdict.complete
        assert verdict.origin() == 6

    def test_layers_decoded_in_order(self, manager, verifier):
        report = _build_chain(manager, origin=6)
        verdict = verifier.verify(report)
        assert [layer.position for layer in verdict.layers] == [1, 2, 3, 4, 5, 6]
        assert verdict.layers[3].payload == b"report-4"

    @pytest.mark.parametrize("origin", [1, 2, 3, 4, 5])
    def test_early_origin_locates_drop(self, manager, verifier, origin):
        """A report originating at F_k (timer expiry) verifies to depth k,
        blaming link l_k — the paper's localization rule."""
        report = _build_chain(manager, origin=origin)
        verdict = verifier.verify(report)
        assert verdict.deepest_valid == origin
        assert verdict.blamed_link == origin
        assert verdict.complete


class TestTamperDetection:
    def test_flipped_byte_in_inner_layer(self, manager, verifier):
        report = bytearray(_build_chain(manager, origin=6))
        # Flip a byte near the end (innermost layer's MAC region).
        report[-1] ^= 0xFF
        verdict = verifier.verify(bytes(report))
        assert verdict.deepest_valid < 6

    def test_missing_report(self, verifier):
        verdict = verifier.verify(None)
        assert verdict.deepest_valid == 0
        assert verdict.blamed_link == 0
        assert not verdict.complete

    def test_empty_report(self, verifier):
        assert verifier.verify(b"").deepest_valid == 0

    def test_garbage_report(self, verifier):
        assert verifier.verify(b"\x00" * 100).deepest_valid == 0

    def test_truncated_report(self, manager, verifier):
        report = _build_chain(manager, origin=6)
        assert verifier.verify(report[: len(report) // 2]).deepest_valid == 0

    def test_wrong_position_rejected(self, manager, verifier):
        # Node 2 originates but claims to be node 1's layer: outer parse
        # expects position 1, sees 2 -> depth 0.
        report = OnionReport.originate(2, b"r", manager.mac_key(2))
        assert verifier.verify(report).deepest_valid == 0


class TestBlameShifting:
    """The key security argument: a malicious F_z that cuts or rewrites the
    onion can only move blame onto a link adjacent to itself."""

    def test_adversary_cannot_forge_downstream_layer(self, manager, verifier):
        """F_3 drops the data packet, then fabricates an 'origin at F_5'
        report without K_4/K_5: the source sees depth 3, blaming l_3 —
        adjacent to the adversary."""
        fake_inner = OnionReport.originate(5, b"forged", b"wrong-key")
        fake_inner = OnionReport.wrap(4, b"forged", fake_inner, b"also-wrong")
        report = OnionReport.wrap(3, b"r3", fake_inner, manager.mac_key(3))
        report = OnionReport.wrap(2, b"r2", report, manager.mac_key(2))
        report = OnionReport.wrap(1, b"r1", report, manager.mac_key(1))
        verdict = verifier.verify(report)
        assert verdict.blamed_link == 3

    def test_adversary_cannot_blame_far_upstream(self, manager, verifier):
        """F_4 replaces the honest inner report with junk: layers 1..4 still
        verify (honest upstream nodes wrapped correctly), so blame lands on
        l_4, not on an upstream honest link."""
        junk = b"\x99" * 40
        report = OnionReport.wrap(4, b"r4", junk, manager.mac_key(4))
        for node in (3, 2, 1):
            report = OnionReport.wrap(node, f"r{node}".encode(), report, manager.mac_key(node))
        verdict = verifier.verify(report)
        assert verdict.blamed_link == 4
        assert not verdict.complete

    def test_replay_of_shorter_chain(self, manager, verifier):
        """Dropping the whole report and substituting an old origin-at-F_2
        chain blames l_2 at worst (the substituting node must be upstream of
        or at F_2 to splice it in with valid outer layers)."""
        report = _build_chain(manager, origin=2)
        verdict = verifier.verify(report)
        assert verdict.blamed_link == 2


class TestEncodingEdgeCases:
    def test_empty_payload_allowed(self, manager, verifier):
        report = OnionReport.originate(1, b"", manager.mac_key(1))
        verdict = verifier.verify(report)
        assert verdict.deepest_valid == 1
        assert verdict.layers[0].payload == b""

    def test_wrap_requires_inner(self):
        with pytest.raises(ConfigurationError):
            OnionReport.wrap(1, b"p", b"", b"key")

    def test_position_out_of_range(self):
        with pytest.raises(ConfigurationError):
            OnionReport.originate(-1, b"p", b"key")
        with pytest.raises(ConfigurationError):
            OnionReport.originate(2 ** 16, b"p", b"key")

    def test_verifier_requires_keys(self):
        with pytest.raises(ConfigurationError):
            OnionVerifier([])

    def test_report_longer_than_path_stops_at_path_end(self, manager):
        """A verifier for a 2-hop path never reports depth > 2 even when fed
        a 6-layer onion built with other keys."""
        short = OnionVerifier(manager.all_mac_keys()[:2])
        report = _build_chain(manager, origin=6)
        assert short.verify(report).deepest_valid <= 2
